"""Section 3.5 / 6.4: map pruning effectiveness.

Paper numbers: 3277 of 3833 warehouse-trace queries carried predicates
usable for map pruning, and on the four representative queries pruning
reduced the data scanned by an average factor of ~30.
"""

import random

import pytest

from harness import Figure, make_shark
from repro.workloads import warehouse

NUM_DAYS = 30
ROWS_PER_DAY = 100
#: Logs land per data center (geography) per day (Section 3.5): one
#: partition per (day, country-range).  Ten countries per day gives
#: partitions whose country statistics are (near-)single-valued, so even
#: inequality predicates (Q3's ``country <> 'US'``) can prune.
PARTITIONS = NUM_DAYS * 10


@pytest.fixture(scope="module")
def loaded():
    data = warehouse.generate_sessions(
        num_days=NUM_DAYS, rows_per_day=ROWS_PER_DAY
    )
    shark = make_shark(
        {"sessions": data}, cached=True, partitions_per_table=PARTITIONS
    )
    return shark, data


def _trace_queries(seed: int = 3, count: int = 60):
    """A synthetic query trace shaped like the paper's: most queries carry
    day/country predicates (prunable), a minority scan everything."""
    rng = random.Random(seed)
    queries = []
    for __ in range(count):
        roll = rng.random()
        if roll < 0.55:
            day = rng.randint(0, NUM_DAYS - 1)
            queries.append(
                ("prunable",
                 f"SELECT COUNT(*) FROM sessions WHERE day = {day}")
            )
        elif roll < 0.85:
            low = rng.randint(0, NUM_DAYS - 8)
            queries.append(
                ("prunable",
                 f"SELECT country, COUNT(*) FROM sessions "
                 f"WHERE day BETWEEN {low} AND {low + 6} GROUP BY country")
            )
        else:
            queries.append(
                ("unprunable",
                 "SELECT device, COUNT(*) FROM sessions GROUP BY device")
            )
    return queries


class TestMapPruning:
    def test_scan_reduction_on_representative_queries(self, loaded, benchmark):
        shark, data = loaded
        queries = warehouse.representative_queries(day=9)
        benchmark.pedantic(
            lambda: shark.sql(queries["q1"]), rounds=2, iterations=1
        )
        factors = []
        figure = Figure(
            "Map pruning: partitions scanned per representative query",
            "Section 6.4: pruning reduced data scanned ~30x on average",
        )
        for name in ("q1", "q2", "q3", "q4"):
            result = shark.sql(queries[name])
            report = result.report
            scanned = report.scanned_partitions or PARTITIONS
            considered = (
                report.scanned_partitions + report.pruned_partitions
            ) or PARTITIONS
            factors.append(considered / scanned)
            figure.add(name, scanned, f"of {considered} partitions")
        figure.show()
        mean_factor = sum(factors) / len(factors)
        print(
            f"    per-query scan reductions: "
            f"{', '.join(f'{f:.1f}x' for f in factors)}; "
            f"mean {mean_factor:.1f}x (paper: ~30x)"
        )
        assert mean_factor > 10

    def test_trace_prunable_fraction(self, loaded, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        shark, data = loaded
        prunable = 0
        total = 0
        for expected, query in _trace_queries():
            result = shark.sql(query)
            total += 1
            if result.report.pruned_partitions > 0:
                prunable += 1
                assert expected == "prunable"
        fraction = prunable / total
        paper_fraction = (
            warehouse.TRACE_PRUNABLE_QUERIES / warehouse.TRACE_TOTAL_QUERIES
        )
        print(
            f"\n    prunable queries: {prunable}/{total} "
            f"({fraction:.0%}; paper trace: {paper_fraction:.0%})"
        )
        assert fraction > 0.6

    def test_pruning_never_changes_results(self, loaded, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        from dataclasses import replace

        shark, data = loaded
        query = (
            "SELECT country, COUNT(*) FROM sessions "
            "WHERE day BETWEEN 4 AND 11 GROUP BY country"
        )
        pruned_rows = sorted(shark.sql(query).rows)
        original = shark.session.config
        try:
            shark.session.config = replace(original, enable_map_pruning=False)
            full_rows = sorted(shark.sql(query).rows)
        finally:
            shark.session.config = original
        assert pruned_rows == full_rows

"""Figure 5: Pavlo et al. selection and aggregation queries.

Paper result (100 nodes; rankings 100 GB, uservisits 2 TB):

* Selection:            Shark 1.1 s   vs Hive ~90 s   (~80x; 5x from disk)
* Aggregation 2.5M grp: Shark 147 s   vs Hive ~2300 s
* Aggregation 1K grp:   Shark 32 s    vs Hive ~550 s

Each bar is reproduced by executing the query locally on the same data in
all three configurations (Shark memstore / Shark-on-disk / Hive-on-MapReduce)
and modelling the measured volumes at paper scale.
"""

import pytest

from harness import (
    Figure,
    PAPER_NODES,
    assert_same_rows,
    hand_tuned_reducers,
    hive_cluster_seconds,
    make_hive,
    make_shark,
    shark_cluster_seconds,
)
from repro.costmodel import SHARK_DISK, SHARK_MEM
from repro.workloads import pavlo

RANKINGS_ROWS = 3000
VISITS_ROWS = 12000


@pytest.fixture(scope="module")
def systems():
    rankings = pavlo.generate_rankings(RANKINGS_ROWS)
    visits = pavlo.generate_uservisits(VISITS_ROWS, num_pages=RANKINGS_ROWS)
    datasets = {"rankings": rankings, "uservisits": visits}
    shark_mem = make_shark(datasets, cached=True)
    shark_disk = make_shark(datasets, cached=False)
    hive = make_hive(shark_disk)
    return datasets, shark_mem, shark_disk, hive


def _three_way(systems, query, dataset_name, reduce_scale_bytes=None):
    datasets, shark_mem, shark_disk, hive = systems
    scale = datasets[dataset_name].scale_factor
    reducers = (
        hand_tuned_reducers(reduce_scale_bytes)
        if reduce_scale_bytes
        else None
    )
    mem_s, mem_rows = shark_cluster_seconds(
        shark_mem, query, scale, SHARK_MEM
    )
    disk_s, disk_rows = shark_cluster_seconds(
        shark_disk, query, scale, SHARK_DISK
    )
    hive_s, hive_rows = hive_cluster_seconds(
        hive, query, scale, reduce_tasks=reducers
    )
    assert_same_rows(mem_rows, hive_rows, query)
    assert_same_rows(mem_rows, disk_rows, query)
    return mem_s, disk_s, hive_s, mem_rows


class TestFigure05:
    def test_selection(self, systems, benchmark):
        __, shark_mem, ___, ____ = systems
        query = pavlo.SELECTION_QUERY.format(cutoff=90)
        benchmark.pedantic(
            lambda: shark_mem.sql(query), rounds=3, iterations=1
        )
        mem_s, disk_s, hive_s, rows = _three_way(
            systems, query, "rankings"
        )
        figure = Figure(
            "Figure 5a: selection on rankings (100 GB)",
            "Shark 1.1 s / Shark(disk) mid / Hive ~90 s",
        )
        figure.add("Shark", mem_s)
        figure.add("Shark (disk)", disk_s)
        figure.add("Hive", hive_s)
        figure.show()
        assert mem_s < disk_s < hive_s
        assert figure.ratio("Hive", "Shark") > 20
        assert len(rows) > 0

    def test_aggregation_many_groups(self, systems, benchmark):
        __, shark_mem, ___, ____ = systems
        query = pavlo.AGGREGATION_FULL_QUERY
        benchmark.pedantic(
            lambda: shark_mem.sql(query), rounds=3, iterations=1
        )
        datasets = systems[0]
        mem_s, disk_s, hive_s, rows = _three_way(
            systems, query, "uservisits",
            reduce_scale_bytes=datasets["uservisits"].represented_bytes / 20,
        )
        figure = Figure(
            "Figure 5b: aggregation, ~2.5M groups (uservisits 2 TB)",
            "Shark 147 s / Hive ~2300 s",
        )
        figure.add("Shark", mem_s)
        figure.add("Shark (disk)", disk_s)
        figure.add("Hive", hive_s)
        figure.show()
        assert mem_s < hive_s
        assert figure.ratio("Hive", "Shark") > 3

    def test_aggregation_few_groups(self, systems, benchmark):
        __, shark_mem, ___, ____ = systems
        query = pavlo.AGGREGATION_SUBSTR_QUERY
        benchmark.pedantic(
            lambda: shark_mem.sql(query), rounds=3, iterations=1
        )
        datasets = systems[0]
        mem_s, disk_s, hive_s, rows = _three_way(
            systems, query, "uservisits",
            reduce_scale_bytes=datasets["uservisits"].represented_bytes / 200,
        )
        figure = Figure(
            "Figure 5c: aggregation, ~1K groups (SUBSTR(sourceIP,1,7))",
            "Shark 32 s / Hive ~550 s",
        )
        figure.add("Shark", mem_s)
        figure.add("Shark (disk)", disk_s)
        figure.add("Hive", hive_s)
        figure.show()
        assert mem_s < hive_s
        assert figure.ratio("Hive", "Shark") > 5

"""Section 6.2.4: data-loading throughput.

Paper result: loading the 2 TB uservisits table into Shark's memory store
ran at 5x the throughput of loading into HDFS, because HDFS writes
replicate every byte (3x by default: one local + two remote copies, the
remote ones crossing the network) while memstore loading is CPU-bound
columnar marshalling with no replication (lineage recovers lost blocks).
"""

import time

import pytest

from harness import Figure, make_shark
from repro.columnar.serde import TextSerde
from repro.costmodel import DEFAULT_HARDWARE
from repro.costmodel.constants import MB
from repro.workloads import pavlo

ROWS = 8000


@pytest.fixture(scope="module")
def dataset():
    return pavlo.generate_uservisits(ROWS, num_pages=2000)


def _modelled_ingest_seconds_hdfs(total_bytes: float) -> float:
    """Cluster-wide HDFS ingest: local write + 2 replicated copies over
    the network, spread over the paper's 100 nodes."""
    per_node = total_bytes / 100 / MB
    local_write = per_node / DEFAULT_HARDWARE.disk_write_mb_s
    replication = 2 * per_node / DEFAULT_HARDWARE.network_mb_s
    return local_write + replication


#: Text parse + columnar marshal + compression throughput per core.
#: Parsing delimited text is several times costlier than binary
#: deserialization (which runs at 200 MB/s/core, Section 3.2).
MARSHAL_MB_S_PER_CORE = 25.0


def _modelled_ingest_seconds_memstore(total_bytes: float) -> float:
    """Memstore ingest: CPU-bound columnar marshalling, no replication
    ("Shark can load data into memory at the aggregated throughput of the
    CPUs processing incoming data")."""
    per_node = total_bytes / 100 / MB
    rate = MARSHAL_MB_S_PER_CORE * DEFAULT_HARDWARE.cores_per_node
    return per_node / rate


class TestLoading:
    def test_memstore_vs_hdfs_ingest(self, dataset, benchmark):
        shark = make_shark({}, cached=True)

        # Real execution: load into the memstore and into the DFS, and
        # check the DFS pays replication traffic the memstore does not.
        shark.create_table("uv_mem", dataset.schema, cached=True)
        start = time.perf_counter()
        shark.load_rows("uv_mem", dataset.rows)
        mem_local_s = time.perf_counter() - start

        shark.create_table("uv_hdfs", dataset.schema, cached=False)
        start = time.perf_counter()
        shark.load_rows("uv_hdfs", dataset.rows)
        hdfs_local_s = time.perf_counter() - start

        replicated = shark.store.counters.bytes_replicated
        written = shark.store.counters.bytes_written
        assert replicated == 2 * written  # 3x replication

        benchmark.pedantic(
            lambda: TextSerde(dataset.schema).encode(dataset.rows[:2000]),
            rounds=3,
            iterations=1,
        )

        total_bytes = dataset.represented_bytes
        hdfs_s = _modelled_ingest_seconds_hdfs(total_bytes)
        mem_s = _modelled_ingest_seconds_memstore(total_bytes)

        figure = Figure(
            "Data loading: 2 TB uservisits ingest (modelled, 100 nodes)",
            "Section 6.2.4: memstore ingest 5x faster than HDFS ingest",
        )
        figure.add(
            "Shark memstore", mem_s,
            f"local load took {mem_local_s:.2f}s",
        )
        figure.add(
            "HDFS", hdfs_s,
            f"local load took {hdfs_local_s:.2f}s; "
            f"{replicated / MB:.1f} MB replicated locally",
        )
        figure.show()
        ratio = hdfs_s / mem_s
        print(f"    memstore/HDFS ingest speedup: {ratio:.1f}x (paper: 5x)")
        assert 2.5 < ratio < 12

    def test_rows_queryable_after_both_loads(self, dataset, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        shark = make_shark({}, cached=True)
        shark.create_table("a", dataset.schema, cached=True)
        shark.load_rows("a", dataset.rows)
        shark.create_table("b", dataset.schema, cached=False)
        shark.load_rows("b", dataset.rows)
        mem_count = shark.sql("SELECT COUNT(*) FROM a").scalar()
        hdfs_count = shark.sql("SELECT COUNT(*) FROM b").scalar()
        assert mem_count == hdfs_count == len(dataset.rows)

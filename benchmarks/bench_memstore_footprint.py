"""Section 3.2: in-memory representation footprints.

Paper numbers: 270 MB of TPC-H lineitem stored as JVM objects occupies
~971 MB (3.4x bloat); a serialized row representation needs 289 MB; and
Shark's columnar layout with cheap compression reduces "both the data size
and the processing time by as much as 5x" over naive storage.
"""

import pytest

from harness import Figure
from repro.columnar import (
    ColumnarPartition,
    jvm_object_footprint,
    serialized_footprint,
)
from repro.workloads import tpch

LOCAL_ROWS = 20000


@pytest.fixture(scope="module")
def lineitem():
    return tpch.generate_lineitem(LOCAL_ROWS)


class TestMemstoreFootprint:
    def test_representation_sizes(self, lineitem, benchmark):
        rows = lineitem.rows
        schema = lineitem.schema

        columnar = ColumnarPartition.from_rows(schema, rows)
        benchmark.pedantic(
            lambda: ColumnarPartition.from_rows(schema, rows[:4000]),
            rounds=3,
            iterations=1,
        )
        plain_columnar = ColumnarPartition.from_rows(
            schema, rows, compress=False
        )

        jvm = jvm_object_footprint(schema, rows)
        serialized = serialized_footprint(schema, rows)
        columnar_bytes = columnar.memory_footprint_bytes()
        plain_bytes = plain_columnar.memory_footprint_bytes()

        figure = Figure(
            "Memstore footprint: TPC-H lineitem representations (local MB)",
            "paper: JVM objects 971 MB vs serialized 289 MB (3.4x); "
            "columnar+compression up to 5x smaller than naive",
        )
        mb = 1024 * 1024
        figure.add("JVM row objects", jvm / mb)
        figure.add("Serialized rows", serialized / mb)
        figure.add("Columnar (plain)", plain_bytes / mb)
        figure.add("Columnar (compressed)", columnar_bytes / mb)
        figure.show()
        print(
            f"    JVM/serialized bloat: {jvm / serialized:.2f}x "
            f"(paper: 3.4x); naive/columnar-compressed: "
            f"{jvm / columnar_bytes:.2f}x (paper: up to 5x)"
        )

        # The paper's ordering and rough factors.  (Our lineitem drops the
        # long L_COMMENT string, so the relative JVM overhead runs a bit
        # above the paper's 3.4x.)
        assert jvm > serialized > columnar_bytes
        assert 2.0 < jvm / serialized < 8.0
        assert jvm / columnar_bytes > 4.0
        assert columnar_bytes < plain_bytes

    def test_gc_pressure_object_counts(self, lineitem, benchmark):
        """The GC argument (Section 3.2): one object per column instead of
        one per field.  With 13 columns x 20K rows, row storage creates
        ~260K field objects; the columnar partition creates 13 columns."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = lineitem.rows
        row_format_objects = len(rows) * (len(lineitem.schema) + 1)
        columnar_objects = len(lineitem.schema)
        assert row_format_objects / columnar_objects > 10_000

    def test_compression_preserves_data(self, lineitem, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        part = ColumnarPartition.from_rows(lineitem.schema, lineitem.rows)
        assert part.to_rows() == lineitem.rows

"""Section 7.2: multitenancy and elasticity of fine-grained tasks.

"In a traditional MPP database, if an important query arrives while
another large query [is] using most of the cluster, there are few options
beyond canceling the earlier query.  In systems based on fine-grained
tasks, one can simply wait a few seconds for the current tasks from the
first query to finish, and start giving the nodes tasks from the second
query."

This bench simulates exactly that scenario with a small fair-sharing
discrete-event scheduler: a long batch query owns the cluster; a short
ad-hoc query arrives mid-run.  With sub-second tasks the ad-hoc query's
response time is near its isolated runtime; with coarse-grained plans it
waits for the batch query (or kills it).
"""

import heapq

import pytest

from harness import Figure

SLOTS = 800  # 100 nodes x 8 cores
#: Long batch query: 8000 tasks x 2 s (about 20 s alone on 800 slots).
BATCH_TASKS, BATCH_TASK_S = 8000, 2.0
#: Short ad-hoc query: 800 tasks x 0.5 s (~0.5 s alone).
ADHOC_TASKS, ADHOC_TASK_S = 800, 0.5
ADHOC_ARRIVAL_S = 5.0


def fair_share_response_time(
    batch_task_s: float,
    batch_tasks: int,
    adhoc_task_s: float,
    adhoc_tasks: int,
    arrival_s: float,
    slots: int = SLOTS,
) -> float:
    """Response time of the ad-hoc query under slot-level fair sharing.

    Each slot, when free, takes the next task from the query with the
    fewest running tasks (a miniature fair scheduler, as in the Hadoop and
    Dryad schedulers the paper cites).
    """
    free_at = [0.0] * slots
    heapq.heapify(free_at)
    remaining = {"batch": batch_tasks, "adhoc": adhoc_tasks}
    running = {"batch": 0, "adhoc": 0}
    durations = {"batch": batch_task_s, "adhoc": adhoc_task_s}
    finish = {"batch": 0.0, "adhoc": 0.0}
    # Event list of (time, job) completions to decrement running counts.
    completions: list[tuple[float, str]] = []

    while remaining["batch"] or remaining["adhoc"]:
        now = heapq.heappop(free_at)
        while completions and completions[0][0] <= now:
            __, job = heapq.heappop(completions)
            running[job] -= 1
        # Pick the eligible job with the smaller running share.
        candidates = [
            job
            for job in ("adhoc", "batch")
            if remaining[job]
            and (job != "adhoc" or now >= arrival_s)
        ]
        if not candidates:
            # Only the ad-hoc query remains but has not arrived yet.
            heapq.heappush(free_at, max(now, arrival_s))
            continue
        job = min(candidates, key=lambda j: running[j])
        remaining[job] -= 1
        running[job] += 1
        done = now + durations[job]
        finish[job] = max(finish[job], done)
        heapq.heappush(completions, (done, job))
        heapq.heappush(free_at, done)
    return finish["adhoc"] - arrival_s


class TestMultitenancy:
    def test_adhoc_query_latency_under_batch_load(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

        # Fine-grained tasks (Spark/Shark): slots free every ~2 s; the
        # fair scheduler starts handing them to the ad-hoc query at once.
        fine = fair_share_response_time(
            BATCH_TASK_S, BATCH_TASKS, ADHOC_TASK_S, ADHOC_TASKS,
            ADHOC_ARRIVAL_S,
        )

        # Coarse-grained plan (MPP): the batch query holds all its slots
        # for its whole duration; the ad-hoc query queues behind it.
        batch_alone = BATCH_TASKS * BATCH_TASK_S / SLOTS
        adhoc_alone = ADHOC_TASKS * ADHOC_TASK_S / SLOTS
        coarse_wait = max(batch_alone - ADHOC_ARRIVAL_S, 0.0) + adhoc_alone

        # The third option the paper mentions: cancel the batch query.
        cancel_and_rerun_batch = adhoc_alone  # ad-hoc is fast, but...
        batch_wasted_s = ADHOC_ARRIVAL_S  # ...all batch progress is lost.

        figure = Figure(
            "Multitenancy: ad-hoc query response under a running batch "
            "query (modelled)",
            "Section 7.2: fine-grained tasks -> wait a few seconds; "
            "coarse-grained -> queue or cancel",
        )
        figure.add("Fine-grained tasks (fair share)", fine)
        figure.add("Coarse-grained (queue behind batch)", coarse_wait)
        figure.add(
            "Coarse-grained (cancel batch)", cancel_and_rerun_batch,
            f"destroys {batch_wasted_s:.0f} s of batch progress",
        )
        figure.show()

        # The ad-hoc query gets slots within a couple of task durations.
        assert fine < BATCH_TASK_S * 2 + adhoc_alone + 1.0
        assert coarse_wait > fine * 3

    def test_zipfian_serving_soak_degrades_gracefully(self, benchmark):
        """The PR 8 serving layer, executed for real: a multi-tenant
        SqlServer under Zipfian overload (offered load far above the
        engine's concurrency cap) must shed only the lowest tier, keep
        admitted results byte-identical to an uncontended run, and show
        per-tier latency ordered interactive < batch < best_effort."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        from repro.obs.history import percentile
        from repro.serving import ZipfianWorkload
        from repro.serving.tenants import BEST_EFFORT, INTERACTIVE
        from repro.serving.workload import (
            build_server,
            build_serving_context,
        )

        queries = 240
        shark = build_serving_context()
        server = build_server(shark, queries)
        rejected = 0
        for index, request in enumerate(
            ZipfianWorkload(seed=29, queries=queries).generate()
        ):
            try:
                server.submit(
                    request.tenant,
                    request.text,
                    name=f"{request.tenant}-{index}",
                    deadline_s=request.deadline_s,
                    key=request.template,
                )
            except Exception:  # TenantQuotaExceeded: offered >> capacity
                rejected += 1
        server.drain()

        shed = [t for t in server.finished if t.state == "shed"]
        done = [t for t in server.finished if t.state == "done"]
        by_tier: dict[str, list[float]] = {}
        for ticket in done:
            by_tier.setdefault(ticket.priority, []).append(
                ticket.latency_s
            )
        for values in by_tier.values():
            values.sort()

        figure = Figure(
            "Multi-tenant serving: per-tier p50 latency under Zipfian "
            "overload (executed)",
            "PR 8: weighted fair sharing + tiered shedding; only "
            "best_effort is ever shed",
        )
        for tier in ("interactive", "batch", "best_effort"):
            values = by_tier.get(tier, [])
            if values:
                figure.add(
                    f"{tier} p50",
                    percentile(values, 50.0),
                    f"n={len(values)}, p95={percentile(values, 95.0):.2f}",
                )
        figure.add(
            "shed (all best_effort)", float(len(shed)),
            f"{rejected} quota-rejected at admission",
        )
        figure.show()

        assert shed, "overload should force shedding"
        assert all(t.priority == BEST_EFFORT for t in shed)
        interactive_p50 = percentile(by_tier[INTERACTIVE], 50.0)
        best_effort_p50 = percentile(by_tier[BEST_EFFORT], 50.0)
        assert interactive_p50 < best_effort_p50

    def test_zipfian_soak_with_result_cache(self, benchmark):
        """PR 9: the same Zipfian soak with the query caching stack on.
        A Zipfian workload repeats a handful of templates, so once the
        versioned result cache warms up, a measurable fraction of
        completions is served without running a single task — and the
        per-tenant ledgers attribute every such hit."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        from repro.serving import ZipfianWorkload
        from repro.serving.tenants import BEST_EFFORT
        from repro.serving.workload import (
            build_server,
            build_serving_context,
        )

        queries = 240
        shark = build_serving_context(sql_cache=True)
        server = build_server(shark, queries)
        for index, request in enumerate(
            ZipfianWorkload(seed=29, queries=queries).generate()
        ):
            try:
                server.submit(
                    request.tenant,
                    request.text,
                    name=f"{request.tenant}-{index}",
                    deadline_s=request.deadline_s,
                    key=request.template,
                )
            except Exception:  # TenantQuotaExceeded
                pass
        server.drain()

        shed = [t for t in server.finished if t.state == "shed"]
        attributed = sum(
            state.cache_hits for state in server.tenants.values()
        )
        figure = Figure(
            "Multi-tenant serving with the query caching stack "
            "(executed)",
            "PR 9: repeated Zipfian templates hit the versioned result "
            "cache; admitted results stay byte-identical",
        )
        figure.add("completions", float(server.completed))
        figure.add(
            "served from result cache", float(server.cache_hits),
            f"{attributed} attributed to tenant ledgers",
        )
        figure.add("shed (all best_effort)", float(len(shed)))
        figure.show()

        assert server.cache_hits > 0, "Zipfian repeats should warm cache"
        assert attributed == server.cache_hits
        assert all(t.priority == BEST_EFFORT for t in shed)

    def test_elasticity_new_nodes_absorb_pending_work(self, benchmark):
        """Section 7.2: 'nodes can appear or go away during a query, and
        pending work will automatically be spread onto them' — executed
        for real on the virtual cluster."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        from repro import SharkContext

        shark = SharkContext(num_workers=3, cores_per_worker=2)
        shark.engine.parallelize(range(600), 30).count()
        joined = [shark.engine.add_worker(cores=2) for __ in range(3)]
        shark.engine.parallelize(range(600), 30).count()
        absorbed = sum(worker.tasks_run for worker in joined)
        print(
            f"\n    3 joining workers absorbed {absorbed} of 30 pending "
            f"tasks of the next job"
        )
        assert absorbed >= 10

"""Figure 9: query time under failures (Section 6.3.3).

Paper setup: 50-node cluster, group-by on the 100 GB lineitem table held
in the memstore.  Bars (seconds): full reload ~39, no failures ~14,
single failure ~17 (recovery cost ~3 s), post-recovery slightly below the
pre-failure time.

Reproduced by actually killing a worker mid-query: the engine re-executes
only the lost tasks (visible in the profile), and the extra recovery work
is what separates the "single failure" bar from "no failures".
"""

import pytest

from dataclasses import replace

from harness import Figure, make_shark
from repro.costmodel import ClusterSimulator, SHARK_DISK, SHARK_MEM
from repro.costmodel.bridge import stages_from_profiles
from repro.workloads import tpch

FAULT_NODES = 50  # the paper uses a 50-node cluster for this experiment
LOCAL_ROWS = 12000

QUERY = "SELECT L_RECEIPTDATE, COUNT(*) FROM lineitem GROUP BY L_RECEIPTDATE"

#: Straggler noise off: this figure isolates the *recovery* delta, and
#: random per-run straggler draws would swamp a ~20% effect.
MEM_PROFILE = replace(SHARK_MEM, straggler_fraction=0.0)
DISK_PROFILE = replace(SHARK_DISK, straggler_fraction=0.0)


@pytest.fixture(scope="module")
def dataset():
    return tpch.generate_lineitem(LOCAL_ROWS, represented=tpch.SCALE_100GB)


def _cluster_seconds(shark, scale, engine=MEM_PROFILE):
    stages = stages_from_profiles(shark.engine.profiles, scale)
    return ClusterSimulator(FAULT_NODES, engine).simulate(
        stages
    ).total_seconds


class TestFigure09:
    def test_failure_recovery_timeline(self, dataset, benchmark):
        scale = dataset.scale_factor

        # --- full reload: data must come off HDFS (and deserialize).
        disk_shark = make_shark({"lineitem": dataset}, cached=False)
        disk_shark.engine.reset_profiles()
        disk_rows = disk_shark.sql(QUERY).rows
        full_reload_s = _cluster_seconds(disk_shark, scale, DISK_PROFILE)

        # --- no failures: served from the columnar memstore.
        shark = make_shark({"lineitem": dataset}, cached=True)
        benchmark.pedantic(lambda: shark.sql(QUERY), rounds=2, iterations=1)
        shark.engine.reset_profiles()
        baseline_rows = shark.sql(QUERY).rows
        no_failure_s = _cluster_seconds(shark, scale)
        assert sorted(baseline_rows) == sorted(disk_rows)

        # --- single failure: kill one worker mid-query; lineage recovery
        # re-runs only the lost tasks, all inside the same query.
        base = shark.engine.cluster.total_tasks_completed
        shark.inject_failure(worker_id=1, after_tasks=base + 4)
        shark.engine.reset_profiles()
        failure_rows = shark.sql(QUERY).rows
        failure_s = _cluster_seconds(shark, scale)
        recovered_tasks = sum(
            profile.recovered_tasks for profile in shark.engine.profiles
        )
        assert sorted(failure_rows) == sorted(baseline_rows)
        assert recovered_tasks > 0

        # --- post-recovery: the recomputed partitions are cached again on
        # the survivors; subsequent queries run at full speed.
        shark.engine.reset_profiles()
        post_rows = shark.sql(QUERY).rows
        post_recovery_s = _cluster_seconds(shark, scale)
        assert sorted(post_rows) == sorted(baseline_rows)

        figure = Figure(
            f"Figure 9: query time with failures ({FAULT_NODES} nodes)",
            "Full reload ~39 s / No failures ~14 s / Single failure ~17 s "
            "/ Post-recovery ~ no-failure",
        )
        figure.add("Full reload", full_reload_s)
        figure.add("No failures", no_failure_s)
        figure.add(
            "Single failure", failure_s,
            f"{recovered_tasks} tasks recomputed from lineage",
        )
        figure.add("Post-recovery", post_recovery_s)
        figure.show()

        # Shape: failure adds a modest recovery delta, far cheaper than
        # reloading; post-recovery returns to the baseline.
        assert no_failure_s <= failure_s <= no_failure_s * 2.5
        assert full_reload_s > failure_s * 1.5
        assert post_recovery_s <= no_failure_s * 1.2

    def test_recovery_parallelized_across_survivors(self, dataset, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        shark = make_shark(
            {"lineitem": dataset}, cached=True, num_workers=6
        )
        shark.sql(QUERY)
        before = {
            w.worker_id: w.tasks_run
            for w in shark.engine.cluster.live_workers()
        }
        shark.kill_worker(0)
        shark.sql(QUERY)
        participants = [
            w.worker_id
            for w in shark.engine.cluster.live_workers()
            if w.tasks_run > before.get(w.worker_id, 0)
        ]
        assert len(participants) >= 2

"""Ablation A1: skew handling — bin-packing vs just-more-tasks.

Section 3.1.2 / 7.1: PDE can bin-pack fine-grained partitions into
balanced coarse partitions, but the authors were "somewhat disappointed"
to find that simply launching many small reduce tasks performed just as
well on Spark — because with 5 ms task launches, fine granularity absorbs
skew for free.  On Hadoop, where each task costs seconds to launch, many
small tasks are NOT free, which is why Hadoop needs the careful tuning.

This bench executes a skewed aggregation, takes the *observed* fine-bucket
sizes from the shuffle statistics, and simulates four plans.
"""

import pytest

from harness import Figure, PAPER_NODES, make_shark
from repro.costmodel import (
    ClusterSimulator,
    HIVE,
    SHARK_MEM,
    StageCost,
    TaskCostVector,
)
from repro.costmodel.constants import replace
from repro.engine.rdd import ShuffledRDD
from repro.pde import pack_partitions
from repro.pde.binpack import imbalance
from repro.sql.planner import PlannerConfig

FINE_BUCKETS = 256
COARSE_BINS = 16
#: Cluster-scale bytes the skewed shuffle represents.
TOTAL_SHUFFLE_BYTES = 24e9

NO_NOISE_SHARK = replace(SHARK_MEM, straggler_fraction=0.0)
NO_NOISE_HIVE = replace(HIVE, straggler_fraction=0.0)


@pytest.fixture(scope="module")
def observed_sizes():
    """Real fine-grained bucket sizes from a skewed group-by shuffle."""
    config = PlannerConfig(enable_pde=False)
    shark = make_shark({}, config=config)
    # Zipf-skewed keys: a few huge groups, a long tail.
    rows = []
    for i in range(30000):
        key = i % 997 if i % 3 else i % 7  # heavy head on 7 keys
        rows.append((f"k{key}", i))
    pairs = shark.engine.parallelize(rows, 16)
    from repro.engine.partitioner import HashPartitioner

    shuffled = ShuffledRDD(pairs, HashPartitioner(FINE_BUCKETS))
    stats = shark.engine.materialize_shuffle(shuffled)
    sizes = stats.reduce_input_sizes()
    assert max(sizes) > 3 * (sum(sizes) / len(sizes))  # genuinely skewed
    return sizes


def _stage_from_groups(sizes, groups, scale_bytes):
    """One reduce task per group, sized by its buckets' observed bytes."""
    total = sum(sizes)
    tasks = []
    for group in groups:
        group_bytes = sum(sizes[i] for i in group)
        tasks.append(
            TaskCostVector(
                shuffle_read_bytes=group_bytes / total * scale_bytes,
                records_in=group_bytes / max(total, 1) * 1e8,
                source="shuffle",
            )
        )
    return StageCost("reduce", tasks)


class TestSkewAblation:
    def test_binpack_vs_many_tasks(self, observed_sizes, benchmark):
        sizes = observed_sizes
        benchmark.pedantic(
            lambda: pack_partitions(sizes, COARSE_BINS), rounds=3,
            iterations=1,
        )

        binpacked = pack_partitions(sizes, COARSE_BINS)
        round_robin = [
            [i for i in range(FINE_BUCKETS) if i % COARSE_BINS == bin_index]
            for bin_index in range(COARSE_BINS)
        ]
        fine = [[i] for i in range(FINE_BUCKETS)]

        sim = ClusterSimulator(PAPER_NODES // 25, NO_NOISE_SHARK, seed=7)
        hadoop_sim = ClusterSimulator(PAPER_NODES // 25, NO_NOISE_HIVE, seed=7)

        binpack_s = sim.simulate(
            [_stage_from_groups(sizes, binpacked, TOTAL_SHUFFLE_BYTES)]
        ).total_seconds
        rr_s = sim.simulate(
            [_stage_from_groups(sizes, round_robin, TOTAL_SHUFFLE_BYTES)]
        ).total_seconds
        fine_s = sim.simulate(
            [_stage_from_groups(sizes, fine, TOTAL_SHUFFLE_BYTES)]
        ).total_seconds
        hadoop_fine_s = hadoop_sim.simulate(
            [_stage_from_groups(sizes, fine, TOTAL_SHUFFLE_BYTES)]
        ).total_seconds

        figure = Figure(
            "Ablation A1: skew mitigation for a skewed reduce stage",
            "Section 3.1.2/7.1: bin-packing ~ many-small-tasks on Spark; "
            "many tasks are NOT free on Hadoop",
        )
        figure.add(
            "PDE bin-packed (16 bins)", binpack_s,
            f"imbalance {imbalance(sizes, binpacked):.2f}",
        )
        figure.add(
            "Round-robin (16 bins)", rr_s,
            f"imbalance {imbalance(sizes, round_robin):.2f}",
        )
        figure.add("256 fine tasks (Spark)", fine_s)
        figure.add("256 fine tasks (Hadoop)", hadoop_fine_s)
        figure.show()

        # Bin-packing beats naive coalescing under skew...
        assert binpack_s < rr_s
        # ...but "just run many small tasks" is competitive on Spark (the
        # paper's surprise): within ~30% of the clever plan.
        assert fine_s < binpack_s * 1.3
        # On Hadoop, 256 tasks over 32 slots pay waves of launch overhead.
        assert hadoop_fine_s > fine_s + 30

    def test_packing_quality(self, observed_sizes, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        sizes = observed_sizes
        packed = pack_partitions(sizes, COARSE_BINS)
        naive = [
            [i for i in range(FINE_BUCKETS) if i % COARSE_BINS == b]
            for b in range(COARSE_BINS)
        ]
        assert imbalance(sizes, packed) < imbalance(sizes, naive)
        assert imbalance(sizes, packed) < 1.25

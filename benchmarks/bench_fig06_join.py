"""Figure 6: the Pavlo join query (rankings x uservisits).

Paper result (seconds): Copartitioned ~115 < Shark ~580 ~= Shark(disk)
~620 << Hive ~1850.  Serving from memory barely helps because the join's
shuffle dominates; co-partitioning wins by eliminating the shuffle of
2.1 TB of data.
"""

import pytest

from harness import (
    Figure,
    assert_same_rows,
    hive_cluster_seconds,
    make_hive,
    make_shark,
    shark_cluster_seconds,
)
from repro.costmodel import SHARK_DISK, SHARK_MEM
from repro.costmodel.bridge import combined_scale
from repro.sql.planner import PlannerConfig
from repro.workloads import pavlo

RANKINGS_ROWS = 2500
VISITS_ROWS = 10000


@pytest.fixture(scope="module")
def systems():
    rankings = pavlo.generate_rankings(RANKINGS_ROWS)
    visits = pavlo.generate_uservisits(VISITS_ROWS, num_pages=RANKINGS_ROWS)
    datasets = {"rankings": rankings, "uservisits": visits}
    # Force the paper's shuffle-join comparison: no broadcast shortcut
    # (at 2 TB neither side is broadcastable; locally both are tiny).
    config = PlannerConfig(
        broadcast_threshold_bytes=0, enable_pde=False,
    )
    shark_mem = make_shark(datasets, cached=True, config=config)
    shark_disk = make_shark(datasets, cached=False, config=config)
    hive = make_hive(shark_disk)

    # Co-partitioned variant: both tables DISTRIBUTE BY the join key
    # (Section 3.4's CREATE TABLE ... DISTRIBUTE BY example).
    shark_copart = make_shark(datasets, cached=True, config=config)
    shark_copart.sql(
        "CREATE TABLE r_mem TBLPROPERTIES ('shark.cache'='true') AS "
        "SELECT * FROM rankings DISTRIBUTE BY pageURL"
    )
    shark_copart.sql(
        "CREATE TABLE uv_mem TBLPROPERTIES ('shark.cache'='true', "
        "'copartition'='r_mem') AS SELECT * FROM uservisits "
        "DISTRIBUTE BY destURL"
    )
    return datasets, shark_mem, shark_disk, hive, shark_copart


COPART_QUERY = """
SELECT sourceIP, AVG(pageRank), SUM(adRevenue) as totalRevenue
FROM r_mem AS R, uv_mem AS UV
WHERE R.pageURL = UV.destURL
  AND UV.visitDate BETWEEN DATE '2000-01-15' AND DATE '2000-01-22'
GROUP BY UV.sourceIP
"""


class TestFigure06:
    def test_join_query(self, systems, benchmark):
        datasets, shark_mem, shark_disk, hive, shark_copart = systems
        scale = combined_scale(list(datasets.values()))
        query = pavlo.JOIN_QUERY

        benchmark.pedantic(
            lambda: shark_mem.sql(query), rounds=3, iterations=1
        )

        mem_s, mem_rows = shark_cluster_seconds(
            shark_mem, query, scale, SHARK_MEM
        )
        disk_s, disk_rows = shark_cluster_seconds(
            shark_disk, query, scale, SHARK_DISK
        )
        hive_s, hive_rows = hive_cluster_seconds(
            hive, query, scale, reduce_tasks=800
        )
        copart_s, copart_rows = shark_cluster_seconds(
            shark_copart, COPART_QUERY, scale, SHARK_MEM
        )
        copart_strategy = [
            d.strategy for d in shark_copart.last_report.join_decisions
        ]
        assert copart_strategy == ["copartitioned"]

        assert_same_rows(mem_rows, hive_rows, "pavlo join")
        assert_same_rows(mem_rows, disk_rows, "pavlo join disk")
        assert_same_rows(mem_rows, copart_rows, "pavlo join copartitioned")

        figure = Figure(
            "Figure 6: Pavlo join query (2.1 TB joined)",
            "Copartitioned ~115 s < Shark ~580 s ~= Shark(disk) << Hive ~1850 s",
        )
        figure.add("Copartitioned", copart_s)
        figure.add("Shark", mem_s)
        figure.add("Shark (disk)", disk_s)
        figure.add("Hive", hive_s)
        figure.show()

        # Shape assertions from the paper's figure:
        assert copart_s < mem_s / 1.5  # copartitioning a clear win
        assert hive_s > mem_s * 2  # Hive far slower
        # Memory barely helps when the join shuffle dominates.
        assert disk_s < hive_s

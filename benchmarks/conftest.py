"""Benchmark-suite configuration."""

from __future__ import annotations

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent
_SRC = _ROOT.parent / "src"
for path in (str(_SRC), str(_ROOT)):
    if path not in sys.path:
        sys.path.insert(0, path)

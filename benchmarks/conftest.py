"""Benchmark-suite configuration."""

from __future__ import annotations

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent
_SRC = _ROOT.parent / "src"
for path in (str(_SRC), str(_ROOT)):
    if path not in sys.path:
        sys.path.insert(0, path)


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out",
        default=None,
        help=(
            "Directory for Chrome-trace JSON: every query measured through "
            "harness.shark_cluster_seconds is traced and exported there "
            "(open the files in https://ui.perfetto.dev)."
        ),
    )


def pytest_configure(config):
    trace_out = config.getoption("--trace-out", default=None)
    if trace_out:
        import harness

        harness.TRACE_OUT = trace_out

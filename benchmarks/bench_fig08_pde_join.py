"""Figure 8: join strategies chosen by optimizers (Section 6.3.2).

The query joins 1 TB-scale lineitem with the 10M-row supplier table,
where a UDF keeps ~1000 suppliers.  Three plans, as in the paper:

* **Static** (~105 s): no reliable statistics -> shuffle join of both
  large tables.
* **Adaptive** (~45 s): PDE pre-shuffles both inputs' map stages, observes
  the filtered supplier output is tiny, switches the reduce side to a map
  join — but has already paid the pre-shuffle of lineitem.
* **Static + adaptive** (~35 s, 3x over static): static analysis infers
  supplier is the likely-small side, PDE pre-shuffles *only* supplier,
  observes, broadcasts — lineitem is scanned exactly once by map tasks.
"""

import pytest

from harness import Figure, PAPER_NODES, assert_same_rows, make_shark
from repro.costmodel import ClusterSimulator, SHARK_MEM
from repro.costmodel.bridge import combined_scale, stages_from_profiles
from repro.datatypes import BOOLEAN
from repro.sql.planner import PlannerConfig
from repro.workloads import tpch

LINEITEM_ROWS = 18000
#: TPC-H keeps lineitem:supplier at 600:1 rows; a uniform-scale miniature
#: keeps one blended local->cluster factor valid for both tables.
SUPPLIER_ROWS = LINEITEM_ROWS // tpch.LINEITEM_TO_SUPPLIER_RATIO

QUERY = """
SELECT l.L_ORDERKEY, s.S_NAME
FROM lineitem l JOIN supplier s ON l.L_SUPPKEY = s.S_SUPPKEY
WHERE selective_udf(s.S_ADDRESS)
"""


def _context(enable_pde: bool):
    lineitem = tpch.generate_lineitem(
        LINEITEM_ROWS, represented=tpch.SCALE_1TB
    )
    supplier = tpch.generate_supplier(SUPPLIER_ROWS)
    config = PlannerConfig(
        enable_pde=enable_pde,
        enable_static_join_estimates=False,  # fresh data, no stats
    )
    shark = make_shark(
        {"lineitem": lineitem, "supplier": supplier},
        cached=True,
        config=config,
    )
    # ~1/10 selectivity locally; the optimizer cannot see through it.
    shark.register_udf(
        "selective_udf", lambda addr: addr.endswith("7"),
        return_type=BOOLEAN,
    )
    return shark, [lineitem, supplier]


def _cluster_seconds(shark, datasets, query) -> tuple[float, list]:
    scale = combined_scale(datasets)
    shark.engine.reset_profiles()
    rows = shark.sql(query).rows
    stages = stages_from_profiles(shark.engine.profiles, scale)
    seconds = ClusterSimulator(PAPER_NODES, SHARK_MEM).simulate(
        stages
    ).total_seconds
    return seconds, rows


class TestFigure08:
    def test_join_strategy_comparison(self, benchmark):
        # --- static: shuffle join committed at plan time.
        static_shark, datasets = _context(enable_pde=False)
        static_s, static_rows = _cluster_seconds(
            static_shark, datasets, QUERY
        )
        assert static_shark.last_report.join_decisions[0].strategy == (
            "shuffle"
        )

        # --- adaptive (PDE without static analysis): pre-shuffle BOTH
        # sides, then decide.  Emulated by pre-materializing the lineitem
        # side's map stage before running the PDE plan, exactly the extra
        # work the paper's "adaptive" bar pays.
        adaptive_shark, __ = _context(enable_pde=True)
        scale = combined_scale(datasets)
        adaptive_shark.engine.reset_profiles()
        from repro.engine.partitioner import HashPartitioner
        from repro.sql import physical

        lineitem_rows = adaptive_shark.sql2rdd(
            "SELECT * FROM lineitem"
        )
        suppkey_idx = lineitem_rows.schema.index_of("L_SUPPKEY")
        from repro.sql.expressions import BoundColumn
        from repro.datatypes import INT

        physical.pre_shuffle_side(
            adaptive_shark.engine,
            lineitem_rows.rdd,
            [BoundColumn(suppkey_idx, INT, "L_SUPPKEY")],
            HashPartitioner(adaptive_shark.engine.default_parallelism),
        )
        adaptive_rows = adaptive_shark.sql(QUERY).rows
        adaptive_stages = stages_from_profiles(
            adaptive_shark.engine.profiles, scale
        )
        adaptive_s = ClusterSimulator(PAPER_NODES, SHARK_MEM).simulate(
            adaptive_stages
        ).total_seconds
        decision = adaptive_shark.last_report.join_decisions[0]
        assert decision.strategy.startswith("broadcast")

        # --- static + adaptive: prior analysis probes only supplier.
        combo_shark, __ = _context(enable_pde=True)
        benchmark.pedantic(
            lambda: combo_shark.sql(QUERY), rounds=2, iterations=1
        )
        combo_s, combo_rows = _cluster_seconds(combo_shark, datasets, QUERY)
        combo_decision = combo_shark.last_report.join_decisions[0]
        assert combo_decision.strategy.startswith("broadcast")
        assert "pre-shuffled" in " ".join(combo_shark.last_report.notes)

        assert_same_rows(static_rows, adaptive_rows, "fig8 adaptive")
        assert_same_rows(static_rows, combo_rows, "fig8 combo")

        figure = Figure(
            "Figure 8: join strategies chosen by optimizers",
            "Static ~105 s / Adaptive ~45 s / Static+Adaptive ~35 s (3x)",
        )
        figure.add("Static", static_s, "shuffle join of both tables")
        figure.add("Adaptive", adaptive_s, "pre-shuffled both, then map join")
        figure.add(
            "Static + Adaptive", combo_s,
            "pre-shuffled supplier only, map join",
        )
        figure.show()

        assert combo_s <= adaptive_s <= static_s
        assert figure.ratio("Static", "Static + Adaptive") > 2

"""Figure 1: the paper's headline comparison.

Two real user queries (from the video-analytics warehouse of Section 6.4)
and one logistic-regression iteration, Shark vs Hive/Hadoop on 100 nodes.
Paper bars (seconds): Query 1 — Shark 1.0 vs Hive ~80; Query 2 — Shark
0.96 vs Hive ~55; logistic regression — Shark 0.96 vs Hadoop ~110.
"""

import numpy as np
import pytest

from harness import (
    Figure,
    PAPER_NODES,
    assert_same_rows,
    hive_cluster_seconds,
    make_hive,
    make_shark,
    shark_cluster_seconds,
)
from repro.baselines import HadoopLogisticRegression
from repro.columnar.serde import TextSerde
from repro.costmodel import ClusterSimulator, SHARK_MEM
from repro.costmodel.bridge import stages_from_jobs, stages_from_profiles
from repro.costmodel.constants import replace
from repro.ml import LabeledPoint, LogisticRegression
from repro.storage import DistributedFileStore
from repro.workloads import mlgen, warehouse

ML_SHARK = replace(SHARK_MEM, cpu_per_record_us=0.7)
ML_HADOOP = replace(
    __import__("repro.costmodel", fromlist=["HADOOP_TEXT"]).HADOOP_TEXT,
    cpu_per_record_us=90.0,
)


@pytest.fixture(scope="module")
def warehouse_systems():
    data = warehouse.generate_sessions(num_days=30, rows_per_day=60)
    shark = make_shark(
        {"sessions": data}, cached=True, partitions_per_table=30
    )
    disk = make_shark(
        {"sessions": data}, cached=False, partitions_per_table=30
    )
    hive = make_hive(disk)
    return data, shark, hive


class TestFigure01:
    def test_user_queries(self, warehouse_systems, benchmark):
        data, shark, hive = warehouse_systems
        queries = warehouse.representative_queries(customer="cust2", day=20)
        scale = data.scale_factor

        benchmark.pedantic(
            lambda: shark.sql(queries["q1"]), rounds=2, iterations=1
        )

        figure = Figure(
            "Figure 1 (queries): Shark vs Hive on two real user queries",
            "Query 1: Shark 1.0 s vs Hive ~80 s; Query 2: 0.96 s vs ~55 s",
        )
        for label, name in (("Query 1", "q1"), ("Query 2", "q2")):
            shark_s, shark_rows = shark_cluster_seconds(
                shark, queries[name], scale, SHARK_MEM
            )
            hive_s, hive_rows = hive_cluster_seconds(
                hive, queries[name], scale, reduce_tasks=400
            )
            assert_same_rows(shark_rows, hive_rows, name)
            figure.add(f"{label} Shark", shark_s)
            figure.add(f"{label} Hive", hive_s)
        figure.show()
        assert figure.ratio("Query 1 Hive", "Query 1 Shark") > 25
        assert figure.ratio("Query 2 Hive", "Query 2 Shark") > 25

    def test_logistic_regression_iteration(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        data = mlgen.generate_points(2500, seed=31)
        scale = data.row_scale_factor

        shark = make_shark({"points": data}, cached=True)
        features = shark.sql2rdd(
            "SELECT label, f0, f1, f2, f3, f4, f5, f6, f7, f8, f9 "
            "FROM points"
        ).map_rows(
            lambda row: LabeledPoint(
                float(row.get_int("label")),
                np.array([row.get_double(f"f{i}") for i in range(10)]),
            )
        ).cache()
        features.count()
        shark.engine.reset_profiles()
        iterations = 4
        LogisticRegression(
            iterations=iterations, learning_rate=0.05, seed=2
        ).fit(features)
        shark_s = (
            ClusterSimulator(PAPER_NODES, ML_SHARK)
            .simulate(stages_from_profiles(shark.engine.profiles, scale))
            .total_seconds
            / iterations
        )

        store = DistributedFileStore()
        serde = TextSerde(data.schema)
        store.write_file(
            "/f1/points.txt",
            [serde.encode(data.rows[i::8]) for i in range(8)],
            format="text",
        )
        __, trace = HadoopLogisticRegression(
            store, "/f1/points.txt", data.schema, format="text"
        ).fit(iterations=iterations, learning_rate=0.05, seed=2)
        hadoop_s = (
            ClusterSimulator(PAPER_NODES, ML_HADOOP)
            .simulate(stages_from_jobs(trace.jobs, scale))
            .total_seconds
            / iterations
        )

        figure = Figure(
            "Figure 1 (ML): one logistic-regression iteration",
            "Shark 0.96 s vs Hadoop ~110 s",
        )
        figure.add("Shark", shark_s)
        figure.add("Hadoop", hadoop_s)
        figure.show()
        assert figure.ratio("Hadoop", "Shark") > 20

"""Figure 11: logistic regression, per-iteration runtime (Section 6.5).

Paper result (1 billion 10-d points / 100 GB, 100 nodes): Shark 0.96 s per
iteration vs ~60 s for Hadoop over binary records and ~110 s over text —
about 100x, because Shark iterates over a cached in-memory RDD while
Hadoop re-reads and re-deserializes the dataset from HDFS every iteration.

All three trainers run for real here and converge to identical weights;
only their data paths differ.
"""

import numpy as np
import pytest

from harness import Figure, PAPER_NODES
from repro import SharkContext
from repro.baselines import HadoopLogisticRegression
from repro.columnar.serde import BinarySerde, TextSerde
from repro.costmodel import (
    ClusterSimulator,
    HADOOP_BINARY,
    HADOOP_TEXT,
    SHARK_MEM,
)
from repro.costmodel.bridge import stages_from_profiles, stages_from_jobs
from repro.costmodel.constants import replace
from repro.ml import LabeledPoint, LogisticRegression
from repro.storage import DistributedFileStore
from repro.workloads import mlgen

LOCAL_POINTS = 3000
ITERATIONS = 5
#: Per-point gradient math (a 10-d dot product, exp, scale) costs more
#: than a SQL expression; ~0.7 us/point matches the paper's 0.96 s
#: per iteration for 1B points on 800 cores.
ML_PROFILE = replace(SHARK_MEM, cpu_per_record_us=0.7)
#: Hadoop per-record cost is dominated by MapReduce framework overhead
#: (record readers, Writable boxing, object churn) on top of the math;
#: back-solving the paper's own bars (60 s binary / ~110 s text per
#: iteration for 1.28M records per 128 MB map task) gives ~45 and ~90
#: microseconds per record respectively.
ML_HADOOP_TEXT = replace(HADOOP_TEXT, cpu_per_record_us=90.0)
ML_HADOOP_BINARY = replace(HADOOP_BINARY, cpu_per_record_us=45.0)


@pytest.fixture(scope="module")
def setup():
    data = mlgen.generate_points(LOCAL_POINTS, seed=17)
    shark = SharkContext(num_workers=4, cores_per_worker=2)
    shark.create_table("points", data.schema, cached=True)
    shark.load_rows("points", data.rows)

    store = DistributedFileStore()
    blocks = 8
    per_block = len(data.rows) // blocks
    text = TextSerde(data.schema)
    binary = BinarySerde(data.schema)
    store.write_file(
        "/ml/points.txt",
        [text.encode(data.rows[i * per_block:(i + 1) * per_block])
         for i in range(blocks)],
        format="text",
    )
    store.write_file(
        "/ml/points.bin",
        [binary.encode(data.rows[i * per_block:(i + 1) * per_block])
         for i in range(blocks)],
        format="binary",
    )
    return data, shark, store


def _shark_iteration_seconds(shark, data) -> tuple[float, np.ndarray]:
    table = shark.sql2rdd(
        "SELECT label, f0, f1, f2, f3, f4, f5, f6, f7, f8, f9 FROM points"
    )
    features = table.map_rows(
        lambda row: LabeledPoint(
            float(row.get_int("label")),
            np.array([row.get_double(f"f{i}") for i in range(10)]),
        )
    ).cache()
    features.count()  # materialize the cache before timing iterations
    shark.engine.reset_profiles()
    model = LogisticRegression(
        iterations=ITERATIONS, learning_rate=0.05, seed=9
    ).fit(features)
    scale = data.row_scale_factor
    stages = stages_from_profiles(shark.engine.profiles, scale)
    total = ClusterSimulator(PAPER_NODES, ML_PROFILE).simulate(
        stages
    ).total_seconds
    return total / ITERATIONS, model.weights


def _hadoop_iteration_seconds(store, data, path, format, engine):
    trainer = HadoopLogisticRegression(
        store, path, data.schema, format=format
    )
    model, trace = trainer.fit(
        iterations=ITERATIONS, learning_rate=0.05, seed=9
    )
    scale = data.row_scale_factor
    stages = stages_from_jobs(trace.jobs, scale)
    total = ClusterSimulator(PAPER_NODES, engine).simulate(
        stages
    ).total_seconds
    return total / ITERATIONS, model.weights


class TestFigure11:
    def test_per_iteration_runtimes(self, setup, benchmark):
        data, shark, store = setup
        shark_s, shark_weights = _shark_iteration_seconds(shark, data)
        binary_s, binary_weights = _hadoop_iteration_seconds(
            store, data, "/ml/points.bin", "binary", ML_HADOOP_BINARY
        )
        text_s, text_weights = _hadoop_iteration_seconds(
            store, data, "/ml/points.txt", "text", ML_HADOOP_TEXT
        )

        # All three data paths train the identical model.
        assert np.allclose(shark_weights, binary_weights, atol=1e-6)
        assert np.allclose(shark_weights, text_weights, atol=1e-6)

        benchmark.pedantic(
            lambda: LogisticRegression(iterations=1, seed=9).fit(
                shark.parallelize(
                    [LabeledPoint(1.0, np.ones(10))] * 500, 4
                )
            ),
            rounds=2,
            iterations=1,
        )

        figure = Figure(
            "Figure 11: logistic regression, seconds per iteration",
            "Shark 0.96 s / Hadoop (binary) ~60 s / Hadoop (text) ~110 s",
        )
        figure.add("Shark", shark_s)
        figure.add("Hadoop (binary)", binary_s)
        figure.add("Hadoop (text)", text_s)
        figure.show()

        assert shark_s < binary_s < text_s
        assert figure.ratio("Hadoop (text)", "Shark") > 20
        assert figure.ratio("Hadoop (text)", "Hadoop (binary)") > 1.3

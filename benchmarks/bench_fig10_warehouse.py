"""Figure 10: real Hive warehouse queries (Section 6.4).

Paper result (1.7 TB of 103-column video-session data, 100 nodes): Shark
answers Q1-Q4 in 0.7-1.1 s (sub-second for three of four) while Hive
takes 40-100x longer; map pruning cuts data scanned ~30x thanks to the
logs' natural (day, country) clustering.
"""

import pytest

from harness import (
    Figure,
    assert_same_rows,
    hive_cluster_seconds,
    make_hive,
    make_shark,
    shark_cluster_seconds,
)
from repro.costmodel import SHARK_DISK, SHARK_MEM
from repro.workloads import warehouse

NUM_DAYS = 30
ROWS_PER_DAY = 60


@pytest.fixture(scope="module")
def systems():
    data = warehouse.generate_sessions(
        num_days=NUM_DAYS, rows_per_day=ROWS_PER_DAY
    )
    datasets = {"sessions": data}
    shark_mem = make_shark(
        datasets, cached=True, partitions_per_table=NUM_DAYS
    )
    shark_disk = make_shark(
        datasets, cached=False, partitions_per_table=NUM_DAYS
    )
    hive = make_hive(shark_disk)
    return data, shark_mem, shark_disk, hive


QUERIES = warehouse.representative_queries(customer="cust3", day=12)


@pytest.mark.parametrize("name", ["q1", "q2", "q3", "q4"])
class TestFigure10:
    def test_query(self, systems, benchmark, name):
        data, shark_mem, shark_disk, hive = systems
        query = QUERIES[name]
        scale = data.scale_factor

        benchmark.pedantic(
            lambda: shark_mem.sql(query), rounds=2, iterations=1
        )

        mem_s, mem_rows = shark_cluster_seconds(
            shark_mem, query, scale, SHARK_MEM
        )
        pruning = shark_mem.last_report
        disk_s, disk_rows = shark_cluster_seconds(
            shark_disk, query, scale, SHARK_DISK
        )
        hive_s, hive_rows = hive_cluster_seconds(
            hive, query, scale, reduce_tasks=400
        )
        if "ORDER BY" not in query:
            assert_same_rows(mem_rows, hive_rows, name)
            assert_same_rows(mem_rows, disk_rows, name)
        else:
            assert len(mem_rows) == len(hive_rows)

        scanned = pruning.scanned_partitions
        considered = scanned + pruning.pruned_partitions
        detail = (
            f"scanned {scanned}/{considered} partitions"
            if considered
            else "no pruning applicable"
        )
        figure = Figure(
            f"Figure 10 {name}: real warehouse query",
            "Shark 0.7-1.1 s vs Hive 40-100x slower; ~30x scan reduction",
        )
        figure.add("Shark", mem_s, detail)
        figure.add("Shark (disk)", disk_s)
        figure.add("Hive", hive_s)
        figure.show()

        assert mem_s < hive_s / 8
        assert mem_s <= disk_s

    def test_pruning_factor(self, systems, benchmark, name):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        data, shark_mem, __, ___ = systems
        shark_mem.sql(QUERIES[name])
        report = shark_mem.last_report
        if name in ("q1", "q4"):
            # Single-day predicates prune to one of 30 partitions.
            assert report.scanned_partitions == 1
            assert report.pruned_partitions == NUM_DAYS - 1
        if name == "q2":
            # A 7-day window scans 7 of 30 partitions.
            assert report.scanned_partitions == 7

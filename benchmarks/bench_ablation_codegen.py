"""Ablation A4: expression codegen vs tree interpretation (Section 5).

"By profiling Shark, we discovered that for certain queries, when data is
served out of the memory store the majority of the CPU cycles are wasted
in interpreting these evaluators."  The paper lists bytecode compilation
as in-progress work; this repo implements it (repro.sql.codegen), and —
unlike the cluster figures — this effect is *directly measurable locally*:
same query, same data, compiled vs interpreted evaluators.
"""

import time

import pytest

from harness import make_shark
from repro.sql.codegen import compile_predicate, compile_projection
from repro.sql.planner import PlannerConfig
from repro.workloads import tpch

LOCAL_ROWS = 20000

QUERY = (
    "SELECT L_ORDERKEY, L_EXTENDEDPRICE * (1 - L_DISCOUNT) FROM lineitem "
    "WHERE L_SHIPMODE IN ('AIR', 'SHIP') AND L_QUANTITY BETWEEN 5 AND 45 "
    "AND L_RETURNFLAG <> 'A'"
)


@pytest.fixture(scope="module")
def dataset():
    return tpch.generate_lineitem(LOCAL_ROWS)


def _run_repeatedly(shark, query, repeats=3) -> float:
    start = time.perf_counter()
    for __ in range(repeats):
        shark.sql(query)
    return time.perf_counter() - start


class TestCodegenAblation:
    def test_compiled_faster_than_interpreted(self, dataset, benchmark):
        compiled_shark = make_shark(
            {"lineitem": dataset}, cached=True,
            config=PlannerConfig(enable_codegen=True),
        )
        interpreted_shark = make_shark(
            {"lineitem": dataset}, cached=True,
            config=PlannerConfig(enable_codegen=False),
        )
        # Warm both paths (caches, JIT-free Python still benefits).
        compiled_shark.sql(QUERY)
        interpreted_shark.sql(QUERY)

        benchmark.pedantic(
            lambda: compiled_shark.sql(QUERY), rounds=3, iterations=1
        )

        compiled_s = _run_repeatedly(compiled_shark, QUERY)
        interpreted_s = _run_repeatedly(interpreted_shark, QUERY)
        speedup = interpreted_s / compiled_s
        print(
            f"\n=== Ablation A4: expression codegen (local wall clock)\n"
            f"    interpreted evaluators: {interpreted_s:.3f} s\n"
            f"    compiled evaluators:    {compiled_s:.3f} s\n"
            f"    speedup: {speedup:.2f}x"
        )
        # Results identical either way.
        assert sorted(compiled_shark.sql(QUERY).rows) == sorted(
            interpreted_shark.sql(QUERY).rows
        )
        # Compiled must not be slower (usually 1.2-2x faster on
        # predicate-heavy scans).
        assert compiled_s < interpreted_s * 1.1

    def test_microbenchmark_expression_throughput(self, dataset, benchmark):
        """Row-at-a-time evaluator throughput, isolated from the engine."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        from repro.sql.analyzer import Analyzer, Scope
        from repro.sql.parser import parse_expression
        from repro.sql.functions import FunctionRegistry
        from repro.sql.catalog import Catalog

        scope = Scope.from_schema(dataset.schema, None)
        analyzer = Analyzer(Catalog(), FunctionRegistry())
        condition = analyzer.bind(
            parse_expression(
                "L_SHIPMODE IN ('AIR', 'SHIP') AND "
                "L_QUANTITY BETWEEN 5 AND 45 AND L_RETURNFLAG <> 'A'"
            ),
            scope,
        )
        compiled = compile_predicate(condition)
        rows = dataset.rows

        start = time.perf_counter()
        interpreted_hits = sum(
            1 for row in rows if condition.eval(row) is True
        )
        interpreted_s = time.perf_counter() - start

        start = time.perf_counter()
        compiled_hits = sum(1 for row in rows if compiled(row))
        compiled_s = time.perf_counter() - start

        assert interpreted_hits == compiled_hits
        print(
            f"\n    predicate over {len(rows)} rows: interpreted "
            f"{interpreted_s * 1000:.1f} ms, compiled "
            f"{compiled_s * 1000:.1f} ms "
            f"({interpreted_s / compiled_s:.2f}x)"
        )
        assert compiled_s < interpreted_s

"""Figure 13: job runtime vs number of reduce tasks (Section 7.1).

Paper result: Hadoop's runtime blows up as reduce-task count grows (to
~6000 s at 5000 tasks) because each task costs 5-10 s to launch and tasks
are assigned on 3 s heartbeats, while Spark's stays low (50-200 s) and
*improves* with more tasks — which is why Shark can always run many small
tasks and shrug off skew rather than needing careful tuning.
"""

import pytest

from harness import Figure, PAPER_NODES, make_hive, make_shark
from repro.costmodel import ClusterSimulator, HIVE, SHARK_MEM
from repro.costmodel.bridge import stages_from_jobs, stages_from_profiles
from repro.workloads import tpch

LOCAL_ROWS = 12000
TASK_COUNTS = [50, 200, 500, 1000, 2000, 5000]

QUERY = "SELECT L_RECEIPTDATE, COUNT(*) FROM lineitem GROUP BY L_RECEIPTDATE"


@pytest.fixture(scope="module")
def measured():
    dataset = tpch.generate_lineitem(LOCAL_ROWS, represented=tpch.SCALE_100GB)
    shark = make_shark({"lineitem": dataset}, cached=True)
    shark_disk = make_shark({"lineitem": dataset}, cached=False)
    hive = make_hive(shark_disk)
    scale = dataset.scale_factor

    shark.engine.reset_profiles()
    shark.sql(QUERY)
    shark_profiles = shark.engine.profiles
    hive_run = hive.execute(QUERY)
    return scale, shark_profiles, hive_run


class TestFigure13:
    def test_task_count_sweep(self, measured, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        scale, shark_profiles, hive_run = measured

        hadoop_series = []
        spark_series = []
        for tasks in TASK_COUNTS:
            hadoop_stages = stages_from_jobs(
                hive_run.jobs, scale, reduce_tasks=tasks
            )
            hadoop_s = ClusterSimulator(PAPER_NODES, HIVE).simulate(
                hadoop_stages
            ).total_seconds
            hadoop_series.append(hadoop_s)

            spark_stages = stages_from_profiles(
                shark_profiles, scale, reduce_tasks=tasks
            )
            spark_s = ClusterSimulator(PAPER_NODES, SHARK_MEM).simulate(
                spark_stages
            ).total_seconds
            spark_series.append(spark_s)

        figure = Figure(
            "Figure 13: runtime vs number of reduce tasks",
            "Hadoop explodes with task count (to ~6000 s at 5000 tasks); "
            "Spark stays low and flat",
        )
        for tasks, hadoop_s, spark_s in zip(
            TASK_COUNTS, hadoop_series, spark_series
        ):
            figure.add(
                f"{tasks} tasks", hadoop_s, f"Spark: {spark_s:.2f} s"
            )
        figure.show()

        # Hadoop: strictly growing once task count exceeds the slot count
        # (each extra wave pays launch overhead + heartbeat quantization).
        slots = PAPER_NODES * 8
        beyond = [
            s for t, s in zip(TASK_COUNTS, hadoop_series) if t >= slots
        ]
        assert all(b > a for a, b in zip(beyond, beyond[1:]))
        # Going 50 -> 5000 tasks costs several full waves of multi-second
        # launches (the paper's curve quadruples; the fixed map phase here
        # damps the ratio, so assert the absolute wave-overhead delta).
        extra_waves = (TASK_COUNTS[-1] - slots) / slots
        wave_cost = HIVE.task_launch_overhead_s
        assert hadoop_series[-1] - hadoop_series[0] > extra_waves * wave_cost

        # Spark: insensitive — max/min within a small factor across the
        # whole sweep, and never remotely near Hadoop.
        assert max(spark_series) / min(spark_series) < 5
        assert max(spark_series) < min(hadoop_series) / 5

    def test_skew_tolerated_by_many_small_tasks(self, measured, benchmark):
        """The Section 7.1 observation behind the figure: with 10x more
        tasks than slots, a 10x-slow straggler barely moves the makespan."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        from repro.costmodel import StageCost, TaskCostVector
        from repro.costmodel.constants import MB, replace

        profile = replace(
            SHARK_MEM, straggler_fraction=0.0, task_launch_overhead_s=0.005
        )
        sim = ClusterSimulator(10, profile, seed=1)
        slots = sim.total_slots

        def makespan(num_tasks):
            vector = TaskCostVector(
                records_in=1e6 / num_tasks * slots,
                bytes_in=640 * MB / num_tasks * slots,
                source="memory",
            )
            tasks = [vector] * (num_tasks - 1)
            slow = vector.scaled(10.0)  # one 10x straggler partition
            return sim.simulate(
                [StageCost("sweep", tasks + [slow])]
            ).total_seconds

        coarse = makespan(slots)          # 1 task per slot: straggler gates
        fine = makespan(slots * 10)       # many small tasks: absorbed
        assert fine < coarse / 2

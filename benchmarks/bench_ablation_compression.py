"""Ablation A3: columnar compression schemes (Sections 3.2-3.3).

Per-column, per-partition scheme selection vs single global schemes.  The
paper's claim: cheap compression shrinks the footprint "at virtually no
CPU cost", and local per-partition choices need no coordination while
beating any one-size-fits-all scheme.
"""

import time

import pytest

from harness import Figure
from repro.columnar import ColumnarPartition
from repro.columnar.compression import (
    DICTIONARY,
    PLAIN,
    RLE,
    choose_scheme,
)
from repro.datatypes import StringType
from repro.workloads import tpch, warehouse

LOCAL_ROWS = 15000


@pytest.fixture(scope="module")
def lineitem():
    return tpch.generate_lineitem(LOCAL_ROWS)


def _footprint_with_scheme(dataset, scheme) -> int:
    """Force one global scheme on every compatible column."""
    total = 0
    schema = dataset.schema
    columns = list(zip(*dataset.rows))
    for field_, values in zip(schema.fields, columns):
        values = list(values)
        try:
            encoded = scheme.encode(values, field_.data_type)
        except Exception:
            encoded = PLAIN.encode(values, field_.data_type)
        total += encoded.compressed_bytes
    return total


class TestCompressionAblation:
    def test_auto_selection_beats_global_schemes(self, lineitem, benchmark):
        benchmark.pedantic(
            lambda: ColumnarPartition.from_rows(
                lineitem.schema, lineitem.rows[:4000]
            ),
            rounds=3,
            iterations=1,
        )
        auto = ColumnarPartition.from_rows(
            lineitem.schema, lineitem.rows
        ).memory_footprint_bytes()
        plain = _footprint_with_scheme(lineitem, PLAIN)
        all_rle = _footprint_with_scheme(lineitem, RLE)
        all_dict = _footprint_with_scheme(lineitem, DICTIONARY)

        figure = Figure(
            "Ablation A3: column compression (lineitem footprint, local KB)",
            "per-partition auto-selection vs one global scheme",
        )
        kb = 1024
        figure.add("Auto (per column)", auto / kb)
        figure.add("All plain", plain / kb)
        figure.add("All RLE", all_rle / kb)
        figure.add("All dictionary", all_dict / kb)
        figure.show()

        assert auto < plain
        assert auto <= all_rle * 1.02
        assert auto <= all_dict * 1.02

    def test_compression_cpu_cost_small(self, lineitem, benchmark):
        """"Virtually no CPU cost": compressing while loading costs only a
        small multiple of plain marshalling."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = lineitem.rows

        start = time.perf_counter()
        for __ in range(3):
            ColumnarPartition.from_rows(
                lineitem.schema, rows, compress=False
            )
        plain_s = time.perf_counter() - start

        start = time.perf_counter()
        for __ in range(3):
            ColumnarPartition.from_rows(lineitem.schema, rows, compress=True)
        compressed_s = time.perf_counter() - start
        print(
            f"\n    marshal 3x{len(rows)} rows: plain {plain_s:.3f}s, "
            f"compressed {compressed_s:.3f}s "
            f"({compressed_s / plain_s:.2f}x)"
        )
        assert compressed_s < plain_s * 5

    def test_local_choices_vary_per_partition(self, benchmark):
        """Section 3.3: each load task picks per-partition schemes with no
        global coordination; clustered partitions pick RLE where shuffled
        ones pick dictionary."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        data = warehouse.generate_sessions(num_days=4, rows_per_day=200)
        day_index = data.schema.index_of("day")
        by_day = [
            [row for row in data.rows if row[day_index] == day]
            for day in range(4)
        ]
        import random

        rng = random.Random(5)
        shuffled = list(data.rows)
        rng.shuffle(shuffled)

        clustered_scheme = choose_scheme(
            [row[day_index] for row in by_day[0] + by_day[1]],
            data.schema.fields[day_index].data_type,
        )
        shuffled_scheme = choose_scheme(
            [row[day_index] for row in shuffled],
            data.schema.fields[day_index].data_type,
        )
        assert clustered_scheme.name == "rle"
        assert shuffled_scheme.name != "rle"

    def test_scan_benefit_proportional_to_footprint(self, lineitem, benchmark):
        """Smaller cached bytes -> proportionally less memory traffic per
        scan (the 'reduces processing time' half of the 5x claim)."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        compressed = ColumnarPartition.from_rows(
            lineitem.schema, lineitem.rows
        )
        plain = ColumnarPartition.from_rows(
            lineitem.schema, lineitem.rows, compress=False
        )
        ratio = (
            plain.memory_footprint_bytes()
            / compressed.memory_footprint_bytes()
        )
        assert ratio > 1.5

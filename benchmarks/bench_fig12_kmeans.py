"""Figure 12: k-means clustering, per-iteration runtime (Section 6.5).

Paper result: Shark 4.1 s per iteration vs ~125 s for Hadoop (binary) and
~180 s (text) — ~30x rather than logistic regression's 100x, because
k-means is more CPU-bound (k distance computations per point), which
shrinks the relative advantage of eliminating the data-path overhead.
"""

import numpy as np
import pytest

from harness import Figure, PAPER_NODES
from repro import SharkContext
from repro.baselines import HadoopKMeans
from repro.columnar.serde import BinarySerde, TextSerde
from repro.costmodel import (
    ClusterSimulator,
    HADOOP_BINARY,
    HADOOP_TEXT,
    SHARK_MEM,
)
from repro.costmodel.bridge import stages_from_jobs, stages_from_profiles
from repro.costmodel.constants import replace
from repro.datatypes import Schema
from repro.ml import KMeans
from repro.storage import DistributedFileStore
from repro.workloads import mlgen

LOCAL_POINTS = 3000
ITERATIONS = 4
K = 10

#: k-means computes k distances per point: several times the work of a
#: logistic gradient.  ~3.3 us/point reproduces the paper's 4.1 s per
#: iteration (1B points / 800 cores).
KM_SHARK = replace(SHARK_MEM, cpu_per_record_us=3.3)
#: Hadoop adds framework per-record overhead on top (see Figure 11);
#: back-solved from the paper's 125 s (binary) / 180 s (text) bars.
KM_HADOOP_BINARY = replace(HADOOP_BINARY, cpu_per_record_us=92.0)
KM_HADOOP_TEXT = replace(HADOOP_TEXT, cpu_per_record_us=135.0)


@pytest.fixture(scope="module")
def setup():
    data = mlgen.generate_points(LOCAL_POINTS, seed=29)
    feature_schema = Schema(data.schema.fields[1:])
    features = [row[1:] for row in data.rows]

    shark = SharkContext(num_workers=4, cores_per_worker=2)
    shark.create_table("points", data.schema, cached=True)
    shark.load_rows("points", data.rows)

    store = DistributedFileStore()
    blocks = 8
    per_block = len(features) // blocks
    text = TextSerde(feature_schema)
    binary = BinarySerde(feature_schema)
    store.write_file(
        "/ml/features.txt",
        [text.encode(features[i * per_block:(i + 1) * per_block])
         for i in range(blocks)],
        format="text",
    )
    store.write_file(
        "/ml/features.bin",
        [binary.encode(features[i * per_block:(i + 1) * per_block])
         for i in range(blocks)],
        format="binary",
    )
    return data, feature_schema, shark, store


class TestFigure12:
    def test_per_iteration_runtimes(self, setup, benchmark):
        data, feature_schema, shark, store = setup
        columns = ", ".join(f"f{i}" for i in range(10))
        table = shark.sql2rdd(f"SELECT {columns} FROM points")
        vectors = table.rdd.map(
            lambda row: np.asarray(row, dtype=np.float64)
        ).cache()
        vectors.count()

        shark.engine.reset_profiles()
        shark_model = KMeans(k=K, iterations=ITERATIONS, seed=5).fit(vectors)
        scale = data.row_scale_factor
        shark_s = (
            ClusterSimulator(PAPER_NODES, KM_SHARK)
            .simulate(stages_from_profiles(shark.engine.profiles, scale))
            .total_seconds
            / ITERATIONS
        )

        def hadoop(path, format, engine):
            model, trace = HadoopKMeans(
                store, path, feature_schema, format=format
            ).fit(k=K, iterations=ITERATIONS, seed=5)
            seconds = (
                ClusterSimulator(PAPER_NODES, engine)
                .simulate(stages_from_jobs(trace.jobs, scale))
                .total_seconds
                / ITERATIONS
            )
            return seconds, model

        binary_s, binary_model = hadoop(
            "/ml/features.bin", "binary", KM_HADOOP_BINARY
        )
        text_s, text_model = hadoop(
            "/ml/features.txt", "text", KM_HADOOP_TEXT
        )

        # Identical seeds over identical data: identical clusterings.
        assert np.allclose(binary_model.centers, text_model.centers)

        benchmark.pedantic(
            lambda: KMeans(k=2, iterations=1, seed=5).fit(
                shark.parallelize([np.ones(10)] * 400, 4)
            ),
            rounds=2,
            iterations=1,
        )

        figure = Figure(
            "Figure 12: k-means, seconds per iteration",
            "Shark 4.1 s / Hadoop (binary) ~125 s / Hadoop (text) ~180 s",
        )
        figure.add("Shark", shark_s)
        figure.add("Hadoop (binary)", binary_s)
        figure.add("Hadoop (text)", text_s)
        figure.show()

        assert shark_s < binary_s < text_s
        # ~30x, noticeably below logistic regression's ~100x gap.
        assert 5 < figure.ratio("Hadoop (binary)", "Shark") < 120

"""Shared benchmark harness.

Every bench follows the same recipe:

1. build a SharkContext over a scaled-down workload dataset;
2. *execute* the paper's query for real (correct rows, measured volumes);
3. scale the measured per-stage volumes to the paper's dataset sizes and
   simulate the makespan on the paper's cluster (100 nodes, Section 6.1)
   under each engine profile;
4. print the same series the paper's figure/table reports.

Absolute seconds will not match EC2 2012; the *shape* — who wins, by
roughly what factor, where crossovers fall — is the reproduction target.
Local wall-clock time is additionally measured by pytest-benchmark.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import SharkContext
from repro.baselines import HiveExecutor, JobStats
from repro.costmodel import (
    ClusterSimulator,
    EngineProfile,
    HIVE,
    SHARK_DISK,
    SHARK_MEM,
)
from repro.costmodel.bridge import (
    stages_from_jobs,
    stages_from_profiles,
)
from repro.sql.planner import PlannerConfig
from repro.workloads.base import Dataset

#: The paper's main cluster size (Section 6.1).
PAPER_NODES = 100

#: When set (the benchmark suite's ``--trace-out DIR`` option, or assign
#: directly), :func:`shark_cluster_seconds` enables span tracing around
#: each measured query and writes one Chrome-trace JSON per query into
#: this directory.  None (the default) leaves tracing off: the measured
#: path pays only a disabled-flag check.
TRACE_OUT: Optional[str] = None
_trace_sequence = 0

#: When set to a directory, every :func:`make_shark` context opens a
#: persistent event log there (``events_NNN.jsonl``), so each measured
#: query's records — plan, profile, counters, timeline — survive the
#: run for ``python -m repro.obs.history`` post-mortems.  Unlike
#: TRACE_OUT this does not enable span tracing; the event log records
#: what the always-on layer knows.
EVENT_LOG_OUT: Optional[str] = None
_event_log_sequence = 0


def _next_trace_path() -> str:
    global _trace_sequence
    _trace_sequence += 1
    os.makedirs(TRACE_OUT, exist_ok=True)
    return os.path.join(TRACE_OUT, f"query_{_trace_sequence:03d}.json")


def _next_event_log_path() -> str:
    global _event_log_sequence
    _event_log_sequence += 1
    os.makedirs(EVENT_LOG_OUT, exist_ok=True)
    return os.path.join(
        EVENT_LOG_OUT, f"events_{_event_log_sequence:03d}.jsonl"
    )


@dataclass
class BenchResult:
    """One bar of a figure: a label and its modelled cluster seconds."""

    label: str
    seconds: float
    detail: str = ""


@dataclass
class Figure:
    """A named collection of bars, printed like the paper reports them."""

    title: str
    paper_reference: str
    results: list[BenchResult] = field(default_factory=list)

    def add(self, label: str, seconds: float, detail: str = "") -> None:
        self.results.append(BenchResult(label, seconds, detail))

    def seconds(self, label: str) -> float:
        for result in self.results:
            if result.label == label:
                return result.seconds
        raise KeyError(label)

    def ratio(self, slow: str, fast: str) -> float:
        return self.seconds(slow) / max(self.seconds(fast), 1e-9)

    def show(self) -> None:
        print(f"\n=== {self.title}")
        print(f"    paper: {self.paper_reference}")
        width = max(len(r.label) for r in self.results) if self.results else 0
        for result in self.results:
            detail = f"   ({result.detail})" if result.detail else ""
            print(
                f"    {result.label:<{width}}  "
                f"{result.seconds:>10.2f} s{detail}"
            )


def make_shark(
    datasets: dict[str, Dataset],
    cached: bool = True,
    config: Optional[PlannerConfig] = None,
    num_workers: int = 4,
    partitions_per_table: Optional[int] = None,
) -> SharkContext:
    """A SharkContext with every dataset loaded as a table."""
    shark = SharkContext(
        num_workers=num_workers, cores_per_worker=2, config=config
    )
    for name, dataset in datasets.items():
        shark.create_table(name, dataset.schema, cached=cached)
        shark.load_rows(name, dataset.rows, partitions_per_table)
    if EVENT_LOG_OUT is not None:
        shark.enable_event_log(_next_event_log_path(), source="bench")
    return shark


def make_hive(shark: SharkContext, num_reducers: int = 8) -> HiveExecutor:
    """A Hive executor over the same catalog/data as ``shark``."""

    def table_rows(entry):
        rdd = shark.session._scan_rdd(entry)
        return shark.engine.run_job(rdd, list)

    return HiveExecutor(
        shark.session.catalog,
        shark.store,
        shark.session.registry,
        num_reducers=num_reducers,
        table_rows=table_rows,
    )


def shark_cluster_seconds(
    shark: SharkContext,
    query: str,
    scale: float,
    engine: EngineProfile = SHARK_MEM,
    num_nodes: int = PAPER_NODES,
    reduce_tasks: Optional[int] = None,
) -> tuple[float, list]:
    """Execute ``query`` on Shark, then model it at cluster scale.

    Returns (modelled seconds, result rows).
    """
    tracing = TRACE_OUT is not None
    if tracing:
        shark.engine.enable_tracing(reset=True)
    shark.engine.reset_profiles()
    result = shark.sql(query)
    stages = stages_from_profiles(
        shark.engine.profiles, scale, reduce_tasks=reduce_tasks
    )
    simulator = ClusterSimulator(
        num_nodes, engine, tracer=shark.engine.tracer if tracing else None
    )
    cost = simulator.simulate(stages)
    if tracing:
        shark.engine.trace.write_chrome_trace(
            _next_trace_path(),
            metadata={"query": query, "engine": engine.name},
        )
        shark.engine.disable_tracing()
    return cost.total_seconds, result.rows


def hive_cluster_seconds(
    hive: HiveExecutor,
    query: str,
    scale: float,
    engine: EngineProfile = HIVE,
    num_nodes: int = PAPER_NODES,
    reduce_tasks: Optional[int] = None,
) -> tuple[float, list]:
    """Execute ``query`` on the Hive baseline, then model it at scale."""
    run = hive.execute(query)
    stages = stages_from_jobs(run.jobs, scale, reduce_tasks=reduce_tasks)
    cost = ClusterSimulator(num_nodes, engine).simulate(stages)
    return cost.total_seconds, run.rows


def jobs_cluster_seconds(
    jobs: list[JobStats],
    scale: float,
    engine: EngineProfile,
    num_nodes: int = PAPER_NODES,
    reduce_tasks: Optional[int] = None,
) -> float:
    stages = stages_from_jobs(jobs, scale, reduce_tasks=reduce_tasks)
    return ClusterSimulator(num_nodes, engine).simulate(stages).total_seconds


def assert_same_rows(left: list, right: list, context: str = "") -> None:
    """Cross-engine differential check inside benches."""
    def normalize(rows):
        out = []
        for row in rows:
            out.append(
                tuple(
                    round(v, 6) if isinstance(v, float) else v for v in row
                )
            )
        return sorted(out, key=repr)

    assert normalize(left) == normalize(right), (
        f"row mismatch between engines{': ' + context if context else ''}"
    )


def hand_tuned_reducers(scale_bytes: float) -> int:
    """The 'Hive (tuned)' reducer count: roughly one reducer per 256 MB of
    shuffle input, capped at the cluster's slot count (Section 6.3)."""
    tuned = int(scale_bytes / (256 * 1024 * 1024)) + 1
    return max(8, min(tuned, PAPER_NODES * 8))

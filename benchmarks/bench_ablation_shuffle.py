"""Ablation A2: memory-based vs disk-based shuffle (Section 5).

"We modified the shuffle phase to materialize map outputs in memory, with
the option to spill them to disk" — because file-system writes plus
journaling add overhead, and uncontrollable buffer-cache flushes add
*variance*, and "a query's response time is determined by the last task to
finish", so tail latency dominates shuffle-heavy queries.
"""

import pytest

from harness import Figure, PAPER_NODES, make_shark
from repro.costmodel import ClusterSimulator, SHARK_MEM
from repro.costmodel.bridge import stages_from_profiles
from repro.costmodel.constants import replace
from repro.sql.planner import PlannerConfig
from repro.workloads import pavlo

#: Memory shuffle: map output written at DRAM speed, low variance.
MEM_SHUFFLE = replace(SHARK_MEM, straggler_fraction=0.02)
#: Disk shuffle: map output written through the file system; buffer-cache
#: flush timing makes a visible fraction of tasks slow (Section 5).
DISK_SHUFFLE = replace(
    SHARK_MEM,
    memory_shuffle=False,
    straggler_fraction=0.25,
    straggler_slowdown=6.0,
)


@pytest.fixture(scope="module")
def measured():
    visits = pavlo.generate_uservisits(12000, num_pages=2500, num_ips=2000)
    config = PlannerConfig(enable_pde=True)
    shark = make_shark({"uservisits": visits}, cached=True, config=config)
    shark.engine.reset_profiles()
    shark.sql(pavlo.AGGREGATION_FULL_QUERY)
    return visits, shark.engine.profiles


class TestShuffleAblation:
    def test_memory_vs_disk_shuffle(self, measured, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        visits, profiles = measured
        stages = stages_from_profiles(profiles, visits.scale_factor)

        mem_s = ClusterSimulator(
            PAPER_NODES, MEM_SHUFFLE, seed=11
        ).simulate(stages).total_seconds
        disk_s = ClusterSimulator(
            PAPER_NODES, DISK_SHUFFLE, seed=11
        ).simulate(stages).total_seconds
        disk_no_spec_s = ClusterSimulator(
            PAPER_NODES, DISK_SHUFFLE, seed=11, speculation=False
        ).simulate(stages).total_seconds

        figure = Figure(
            "Ablation A2: shuffle materialization (Pavlo aggregation, 2 TB)",
            "Section 5: memory-based shuffle avoids file-system overhead "
            "and the tail latency of buffer-cache flushes",
        )
        figure.add("Memory shuffle", mem_s)
        figure.add("Disk shuffle", disk_s)
        figure.add(
            "Disk shuffle, no speculation", disk_no_spec_s,
            "tail latency unmitigated",
        )
        figure.show()

        assert mem_s < disk_s <= disk_no_spec_s

    def test_variance_drives_tail(self, benchmark):
        """Same work, different variance: response time tracks the tail."""
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        from repro.costmodel import StageCost, TaskCostVector
        from repro.costmodel.constants import MB

        stage = StageCost.uniform(
            "shuffle-heavy",
            800,
            TaskCostVector(shuffle_read_bytes=32 * MB, source="shuffle"),
        )
        runs_low = ClusterSimulator(
            PAPER_NODES, MEM_SHUFFLE, seed=3, speculation=False
        ).simulate([stage]).total_seconds
        runs_high = ClusterSimulator(
            PAPER_NODES, DISK_SHUFFLE, seed=3, speculation=False
        ).simulate([stage]).total_seconds
        assert runs_high > runs_low * 1.5

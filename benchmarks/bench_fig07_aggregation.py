"""Figure 7: TPC-H lineitem group-by micro-benchmarks.

Paper result (100 nodes):

* 100 GB (600M rows): Shark 0.97 / 1.05 / 3.5 / 5.6 s for 1 / 7 / 2.5K /
  150M groups, vs hand-tuned Hive 100-700 s (~80x small groups, ~20x
  large), untuned Hive worse still.
* 1 TB (6B rows): Shark 13.2-27.4 s vs Hive 1000s-5700 s.

Four bars per group count: Shark, Shark (disk), Hive (tuned reducers),
Hive (untuned: too few reducers, the optimizer's frequent mistake).
"""

import argparse
import json
import math
import sys
import time
from dataclasses import replace

import pytest

from harness import (
    Figure,
    assert_same_rows,
    hand_tuned_reducers,
    hive_cluster_seconds,
    make_hive,
    make_shark,
    shark_cluster_seconds,
)
from repro.costmodel import SHARK_DISK, SHARK_MEM
from repro.workloads import tpch

LOCAL_ROWS = 16000

GROUP_LABELS = {1: "1", 7: "7", 2500: "2.5K", "max": "150M"}


@pytest.fixture(scope="module")
def systems():
    lineitem_100g = tpch.generate_lineitem(
        LOCAL_ROWS, represented=tpch.SCALE_100GB
    )
    datasets = {"lineitem": lineitem_100g}
    shark_mem = make_shark(datasets, cached=True)
    shark_disk = make_shark(datasets, cached=False)
    hive = make_hive(shark_disk)
    return datasets, shark_mem, shark_disk, hive


def _run_group_count(systems, key, represented):
    datasets, shark_mem, shark_disk, hive = systems
    dataset = datasets["lineitem"]
    scale = represented[0] / dataset.local_bytes
    query = tpch.AGGREGATION_QUERIES[key]

    mem_s, mem_rows = shark_cluster_seconds(shark_mem, query, scale, SHARK_MEM)
    disk_s, disk_rows = shark_cluster_seconds(
        shark_disk, query, scale, SHARK_DISK
    )
    tuned = hand_tuned_reducers(represented[0] / 50)
    hive_tuned_s, hive_rows = hive_cluster_seconds(
        hive, query, scale, reduce_tasks=tuned
    )
    # Untuned Hive: the optimizer "frequently made the wrong decision,
    # leading to incredibly long query execution times".  With Hadoop's
    # multi-second task launch, over-provisioning reducers is the failure
    # Figure 13 plots (runtime exploding with task count).
    hive_untuned_s, __ = hive_cluster_seconds(
        hive, query, scale, reduce_tasks=5000
    )
    assert_same_rows(mem_rows, hive_rows, query)
    assert_same_rows(mem_rows, disk_rows, query)
    return mem_s, disk_s, hive_tuned_s, hive_untuned_s


@pytest.mark.parametrize("key", [1, 7, 2500, "max"])
class TestFigure07_100GB:
    def test_group_count(self, systems, benchmark, key):
        __, shark_mem, ___, ____ = systems
        query = tpch.AGGREGATION_QUERIES[key]
        benchmark.pedantic(
            lambda: shark_mem.sql(query), rounds=2, iterations=1
        )
        mem_s, disk_s, tuned_s, untuned_s = _run_group_count(
            systems, key, tpch.SCALE_100GB
        )
        figure = Figure(
            f"Figure 7 (100 GB): {GROUP_LABELS[key]} groups",
            "Shark 0.97-5.6 s / Hive(tuned) ~100-700 s / Hive worse",
        )
        figure.add("Shark", mem_s)
        figure.add("Shark (disk)", disk_s)
        figure.add("Hive (tuned)", tuned_s)
        figure.add("Hive", untuned_s)
        figure.show()
        assert mem_s < disk_s
        assert mem_s < tuned_s / 8
        assert tuned_s <= untuned_s * 1.05


class TestFigure07_1TB:
    """Same queries at the 1 TB scale: everything ~10x the 100 GB bars."""

    @pytest.mark.parametrize("key", [1, "max"])
    def test_scales_tenfold(self, systems, key, benchmark):
        __, shark_mem, ___, ____ = systems
        benchmark.pedantic(
            lambda: shark_mem.sql(tpch.AGGREGATION_QUERIES[key]),
            rounds=2, iterations=1,
        )
        mem_100, __, tuned_100, ___ = _run_group_count(
            systems, key, tpch.SCALE_100GB
        )
        mem_1t, __, tuned_1t, ___ = _run_group_count(
            systems, key, tpch.SCALE_1TB
        )
        figure = Figure(
            f"Figure 7 (1 TB): {GROUP_LABELS[key]} groups",
            "Shark 13.2-27.4 s / Hive ~5100-5700 s",
        )
        figure.add("Shark", mem_1t)
        figure.add("Hive (tuned)", tuned_1t)
        figure.show()
        # Paper scaling 100 GB -> 1 TB is ~5-6x (fixed per-query overheads
        # keep it sublinear); require clearly-more-than-2x growth.
        assert mem_1t > mem_100 * 2
        assert tuned_1t > tuned_100 * 2
        assert mem_1t < tuned_1t


# ---------------------------------------------------------------------------
# Tiny mode: vectorize on/off wall-clock comparison (CI smoke job)
# ---------------------------------------------------------------------------


def _wall_seconds(shark, query, vectorize, reps):
    """Best-of-``reps`` real wall-clock for one query in one mode."""
    shark.session.config = replace(
        shark.session.config, vectorize=vectorize
    )
    rows = shark.sql(query).rows  # warm-up: plans cached, JIT-free
    best = float("inf")
    for __ in range(reps):
        start = time.perf_counter()
        rows = shark.sql(query).rows
        best = min(best, time.perf_counter() - start)
    return best, rows


def _assert_byte_identical(vectorized, row_mode, query):
    """Same multiset of rows with identical types and reprs."""
    left = sorted((tuple(r) for r in vectorized), key=repr)
    right = sorted((tuple(r) for r in row_mode), key=repr)
    if len(left) != len(right) or any(
        type(x) is not type(y) or repr(x) != repr(y)
        for lr, rr in zip(left, right)
        for x, y in zip(lr, rr)
    ):
        raise AssertionError(f"vectorized != row results for: {query}")


def run_tiny(rows, out_path, min_speedup, reps=3):
    """Run the Figure 7 aggregation queries with the batch pipeline on
    and off, recording real wall-clock and simulated cluster seconds.

    The speedup gate applies to the geometric mean across the four
    group counts: the 1/7/2.5K-group shapes vectorize almost entirely,
    while the 150M-group shape is dominated by the (mode-independent)
    shuffle and merge of one output row per input quartet.
    """
    dataset = tpch.generate_lineitem(rows, represented=tpch.SCALE_100GB)
    shark = make_shark({"lineitem": dataset}, cached=True)
    scale = tpch.SCALE_100GB[0] / dataset.local_bytes

    results = []
    for key in [1, 7, 2500, "max"]:
        query = tpch.AGGREGATION_QUERIES[key]
        on_wall, on_rows = _wall_seconds(shark, query, True, reps)
        off_wall, off_rows = _wall_seconds(shark, query, False, reps)
        _assert_byte_identical(on_rows, off_rows, query)
        shark.session.config = replace(shark.session.config, vectorize=True)
        on_sim, __ = shark_cluster_seconds(shark, query, scale, SHARK_MEM)
        shark.session.config = replace(shark.session.config, vectorize=False)
        off_sim, __ = shark_cluster_seconds(shark, query, scale, SHARK_MEM)
        results.append(
            {
                "groups": GROUP_LABELS[key],
                "query": " ".join(query.split()),
                "wall_seconds_vectorized": on_wall,
                "wall_seconds_row": off_wall,
                "wall_speedup": off_wall / on_wall,
                "sim_seconds_vectorized": on_sim,
                "sim_seconds_row": off_sim,
                "result_rows": len(on_rows),
            }
        )
        print(
            f"fig07[{GROUP_LABELS[key]} groups] "
            f"vectorized {on_wall * 1000:.1f} ms, "
            f"row {off_wall * 1000:.1f} ms "
            f"({off_wall / on_wall:.2f}x), "
            f"sim {on_sim:.2f}s vs {off_sim:.2f}s"
        )

    geomean = math.exp(
        sum(math.log(entry["wall_speedup"]) for entry in results)
        / len(results)
    )
    payload = {
        "benchmark": "fig07_aggregation_tiny",
        "rows": rows,
        "reps": reps,
        "geomean_wall_speedup": geomean,
        "min_speedup_required": min_speedup,
        "queries": results,
    }
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    shark.close_event_log()
    print(f"geomean wall speedup {geomean:.2f}x -> {out_path}")
    if geomean < min_speedup:
        print(
            f"FAIL: geomean speedup {geomean:.2f}x < "
            f"required {min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Figure 7 tiny mode: vectorize on/off wall-clock smoke"
    )
    parser.add_argument("--rows", type=int, default=100_000)
    parser.add_argument("--out", default="BENCH_fig07.json")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--event-log-out",
        default=None,
        help="directory for persistent query event logs "
        "(python -m repro.obs.history <dir> to inspect)",
    )
    options = parser.parse_args(argv)
    if options.event_log_out:
        import harness

        harness.EVENT_LOG_OUT = options.event_log_out
    return run_tiny(
        options.rows, options.out, options.min_speedup, options.reps
    )


if __name__ == "__main__":
    sys.exit(main())

"""Figure 7: TPC-H lineitem group-by micro-benchmarks.

Paper result (100 nodes):

* 100 GB (600M rows): Shark 0.97 / 1.05 / 3.5 / 5.6 s for 1 / 7 / 2.5K /
  150M groups, vs hand-tuned Hive 100-700 s (~80x small groups, ~20x
  large), untuned Hive worse still.
* 1 TB (6B rows): Shark 13.2-27.4 s vs Hive 1000s-5700 s.

Four bars per group count: Shark, Shark (disk), Hive (tuned reducers),
Hive (untuned: too few reducers, the optimizer's frequent mistake).
"""

import pytest

from harness import (
    Figure,
    assert_same_rows,
    hand_tuned_reducers,
    hive_cluster_seconds,
    make_hive,
    make_shark,
    shark_cluster_seconds,
)
from repro.costmodel import SHARK_DISK, SHARK_MEM
from repro.workloads import tpch

LOCAL_ROWS = 16000

GROUP_LABELS = {1: "1", 7: "7", 2500: "2.5K", "max": "150M"}


@pytest.fixture(scope="module")
def systems():
    lineitem_100g = tpch.generate_lineitem(
        LOCAL_ROWS, represented=tpch.SCALE_100GB
    )
    datasets = {"lineitem": lineitem_100g}
    shark_mem = make_shark(datasets, cached=True)
    shark_disk = make_shark(datasets, cached=False)
    hive = make_hive(shark_disk)
    return datasets, shark_mem, shark_disk, hive


def _run_group_count(systems, key, represented):
    datasets, shark_mem, shark_disk, hive = systems
    dataset = datasets["lineitem"]
    scale = represented[0] / dataset.local_bytes
    query = tpch.AGGREGATION_QUERIES[key]

    mem_s, mem_rows = shark_cluster_seconds(shark_mem, query, scale, SHARK_MEM)
    disk_s, disk_rows = shark_cluster_seconds(
        shark_disk, query, scale, SHARK_DISK
    )
    tuned = hand_tuned_reducers(represented[0] / 50)
    hive_tuned_s, hive_rows = hive_cluster_seconds(
        hive, query, scale, reduce_tasks=tuned
    )
    # Untuned Hive: the optimizer "frequently made the wrong decision,
    # leading to incredibly long query execution times".  With Hadoop's
    # multi-second task launch, over-provisioning reducers is the failure
    # Figure 13 plots (runtime exploding with task count).
    hive_untuned_s, __ = hive_cluster_seconds(
        hive, query, scale, reduce_tasks=5000
    )
    assert_same_rows(mem_rows, hive_rows, query)
    assert_same_rows(mem_rows, disk_rows, query)
    return mem_s, disk_s, hive_tuned_s, hive_untuned_s


@pytest.mark.parametrize("key", [1, 7, 2500, "max"])
class TestFigure07_100GB:
    def test_group_count(self, systems, benchmark, key):
        __, shark_mem, ___, ____ = systems
        query = tpch.AGGREGATION_QUERIES[key]
        benchmark.pedantic(
            lambda: shark_mem.sql(query), rounds=2, iterations=1
        )
        mem_s, disk_s, tuned_s, untuned_s = _run_group_count(
            systems, key, tpch.SCALE_100GB
        )
        figure = Figure(
            f"Figure 7 (100 GB): {GROUP_LABELS[key]} groups",
            "Shark 0.97-5.6 s / Hive(tuned) ~100-700 s / Hive worse",
        )
        figure.add("Shark", mem_s)
        figure.add("Shark (disk)", disk_s)
        figure.add("Hive (tuned)", tuned_s)
        figure.add("Hive", untuned_s)
        figure.show()
        assert mem_s < disk_s
        assert mem_s < tuned_s / 8
        assert tuned_s <= untuned_s * 1.05


class TestFigure07_1TB:
    """Same queries at the 1 TB scale: everything ~10x the 100 GB bars."""

    @pytest.mark.parametrize("key", [1, "max"])
    def test_scales_tenfold(self, systems, key, benchmark):
        __, shark_mem, ___, ____ = systems
        benchmark.pedantic(
            lambda: shark_mem.sql(tpch.AGGREGATION_QUERIES[key]),
            rounds=2, iterations=1,
        )
        mem_100, __, tuned_100, ___ = _run_group_count(
            systems, key, tpch.SCALE_100GB
        )
        mem_1t, __, tuned_1t, ___ = _run_group_count(
            systems, key, tpch.SCALE_1TB
        )
        figure = Figure(
            f"Figure 7 (1 TB): {GROUP_LABELS[key]} groups",
            "Shark 13.2-27.4 s / Hive ~5100-5700 s",
        )
        figure.add("Shark", mem_1t)
        figure.add("Hive (tuned)", tuned_1t)
        figure.show()
        # Paper scaling 100 GB -> 1 TB is ~5-6x (fixed per-query overheads
        # keep it sublinear); require clearly-more-than-2x growth.
        assert mem_1t > mem_100 * 2
        assert tuned_1t > tuned_100 * 2
        assert mem_1t < tuned_1t

"""Hive: the same SQL front end, lowered to chains of MapReduce jobs.

This executor reuses the repro analyzer and optimizer (mirroring reality —
Shark itself reuses Hive's query compiler, Section 2.4) but lowers the
logical plan the way Hive does:

* narrow operator chains (filter/project) fuse into the *map phase* of the
  consuming job;
* every blocking operator — aggregation, join, sort, distinct,
  repartition — is its own MapReduce job with a sort-based shuffle;
* when one job feeds another, the intermediate output is materialized to
  the replicated file system (``materialized_output=True``), the first
  cost Section 7.1 calls out.

Rows produced are identical to Shark's, which the differential tests
verify; only the job structure and cost accounting differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.baselines.mapreduce import JobStats, MapReduceEngine
from repro.columnar.serde import TextSerde
from repro.datatypes import Schema
from repro.errors import UnsupportedFeatureError
from repro.sql import ast, logical
from repro.sql.analyzer import Analyzer
from repro.sql.catalog import Catalog, TableEntry
from repro.sql.functions import FunctionRegistry
from repro.sql.optimizer import optimize
from repro.sql.parser import parse
from repro.sql.physical import SortKey
from repro.storage import DistributedFileStore


@dataclass
class HiveQueryRun:
    """Result rows plus the MapReduce job chain that produced them."""

    rows: list[tuple]
    schema: Schema
    jobs: list[JobStats] = field(default_factory=list)

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def materialized_bytes(self) -> int:
        return sum(
            job.output_bytes for job in self.jobs if job.materialized_output
        )


@dataclass
class _Staged:
    """Intermediate state while lowering: data blocks, jobs so far, and a
    pending per-row map chain not yet attached to a job."""

    blocks: list[list]
    jobs: list[JobStats]
    pending: Optional[Callable[[tuple], list]] = None
    #: True when ``blocks`` came out of a job (so feeding another job
    #: means materializing to HDFS first).
    from_job: bool = False
    #: On-storage byte size per block for base-table scans (what the map
    #: tasks actually read off HDFS); None once blocks left a job.
    block_bytes: Optional[list[int]] = None


def _compose(
    outer: Callable[[tuple], list], inner: Optional[Callable[[tuple], list]]
) -> Callable[[tuple], list]:
    if inner is None:
        return outer

    def chained(row: tuple) -> list:
        out: list = []
        for intermediate in inner(row):
            out.extend(outer(intermediate))
        return out

    return chained


class HiveExecutor:
    """Executes SELECT statements as MapReduce job chains."""

    def __init__(
        self,
        catalog: Catalog,
        store: DistributedFileStore,
        registry: Optional[FunctionRegistry] = None,
        num_reducers: int = 8,
        table_rows: Optional[Callable[[TableEntry], list[list]]] = None,
    ):
        self.catalog = catalog
        self.store = store
        self.registry = registry or FunctionRegistry()
        self.engine = MapReduceEngine(num_reducers=num_reducers)
        self.num_reducers = num_reducers
        #: Hook to fetch a table's row blocks (the SharkContext supplies
        #: one that can also read memstore tables for A/B comparisons).
        self._table_rows = table_rows

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute(self, text: str) -> HiveQueryRun:
        """Parse, analyze, optimize and run one SELECT as MapReduce jobs."""
        statement = parse(text)
        if not isinstance(statement, ast.SelectStatement):
            raise UnsupportedFeatureError(
                "the Hive baseline executes SELECT statements only"
            )
        analyzer = Analyzer(self.catalog, self.registry)
        plan = optimize(analyzer.analyze_select(statement))
        return self.execute_plan(plan)

    def execute_plan(self, plan: logical.LogicalPlan) -> HiveQueryRun:
        """Lower and run an already-optimized logical plan."""
        staged = self._lower(plan)
        staged = self._flush(staged, name="final_map")
        rows = [row for block in staged.blocks for row in block]
        return HiveQueryRun(rows=rows, schema=plan.schema, jobs=staged.jobs)

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def _lower(self, plan: logical.LogicalPlan) -> _Staged:
        if isinstance(plan, logical.Values):
            return _Staged(blocks=[list(plan.rows)], jobs=[])
        if isinstance(plan, logical.Scan):
            blocks, sizes = self._scan_blocks(plan)
            return _Staged(blocks=blocks, jobs=[], block_bytes=sizes)
        if isinstance(plan, logical.Filter):
            child = self._lower(plan.child)
            condition = plan.condition
            mapper = lambda row: [row] if condition.eval(row) is True else []  # noqa: E731
            child.pending = _compose(mapper, child.pending)
            return child
        if isinstance(plan, logical.Project):
            child = self._lower(plan.child)
            expressions = plan.expressions
            mapper = lambda row: [  # noqa: E731
                tuple(expr.eval(row) for expr in expressions)
            ]
            child.pending = _compose(mapper, child.pending)
            return child
        if isinstance(plan, logical.Aggregate):
            return self._lower_aggregate(plan)
        if isinstance(plan, logical.Join):
            return self._lower_join(plan)
        if isinstance(plan, logical.Sort):
            return self._lower_sort(plan)
        if isinstance(plan, logical.Limit):
            return self._lower_limit(plan)
        if isinstance(plan, logical.Distinct):
            return self._lower_distinct(plan)
        if isinstance(plan, logical.UnionAll):
            staged_children = [
                self._flush(self._lower(child), name="union_branch")
                for child in plan.inputs
            ]
            blocks: list[list] = []
            jobs: list[JobStats] = []
            for staged in staged_children:
                blocks.extend(staged.blocks)
                jobs.extend(staged.jobs)
            return _Staged(blocks=blocks, jobs=jobs, from_job=bool(jobs))
        if isinstance(plan, logical.Repartition):
            return self._lower_repartition(plan)
        if isinstance(plan, logical.SemiJoinFilter):
            return self._lower_semi_join_filter(plan)
        raise UnsupportedFeatureError(
            f"Hive baseline cannot lower {type(plan).__name__}"
        )

    def _scan_blocks(self, plan: logical.Scan) -> tuple[list[list], list[int]]:
        """Blocks plus their on-storage sizes.

        Hive reads the encoded file (it has no columnar memstore), so map
        input bytes are the serde-encoded sizes even when the query also
        projects columns -- column pruning does not reduce Hive's I/O.
        """
        entry = plan.table
        blocks = self._fetch_table_blocks(entry)
        if entry.path is not None and self.store.exists(entry.path):
            stored = self.store.file(entry.path)
            sizes = [len(payload) for payload in stored.blocks]
        else:
            serde = TextSerde(entry.schema)
            sizes = [len(serde.encode(block)) for block in blocks]
        if plan.projected_columns is not None:
            indices = [
                entry.schema.index_of(name)
                for name in plan.projected_columns
            ]
            blocks = [
                [tuple(row[i] for i in indices) for row in block]
                for block in blocks
            ]
        return blocks, sizes

    def _fetch_table_blocks(self, entry: TableEntry) -> list[list]:
        if self._table_rows is not None:
            return self._table_rows(entry)
        if entry.path is not None and self.store.exists(entry.path):
            serde = TextSerde(entry.schema)
            stored = self.store.file(entry.path)
            return [
                serde.decode(self.store.read_block(entry.path, index))
                for index in range(stored.num_blocks)
            ]
        raise UnsupportedFeatureError(
            f"Hive baseline cannot read table {entry.name}; provide a "
            f"table_rows hook for cached tables"
        )

    def _consume(self, staged: _Staged, job_name: str) -> _Staged:
        """Prepare a staged input to feed a new job: if it came from a
        previous job, that job's output materializes to HDFS."""
        if staged.from_job and staged.jobs:
            staged.jobs[-1].materialized_output = True
        del job_name
        return staged

    def _flush(self, staged: _Staged, name: str) -> _Staged:
        """Apply any pending map chain.

        Over base-table blocks this is a real map-only job; over a
        previous job's output it fuses into that job's reduce phase (Hive
        evaluates select expressions in the reducer), costing no extra job.
        """
        if staged.pending is None:
            return staged
        pending = staged.pending
        if staged.from_job:
            blocks = [
                [out for row in block for out in pending(row)]
                for block in staged.blocks
            ]
            return _Staged(
                blocks=blocks, jobs=staged.jobs, pending=None, from_job=True
            )
        run = self.engine.run_job(
            staged.blocks, mapper=pending, name=name,
            input_block_bytes=staged.block_bytes,
        )
        return _Staged(
            blocks=run.blocks,
            jobs=staged.jobs + run.jobs,
            pending=None,
            from_job=True,
        )

    # ------------------------------------------------------------------
    # Blocking operators
    # ------------------------------------------------------------------
    def _lower_aggregate(self, plan: logical.Aggregate) -> _Staged:
        child = self._consume(self._lower(plan.child), "aggregate")
        groups = plan.group_expressions
        specs = plan.aggregates

        def to_pair(row: tuple) -> list:
            key = tuple(expr.eval(row) for expr in groups)
            accs = []
            for spec in specs:
                value = (
                    spec.argument.eval(row)
                    if spec.argument is not None
                    else None
                )
                accs.append(spec.function.update(spec.function.initial(), value))
            return [(key, accs)]

        mapper = _compose(to_pair, child.pending)

        def combiner(key: tuple, partials: list) -> list:
            merged = partials[0]
            for accs in partials[1:]:
                merged = [
                    spec.function.merge(a, b)
                    for spec, a, b in zip(specs, merged, accs)
                ]
            return [(key, merged)]

        def reducer(key: tuple, partials: list) -> list:
            (_, merged), = combiner(key, partials)
            finished = tuple(
                spec.function.finish(acc)
                for spec, acc in zip(specs, merged)
            )
            return [tuple(key) + finished]

        reducers = 1 if not groups else self.num_reducers
        run = self.engine.run_job(
            child.blocks,
            mapper=mapper,
            reducer=reducer,
            combiner=combiner,
            num_reducers=reducers,
            name="aggregate",
            input_block_bytes=child.block_bytes,
        )
        return _Staged(
            blocks=run.blocks, jobs=child.jobs + run.jobs, from_job=True
        )

    def _lower_join(self, plan: logical.Join) -> _Staged:
        from repro.sql.physical import _emit_joined, _key_function

        left = self._consume(self._lower(plan.left), "join")
        right = self._consume(self._lower(plan.right), "join")
        left_pending, right_pending = left.pending, right.pending

        if not plan.left_keys:
            left = self._flush(left, "cross_left_map")
            right = self._flush(right, "cross_right_map")
            # Cross join: Hive would do a single-reducer nested loop.
            residual = plan.residual
            rows = []
            for left_block in left.blocks:
                for left_row in left_block:
                    for right_block in right.blocks:
                        for right_row in right_block:
                            combined = tuple(left_row) + tuple(right_row)
                            if residual is None or residual.eval(combined) is True:
                                rows.append(combined)
            stats = JobStats(
                name="cross_join",
                map_tasks=len(left.blocks) + len(right.blocks),
                reduce_tasks=1,
                output_records=len(rows),
            )
            return _Staged(
                blocks=[rows],
                jobs=left.jobs + right.jobs + [stats],
                from_job=True,
            )

        left_key = _key_function(plan.left_keys)
        right_key = _key_function(plan.right_keys)
        tagged_blocks = [
            [(0, row) for row in block] for block in left.blocks
        ] + [[(1, row) for row in block] for block in right.blocks]

        def mapper(tagged: tuple) -> list:
            # Filters/projections below the join fuse into its map phase.
            tag, raw = tagged
            pending = left_pending if tag == 0 else right_pending
            rows = [raw] if pending is None else pending(raw)
            key_fn = left_key if tag == 0 else right_key
            return [(key_fn(row), (tag, row)) for row in rows]

        emit = _emit_joined(
            plan.join_type,
            len(plan.left.schema),
            len(plan.right.schema),
            plan.residual,
        )

        def reducer(key, tagged_rows: list) -> list:
            left_rows = [row for tag, row in tagged_rows if tag == 0]
            right_rows = [row for tag, row in tagged_rows if tag == 1]
            return emit((key, (left_rows, right_rows)))

        tagged_bytes = None
        if left.block_bytes is not None or right.block_bytes is not None:
            tagged_bytes = (
                (left.block_bytes
                 or [0] * len(left.blocks))
                + (right.block_bytes or [0] * len(right.blocks))
            )
        run = self.engine.run_job(
            tagged_blocks,
            mapper=mapper,
            reducer=reducer,
            num_reducers=self.num_reducers,
            name="repartition_join",
            input_block_bytes=tagged_bytes,
        )
        return _Staged(
            blocks=run.blocks,
            jobs=left.jobs + right.jobs + run.jobs,
            from_job=True,
        )

    def _lower_sort(self, plan: logical.Sort) -> _Staged:
        child = self._consume(self._lower(plan.child), "sort")
        keys = plan.keys
        ascendings = tuple(asc for __, asc in keys)
        expressions = [expr for expr, __ in keys]

        def to_pair(row: tuple) -> list:
            values = tuple(expr.eval(row) for expr in expressions)
            return [(None, (SortKey(values, ascendings), row))]

        mapper = _compose(to_pair, child.pending)

        def reducer(__, pairs: list) -> list:
            pairs.sort(key=lambda item: item[0])
            return [row for ___, row in pairs]

        # Hive's ORDER BY runs with a single reducer for a total order.
        run = self.engine.run_job(
            child.blocks, mapper=mapper, reducer=reducer, num_reducers=1,
            name="order_by", input_block_bytes=child.block_bytes,
        )
        return _Staged(
            blocks=run.blocks, jobs=child.jobs + run.jobs, from_job=True
        )

    def _lower_limit(self, plan: logical.Limit) -> _Staged:
        child = self._flush(self._lower(plan.child), "limit_map")
        count = plan.count
        taken: list = []
        for block in child.blocks:
            taken.extend(block[: count - len(taken)])
            if len(taken) >= count:
                break
        return _Staged(blocks=[taken], jobs=child.jobs, from_job=child.from_job)

    def _lower_distinct(self, plan: logical.Distinct) -> _Staged:
        child = self._consume(self._lower(plan.child), "distinct")
        mapper = _compose(lambda row: [(row, None)], child.pending)

        def reducer(key, __) -> list:
            return [key]

        run = self.engine.run_job(
            child.blocks, mapper=mapper, reducer=reducer,
            num_reducers=self.num_reducers, name="distinct",
            input_block_bytes=child.block_bytes,
        )
        return _Staged(
            blocks=run.blocks, jobs=child.jobs + run.jobs, from_job=True
        )

    def _lower_semi_join_filter(
        self, plan: logical.SemiJoinFilter
    ) -> _Staged:
        """Hive's uncorrelated IN-subquery: run the subquery as its own
        job chain, distribute the value set to the outer query's mappers
        (a map-side semi-join), and filter in the map phase."""
        from repro.sql.physical import semi_join_probe

        sub = self._flush(self._lower(plan.subquery), "subquery")
        values = [row[0] for block in sub.blocks for row in block]
        has_null = any(value is None for value in values)
        value_set = frozenset(v for v in values if v is not None)
        key = plan.key
        keep = semi_join_probe(
            lambda row: key.eval(row), value_set, has_null, plan.negated
        )
        child = self._lower(plan.child)
        mapper = lambda row: [row] if keep(row) else []  # noqa: E731
        child.pending = _compose(mapper, child.pending)
        child.jobs = sub.jobs + child.jobs
        return child

    def _lower_repartition(self, plan: logical.Repartition) -> _Staged:
        from repro.sql.physical import _key_function

        child = self._consume(self._lower(plan.child), "repartition")
        key_fn = _key_function(plan.expressions)
        mapper = _compose(lambda row: [(key_fn(row), row)], child.pending)

        def reducer(__, rows: list) -> list:
            return rows

        run = self.engine.run_job(
            child.blocks, mapper=mapper, reducer=reducer,
            num_reducers=self.num_reducers, name="distribute_by",
            input_block_bytes=child.block_bytes,
        )
        return _Staged(
            blocks=run.blocks, jobs=child.jobs + run.jobs, from_job=True
        )

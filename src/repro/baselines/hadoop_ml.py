"""Hadoop ML baselines: one MapReduce job per iteration (Figures 11-12).

"In the case of Hive and Hadoop, every iteration took the reported time
because data was loaded from HDFS for every iteration."  These trainers do
exactly that: each iteration re-reads the stored file, decodes every
record (text or binary serde — the two bars in the figures), runs a
map/combine/reduce gradient or assignment job, and updates the model on
the driver.  Numeric results match the Shark trainers; only the data-path
costs differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.baselines.mapreduce import JobStats, MapReduceEngine
from repro.columnar.serde import BinarySerde, TextSerde
from repro.datatypes import Schema
from repro.errors import MLError
from repro.ml.kmeans import KMeansModel, _closest
from repro.ml.logistic import LogisticRegressionModel
from repro.storage import DistributedFileStore


@dataclass
class IterationTrace:
    """Per-iteration job stats — the benchmark reports their mean."""

    jobs: list[JobStats] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.jobs)

    @property
    def mean_input_bytes(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(job.input_bytes for job in self.jobs) / len(self.jobs)


class _HadoopIterativeBase:
    """Shared machinery: per-iteration decode of the stored dataset."""

    def __init__(
        self,
        store: DistributedFileStore,
        path: str,
        schema: Schema,
        format: str = "text",
        num_reducers: int = 1,
    ):
        if format not in ("text", "binary"):
            raise MLError(f"unknown format {format!r}")
        self.store = store
        self.path = path
        self.schema = schema
        self.format = format
        self.engine = MapReduceEngine(num_reducers=num_reducers)

    def _decode_blocks(self) -> tuple[list[list[tuple]], int]:
        """Read and deserialize every block; returns (blocks, total bytes).

        Called once per iteration — the cost Shark's cached RDDs avoid.
        """
        serde = (
            TextSerde(self.schema)
            if self.format == "text"
            else BinarySerde(self.schema)
        )
        stored = self.store.file(self.path)
        blocks = []
        total_bytes = 0
        for index in range(stored.num_blocks):
            payload = self.store.read_block(self.path, index)
            total_bytes += len(payload)
            blocks.append(serde.decode(payload))
        return blocks, total_bytes


class HadoopLogisticRegression(_HadoopIterativeBase):
    """Gradient descent where each iteration is one MapReduce job.

    Expects rows of ``(label, f0, f1, ...)`` with labels in {-1, +1}.
    """

    def fit(
        self,
        iterations: int = 10,
        learning_rate: float = 1.0,
        seed: int = 42,
        dimensions: Optional[int] = None,
    ) -> tuple[LogisticRegressionModel, IterationTrace]:
        """Train; each iteration re-reads and re-decodes the stored file
        (Hadoop's data path), returning the model plus per-iteration job
        stats for the cost model."""
        if dimensions is None:
            blocks, __ = self._decode_blocks()
            first = next(
                (row for block in blocks for row in block), None
            )
            if first is None:
                raise MLError("cannot fit on an empty dataset")
            dimensions = len(first) - 1

        rng = np.random.default_rng(seed)
        weights = 2.0 * rng.random(dimensions) - 1.0
        trace = IterationTrace()

        for iteration in range(iterations):
            blocks, input_bytes = self._decode_blocks()

            def mapper(row: tuple, w=weights):
                from repro.ml.logistic import gradient_factor

                y = float(row[0])
                x = np.asarray(row[1:], dtype=np.float64)
                factor = gradient_factor(y, float(np.dot(w, x)))
                return [("gradient", factor * x)]

            def combiner(key, gradients: list):
                return [(key, sum(gradients[1:], gradients[0]))]

            def reducer(key, gradients: list):
                return [sum(gradients[1:], gradients[0])]

            run = self.engine.run_job(
                blocks,
                mapper=mapper,
                reducer=reducer,
                combiner=combiner,
                num_reducers=1,
                name=f"logreg_iter_{iteration}",
            )
            run.jobs[0].input_bytes = input_bytes  # serialized, not in-heap
            gradient = run.rows[0]
            weights = weights - learning_rate * gradient
            trace.jobs.extend(run.jobs)

        model = LogisticRegressionModel(
            weights=weights, iterations_run=iterations
        )
        return model, trace


class HadoopKMeans(_HadoopIterativeBase):
    """Lloyd's algorithm, one MapReduce job per iteration.

    Expects rows of ``(f0, f1, ...)``.
    """

    def fit(
        self, k: int, iterations: int = 10, seed: int = 42
    ) -> tuple[KMeansModel, IterationTrace]:
        """Cluster; one MapReduce job per iteration over freshly decoded
        input, returning the model plus per-iteration job stats."""
        blocks, __ = self._decode_blocks()
        sample = [row for block in blocks for row in block][: max(k * 20, 100)]
        if len(sample) < k:
            raise MLError(f"need at least k={k} points, found {len(sample)}")
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(sample), size=k, replace=False)
        centers = np.array(
            [np.asarray(sample[i], dtype=np.float64) for i in chosen]
        )
        trace = IterationTrace()
        inertia = float("inf")

        for iteration in range(iterations):
            blocks, input_bytes = self._decode_blocks()

            def mapper(row: tuple, c=centers):
                point = np.asarray(row, dtype=np.float64)
                index, distance = _closest(c, point)
                return [(index, (point, 1, distance))]

            def combiner(key, parts: list):
                total = parts[0]
                for part in parts[1:]:
                    total = (
                        total[0] + part[0],
                        total[1] + part[1],
                        total[2] + part[2],
                    )
                return [(key, total)]

            def reducer(key, parts: list):
                (__, total), = combiner(key, parts)
                return [(key, total)]

            run = self.engine.run_job(
                blocks,
                mapper=mapper,
                reducer=reducer,
                combiner=combiner,
                num_reducers=1,
                name=f"kmeans_iter_{iteration}",
            )
            run.jobs[0].input_bytes = input_bytes
            totals = dict(run.rows)
            inertia = sum(entry[2] for entry in totals.values())
            new_centers = centers.copy()
            for index, (vector_sum, count, __) in totals.items():
                if count > 0:
                    new_centers[index] = vector_sum / count
            centers = new_centers
            trace.jobs.extend(run.jobs)

        model = KMeansModel(
            centers=centers, iterations_run=iterations, inertia=float(inertia)
        )
        return model, trace

"""Comparator systems the paper evaluates Shark against.

* :mod:`repro.baselines.mapreduce` — a faithful-shape MapReduce engine:
  rigid map/sort-shuffle/reduce topology, map output "written to disk",
  intermediate job output materialized to the replicated store.  Used
  directly by the Hadoop ML baselines (Figures 11-12).
* :mod:`repro.baselines.hive` — Hive: the same SQL front end (Shark reuses
  Hive's compiler in the paper, we reuse ours), but lowered to *chains of
  MapReduce jobs* instead of RDD transformations.  Produces identical rows
  to Shark — which the differential tests exploit — with Hadoop's cost
  profile.
* :mod:`repro.baselines.mpp` — the MPP-database execution model:
  pipelined, no per-task overhead, single-coordinator final aggregation,
  and *coarse-grained recovery*: any worker failure aborts and restarts
  the whole query.
"""

from repro.baselines.mapreduce import (
    JobStats,
    MapReduceEngine,
    MapReduceRun,
)
from repro.baselines.hive import HiveExecutor, HiveQueryRun
from repro.baselines.mpp import MppExecutor, MppQueryRun
from repro.baselines.hadoop_ml import (
    HadoopKMeans,
    HadoopLogisticRegression,
    IterationTrace,
)

__all__ = [
    "JobStats",
    "MapReduceEngine",
    "MapReduceRun",
    "HiveExecutor",
    "HiveQueryRun",
    "MppExecutor",
    "MppQueryRun",
    "HadoopKMeans",
    "HadoopLogisticRegression",
    "IterationTrace",
]

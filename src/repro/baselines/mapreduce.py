"""A miniature MapReduce engine with Hadoop's cost structure.

Executes real map/combine/sort-shuffle/reduce jobs over in-process data
while accounting for everything the paper says makes Hadoop slow
(Section 7.1):

* map output is sorted and "written to disk" before the shuffle
  (``shuffle_bytes`` + a sort),
* each job's output is materialized — multi-job queries pay replicated
  "HDFS" writes between jobs (``materialized_bytes``),
* one task per input block / reduce partition, so task counts (and
  Hadoop's per-task launch overhead) are explicit.

The collected :class:`JobStats` feed :mod:`repro.costmodel` to produce
cluster-scale runtimes under the HIVE/HADOOP profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.engine.partitioner import stable_hash
from repro.engine.shuffle import serialized_size_bytes


@dataclass
class JobStats:
    """Observed volumes for one MapReduce job."""

    name: str
    map_tasks: int = 0
    reduce_tasks: int = 0
    input_records: int = 0
    input_bytes: int = 0
    map_output_records: int = 0
    shuffle_bytes: int = 0
    output_records: int = 0
    output_bytes: int = 0
    #: True when this job's output was written to the replicated store
    #: (an intermediate step of a multi-job query, or a final INSERT).
    materialized_output: bool = False
    #: True when a combiner pre-aggregated map output; shuffle volume then
    #: scales with map-task count, not data volume.
    used_combiner: bool = False


@dataclass
class MapReduceRun:
    """Output blocks plus stats for a chain of jobs."""

    blocks: list[list]
    jobs: list[JobStats] = field(default_factory=list)

    @property
    def rows(self) -> list:
        return [record for block in self.blocks for record in block]

    @property
    def total_map_tasks(self) -> int:
        return sum(job.map_tasks for job in self.jobs)

    @property
    def total_reduce_tasks(self) -> int:
        return sum(job.reduce_tasks for job in self.jobs)


Mapper = Callable[[Any], Iterable[tuple]]
Reducer = Callable[[Any, list], Iterable[Any]]
Combiner = Callable[[Any, list], Iterable[tuple]]


class MapReduceEngine:
    """Runs one job at a time; callers chain jobs and decide materialization."""

    def __init__(self, num_reducers: int = 8):
        if num_reducers <= 0:
            raise ValueError("num_reducers must be positive")
        self.num_reducers = num_reducers

    def run_job(
        self,
        input_blocks: list[list],
        mapper: Mapper,
        reducer: Optional[Reducer] = None,
        combiner: Optional[Combiner] = None,
        num_reducers: Optional[int] = None,
        name: str = "job",
        materialize_output: bool = False,
        input_block_bytes: Optional[list[int]] = None,
    ) -> MapReduceRun:
        """One MapReduce job.  ``reducer=None`` means a map-only job whose
        mapper output records pass straight through (no shuffle).

        ``input_block_bytes`` carries the true on-storage size of each
        input block (base-table scans read encoded files, not Python
        objects); when absent, a serialized estimate is used.
        """
        stats = JobStats(
            name=name,
            materialized_output=materialize_output,
            used_combiner=combiner is not None,
        )
        stats.map_tasks = len(input_blocks)

        def block_bytes(index: int, block: list) -> int:
            if input_block_bytes is not None and index < len(input_block_bytes):
                return input_block_bytes[index]
            return serialized_size_bytes(block)

        if reducer is None:
            output_blocks = []
            for index, block in enumerate(input_blocks):
                stats.input_records += len(block)
                stats.input_bytes += block_bytes(index, block)
                out = []
                for record in block:
                    out.extend(mapper(record))
                output_blocks.append(out)
            stats.map_output_records = sum(len(b) for b in output_blocks)
            stats.output_records = stats.map_output_records
            stats.output_bytes = sum(
                serialized_size_bytes(b) for b in output_blocks
            )
            return MapReduceRun(blocks=output_blocks, jobs=[stats])

        reducers = num_reducers or self.num_reducers
        stats.reduce_tasks = reducers
        buckets: list[list[tuple]] = [[] for _ in range(reducers)]

        for index, block in enumerate(input_blocks):
            stats.input_records += len(block)
            stats.input_bytes += block_bytes(index, block)
            map_output: list[tuple] = []
            for record in block:
                map_output.extend(mapper(record))
            if combiner is not None:
                map_output = _run_combiner(map_output, combiner)
            # Hadoop sorts each map task's output by key before spilling.
            map_output.sort(key=lambda pair: _sort_key(pair[0]))
            stats.map_output_records += len(map_output)
            stats.shuffle_bytes += serialized_size_bytes(map_output)
            for key, value in map_output:
                buckets[stable_hash(key) % reducers].append((key, value))

        output_blocks = []
        for bucket in buckets:
            # Reduce-side merge sort groups equal keys together.
            bucket.sort(key=lambda pair: _sort_key(pair[0]))
            out: list = []
            index = 0
            while index < len(bucket):
                key = bucket[index][0]
                values = []
                while index < len(bucket) and bucket[index][0] == key:
                    values.append(bucket[index][1])
                    index += 1
                out.extend(reducer(key, values))
            output_blocks.append(out)

        stats.output_records = sum(len(block) for block in output_blocks)
        stats.output_bytes = sum(
            serialized_size_bytes(block) for block in output_blocks
        )
        return MapReduceRun(blocks=output_blocks, jobs=[stats])


def _run_combiner(
    map_output: list[tuple], combiner: Combiner
) -> list[tuple]:
    grouped: dict[Any, list] = {}
    for key, value in map_output:
        grouped.setdefault(key, []).append(value)
    combined: list[tuple] = []
    for key, values in grouped.items():
        combined.extend(combiner(key, values))
    return combined


def _sort_key(key: Any) -> tuple:
    """A total order over heterogeneous keys (Hadoop sorts serialized
    bytes; here we order by type name then value)."""
    if key is None:
        return ("", "")
    if isinstance(key, tuple):
        return ("tuple", tuple(_sort_key(part) for part in key))
    return (type(key).__name__, key)

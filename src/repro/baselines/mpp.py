"""The MPP analytic-database execution model.

The paper contrasts Shark with MPP databases (Vertica, Greenplum, Impala)
on two axes:

* **aggregation plan** (Section 6.2.2): MPP engines aggregate locally on
  each node and send all partial aggregates to a *single coordinator* for
  the final merge — great for few groups, degenerate for millions;
* **recovery** (Sections 1, 8): coarse-grained — "in case of mid-query
  faults, the entire query needs to be re-executed".

This executor reuses the session's planner (forcing a single reduce
partition, the coordinator) and wraps execution in restart-on-failure
semantics: if any worker dies while a query runs, the query aborts and
starts over from scratch, with the restart count reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datatypes import Schema
from repro.errors import QueryAbortedError
from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.session import SqlSession
from dataclasses import replace


@dataclass
class MppQueryRun:
    """Result rows plus MPP-specific execution facts."""

    rows: list[tuple]
    schema: Schema
    #: How many times the query was aborted and restarted due to worker
    #: failures (each restart re-does all work).
    restarts: int = 0
    coordinator_merge_records: int = 0
    notes: list[str] = field(default_factory=list)


class MppExecutor:
    """Runs queries with MPP semantics over the shared session data."""

    def __init__(self, session: SqlSession, max_restarts: int = 3):
        self.session = session
        self.max_restarts = max_restarts
        #: Planner settings matching an MPP engine: a statically chosen
        #: plan (no PDE) with a single-coordinator final aggregation.
        self.config = replace(
            session.config,
            enable_pde=False,
            num_reducers=1,
        )

    def execute(self, text: str) -> MppQueryRun:
        """Run a SELECT under MPP semantics: single-coordinator merges and
        whole-query restarts on any worker failure."""
        statement = parse(text)
        if not isinstance(statement, ast.SelectStatement):
            raise QueryAbortedError(
                "the MPP baseline executes SELECT statements only"
            )
        cluster = self.session.ctx.cluster
        restarts = 0
        while True:
            deaths_before = sum(
                0 if worker.alive else 1 for worker in cluster.workers
            )
            planned = self.session.plan_select(statement, config=self.config)
            rows = planned.rdd.collect()
            deaths_after = sum(
                0 if worker.alive else 1 for worker in cluster.workers
            )
            if deaths_after == deaths_before:
                merge_records = len(rows)
                return MppQueryRun(
                    rows=rows,
                    schema=planned.schema,
                    restarts=restarts,
                    coordinator_merge_records=merge_records,
                    notes=list(planned.report.notes),
                )
            # A worker died mid-query: coarse-grained recovery means the
            # whole query is thrown away and resubmitted.
            restarts += 1
            if restarts > self.max_restarts:
                raise QueryAbortedError(
                    f"query aborted {restarts} times; giving up"
                )

"""Partitioners: deterministic key -> reduce-partition assignment.

Determinism matters here: lineage-based recovery re-runs a map task and must
reproduce the same buckets, so partitioners hash with a stable function
rather than Python's salted ``hash``.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Callable, Sequence


def stable_hash(key: Any) -> int:
    """A deterministic, process-independent hash for common key types.

    Python's built-in ``hash`` is salted per process for strings, which
    would make recomputed map tasks shuffle records to different reducers
    than the original run.  This hash is stable across runs.
    """
    if key is None:
        return 0
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, float):
        return zlib.crc32(repr(key).encode("utf-8")) & 0x7FFFFFFF
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8")) & 0x7FFFFFFF
    if isinstance(key, bytes):
        return zlib.crc32(key) & 0x7FFFFFFF
    if isinstance(key, tuple):
        value = 0x345678
        for item in key:
            value = (value * 1000003) ^ stable_hash(item)
        return value & 0x7FFFFFFF
    return zlib.crc32(repr(key).encode("utf-8")) & 0x7FFFFFFF


class Partitioner:
    """Maps a record key to a partition index in [0, num_partitions)."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Shuffle-join / group-by partitioner: stable hash modulo N."""

    def partition(self, key: Any) -> int:
        return stable_hash(key) % self.num_partitions

    def __repr__(self) -> str:
        return f"HashPartitioner({self.num_partitions})"


class RangePartitioner(Partitioner):
    """Orders keys into contiguous ranges; used by sortBy.

    Bounds are computed by sampling the input (the engine context does the
    sampling); keys <= bounds[i] land in partition i.
    """

    def __init__(self, bounds: Sequence[Any], ascending: bool = True):
        super().__init__(len(bounds) + 1)
        self._bounds = list(bounds)
        self._ascending = ascending

    def partition(self, key: Any) -> int:
        index = bisect.bisect_left(self._bounds, key)
        if self._ascending:
            return index
        return self.num_partitions - 1 - index

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and self._bounds == other._bounds
            and self._ascending == other._ascending
        )

    def __hash__(self) -> int:
        return hash(("RangePartitioner", tuple(self._bounds), self._ascending))

    def __repr__(self) -> str:
        return f"RangePartitioner({len(self._bounds) + 1} partitions)"


class FunctionPartitioner(Partitioner):
    """Partitions with an arbitrary user function (used by co-partitioning).

    Equality contract: two FunctionPartitioners are equal when they have
    the same ``num_partitions`` and the same ``label``.  The label is the
    caller's promise that the functions partition identically — labelled
    partitioners built in different sessions (or from distinct-but-equal
    lambdas) compare equal, so co-partitioned join detection works across
    plan rebuilds.  Unlabelled partitioners fall back to function identity
    (``fn is fn``): safe, but never equal across sessions.
    """

    def __init__(
        self,
        num_partitions: int,
        fn: Callable[[Any], int],
        name: str = "",
        label: str | None = None,
    ):
        super().__init__(num_partitions)
        self._fn = fn
        self._name = name or getattr(fn, "__name__", "fn")
        self.label = label

    def _key(self) -> Any:
        """Identity key: the caller's label, or function identity."""
        return self.label if self.label is not None else id(self._fn)

    def partition(self, key: Any) -> int:
        return self._fn(key) % self.num_partitions

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionPartitioner)
            and self.num_partitions == other.num_partitions
            and self._key() == other._key()
        )

    def __hash__(self) -> int:
        return hash(
            ("FunctionPartitioner", self.num_partitions, self._key())
        )

    def __repr__(self) -> str:
        return f"FunctionPartitioner({self.num_partitions}, {self._name})"

"""Broadcast variables: read-only values shipped once to every worker.

Shark's map join (Section 3.1.1) broadcasts the small table to all nodes.
In this in-process engine the value is shared by reference, but the size is
recorded so the cost model can charge for the network transfer, and the
broadcast registry lets tests assert what got broadcast and how big it was.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.worker import approximate_size_bytes


class Broadcast:
    """A read-only value available to every task via ``.value``.

    With an ``accountant``, the value's bytes are charged to the
    driver's execution pool under ``broadcast_<id>`` until the
    broadcast is destroyed or the owning query releases its accounting.
    """

    def __init__(self, broadcast_id: int, value: Any, accountant=None):
        self.broadcast_id = broadcast_id
        self._value = value
        self.size_bytes = approximate_size_bytes(value)
        self._destroyed = False
        self._accountant = accountant
        if accountant is not None:
            from repro.engine.memory import DRIVER_WORKER

            accountant.reserve(
                DRIVER_WORKER,
                "execution",
                f"broadcast_{broadcast_id}",
                self.size_bytes,
            )

    @property
    def value(self) -> Any:
        if self._destroyed:
            raise ValueError(
                f"broadcast {self.broadcast_id} was destroyed and cannot be read"
            )
        return self._value

    def release_accounting(self) -> int:
        """Return this broadcast's ledger charge (idempotent); the value
        stays readable — only the memory attribution ends."""
        if self._accountant is None:
            return 0
        accountant, self._accountant = self._accountant, None
        return accountant.release_owner(f"broadcast_{self.broadcast_id}")

    def destroy(self) -> None:
        """Release the value (frees worker memory on a real cluster)."""
        self.release_accounting()
        self._destroyed = True
        self._value = None

    def __repr__(self) -> str:
        status = "destroyed" if self._destroyed else f"{self.size_bytes}B"
        return f"Broadcast({self.broadcast_id}, {status})"

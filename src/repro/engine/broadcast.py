"""Broadcast variables: read-only values shipped once to every worker.

Shark's map join (Section 3.1.1) broadcasts the small table to all nodes.
In this in-process engine the value is shared by reference, but the size is
recorded so the cost model can charge for the network transfer, and the
broadcast registry lets tests assert what got broadcast and how big it was.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.worker import approximate_size_bytes


class Broadcast:
    """A read-only value available to every task via ``.value``."""

    def __init__(self, broadcast_id: int, value: Any):
        self.broadcast_id = broadcast_id
        self._value = value
        self.size_bytes = approximate_size_bytes(value)
        self._destroyed = False

    @property
    def value(self) -> Any:
        if self._destroyed:
            raise ValueError(
                f"broadcast {self.broadcast_id} was destroyed and cannot be read"
            )
        return self._value

    def destroy(self) -> None:
        """Release the value (frees worker memory on a real cluster)."""
        self._destroyed = True
        self._value = None

    def __repr__(self) -> str:
        status = "destroyed" if self._destroyed else f"{self.size_bytes}B"
        return f"Broadcast({self.broadcast_id}, {status})"

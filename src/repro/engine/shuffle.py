"""Shuffle: map-output bucketing, fetching, and PDE statistics.

Map tasks partition their output records into one bucket per reduce
partition and store the buckets in their worker's block store (the paper's
memory-based shuffle, Section 5).  Reduce tasks fetch bucket ``i`` from
every map output; if a map output's worker has died, the fetch raises
:class:`~repro.errors.FetchFailedError` and the scheduler re-runs only the
lost map tasks (lineage recovery within the query).

While buckets are materialized, the shuffle runs PDE's statistics
collectors and log-encodes bucket sizes, giving the master a ~1-byte-per-
partition view of the data (Section 3.1) before the reduce stage is planned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import pickle

from repro.cluster.worker import approximate_size_bytes
from repro.engine.accumulator import log_decode_size, log_encode_size
from repro.engine.task import current_task_context
from repro.errors import FetchFailedError
from repro.obs import Tracer


def serialized_size_bytes(records: list) -> int:
    """Wire size of shuffle records.

    Shuffle volumes feed the cost model and PDE's size-based decisions, so
    they must reflect what would cross the network (serialized bytes), not
    Python object overhead.  Falls back to the heap estimate for
    unpicklable records.
    """
    try:
        return len(pickle.dumps(records, protocol=4))
    except Exception:
        return approximate_size_bytes(records)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster import VirtualCluster
    from repro.engine.dependencies import ShuffleDependency
    from repro.engine.metrics import TaskMetrics


def _shuffle_block_id(shuffle_id: int, map_partition: int) -> str:
    return f"shuffle_{shuffle_id}_{map_partition}"


#: Heavy-hitter keys each map task keeps in its skew partial (a little
#: wider than the merged top-N so near-ties survive the merge).
_HEAVY_KEYS_PER_MAP = 8

#: Heavy reduce keys reported per shuffle after merging map partials.
HEAVY_KEYS_TOP_N = 5


def _key_label(key: Any) -> str:
    """Deterministic string label for a reduce key.

    Plain values (and tuples of them) repr stably; anything else — e.g.
    sort-shuffle composite key objects — would repr with a memory
    address, so it collapses to a type placeholder instead (event logs
    must stay byte-identical across reruns)."""
    if key is None or isinstance(key, (bool, int, float, str)):
        return repr(key)
    if isinstance(key, tuple):
        return "(" + ", ".join(_key_label(item) for item in key) + ")"
    return f"<{type(key).__name__}>"


@dataclass
class MapOutputStats:
    """Master-side view of a shuffle's map outputs.

    Sizes are stored log-encoded (one byte per entry, <= ~10% error) as in
    the paper; accessors decode on demand.
    """

    num_maps: int
    num_reduces: int
    #: encoded_bucket_sizes[map][reduce] -> one-byte size code.
    encoded_bucket_sizes: list[list[int]] = field(default_factory=list)
    record_counts: list[int] = field(default_factory=list)
    #: Per-map-partition collector partials, keyed by collector name then
    #: map partition.  Kept per partition (not merged eagerly) so a re-run
    #: of a map task — retry, speculation, or lineage recovery — simply
    #: overwrites its own partial instead of double-merging (exactly-once
    #: PDE statistics).
    custom_partials: dict[str, dict[int, Any]] = field(default_factory=dict)
    #: collector name -> merge function, recorded at first observe.
    mergers: dict[str, Any] = field(default_factory=dict)
    #: Per-map-partition skew partials ({"rows": [..], "bytes": [..],
    #: "keys": [(key, count), ..]}), kept per partition like
    #: ``custom_partials`` so task re-runs overwrite instead of
    #: double-merging (exactly-once skew profiling).
    skew_partials: dict[int, dict] = field(default_factory=dict)

    @property
    def custom(self) -> dict[str, Any]:
        """Merged collector results, keyed by collector name.

        Computed on demand from the per-partition partials; the merge
        order is map-partition order, so results are deterministic and
        independent of task scheduling or re-execution.
        """
        merged: dict[str, Any] = {}
        for name, partials in self.custom_partials.items():
            merge = self.mergers[name]
            result = None
            for map_partition in sorted(partials):
                partial = partials[map_partition]
                result = (
                    partial if result is None else merge(result, partial)
                )
            if result is not None:
                merged[name] = result
        return merged

    def skew_record(self, shuffle_id: int) -> dict:
        """Merged per-partition row/byte histogram plus heavy keys.

        Partials merge in map-partition order; sums and the sorted
        top-N are order-independent, so the record is deterministic
        across task scheduling and re-execution.
        """
        rows = [0] * self.num_reduces
        bucket_bytes = [0] * self.num_reduces
        key_counts: dict[str, int] = {}
        for map_partition in sorted(self.skew_partials):
            partial = self.skew_partials[map_partition]
            for index, count in enumerate(partial["rows"]):
                rows[index] += count
            for index, size in enumerate(partial["bytes"]):
                bucket_bytes[index] += size
            for key, count in partial["keys"]:
                key_counts[key] = key_counts.get(key, 0) + count
        heavy = sorted(
            key_counts.items(), key=lambda item: (-item[1], item[0])
        )[:HEAVY_KEYS_TOP_N]
        total_rows = sum(rows)
        total_bytes = sum(bucket_bytes)
        mean_rows = total_rows / self.num_reduces if self.num_reduces else 0.0
        mean_bytes = (
            total_bytes / self.num_reduces if self.num_reduces else 0.0
        )
        return {
            "shuffle_id": shuffle_id,
            "num_maps": self.num_maps,
            "num_reduces": self.num_reduces,
            "rows": rows,
            "bytes": bucket_bytes,
            "total_rows": total_rows,
            "total_bytes": total_bytes,
            "row_skew": (max(rows) / mean_rows) if mean_rows else 0.0,
            "byte_skew": (
                (max(bucket_bytes) / mean_bytes) if mean_bytes else 0.0
            ),
            # The reduce partition expected to straggle: the one with
            # the most rows to process (task-time-vs-rows attribution —
            # simulated task time is row-proportional, so the heaviest
            # partition is the straggler candidate).
            "straggler_partition": (
                rows.index(max(rows)) if total_rows else 0
            ),
            "heavy_keys": [[key, count] for key, count in heavy],
        }

    @property
    def maps_reported(self) -> int:
        return len(self.encoded_bucket_sizes)

    def map_output_bytes(self, map_partition: int) -> int:
        return sum(
            log_decode_size(code)
            for code in self.encoded_bucket_sizes[map_partition]
        )

    def total_output_bytes(self) -> int:
        return sum(
            self.map_output_bytes(i) for i in range(self.maps_reported)
        )

    def reduce_input_bytes(self, reduce_partition: int) -> int:
        """Approximate bytes reduce task ``reduce_partition`` will fetch."""
        return sum(
            log_decode_size(row[reduce_partition])
            for row in self.encoded_bucket_sizes
        )

    def reduce_input_sizes(self) -> list[int]:
        return [self.reduce_input_bytes(i) for i in range(self.num_reduces)]

    def total_records(self) -> int:
        return sum(self.record_counts)


class ShuffleManager:
    """Tracks every shuffle's map outputs, their locations, and statistics."""

    def __init__(
        self,
        cluster: "VirtualCluster",
        tracer: Tracer = None,
        fault_injector=None,
    ):
        self._cluster = cluster
        self._tracer = tracer if tracer is not None else cluster.tracer
        self._fault_injector = fault_injector
        #: shuffle_id -> {map_partition: worker_id}
        self._locations: dict[int, dict[int, int]] = {}
        self._stats: dict[int, MapOutputStats] = {}
        self._deps: dict[int, "ShuffleDependency"] = {}
        cluster.on_worker_killed(self._handle_worker_killed)

    # ------------------------------------------------------------------
    # Registration and map-side writes
    # ------------------------------------------------------------------
    def register(self, dep: "ShuffleDependency", num_maps: int) -> None:
        shuffle_id = dep.shuffle_id
        if shuffle_id in self._locations:
            return
        self._locations[shuffle_id] = {}
        self._stats[shuffle_id] = MapOutputStats(
            num_maps=num_maps,
            num_reduces=dep.partitioner.num_partitions,
            encoded_bucket_sizes=[[0] * dep.partitioner.num_partitions
                                  for _ in range(num_maps)],
            record_counts=[0] * num_maps,
        )
        self._deps[shuffle_id] = dep

    def is_registered(self, shuffle_id: int) -> bool:
        return shuffle_id in self._locations

    def write_map_output(
        self,
        dep: "ShuffleDependency",
        map_partition: int,
        worker_id: int,
        records: list,
        metrics: "TaskMetrics" = None,
    ) -> None:
        """Bucket one map task's records and store them on its worker.

        ``records`` must be (key, value) pairs.  Applies map-side combining
        when the dependency requests it, then runs the PDE statistics
        collectors over the bucketed output.
        """
        partitioner = dep.partitioner
        num_reduces = partitioner.num_partitions
        if dep.map_side_combine:
            aggregator = dep.aggregator
            combined: dict[Any, Any] = {}
            for key, value in records:
                if key in combined:
                    combined[key] = aggregator.merge_value(combined[key], value)
                else:
                    combined[key] = aggregator.create_combiner(value)
            output: list = list(combined.items())
        else:
            output = records

        buckets: list[list] = [[] for _ in range(num_reduces)]
        for pair in output:
            buckets[partitioner.partition(pair[0])].append(pair)

        worker = self._cluster.worker(worker_id)
        block_id = _shuffle_block_id(dep.shuffle_id, map_partition)
        # Pinned: shuffle output only vanishes with the worker (the spill
        # story of Section 5), never to silent cache eviction.
        worker.blocks.put(block_id, buckets, pinned=True)
        self._locations[dep.shuffle_id][map_partition] = worker_id

        stats = self._stats[dep.shuffle_id]
        bucket_bytes = [serialized_size_bytes(bucket) for bucket in buckets]
        stats.encoded_bucket_sizes[map_partition] = [
            log_encode_size(size) for size in bucket_bytes
        ]
        stats.record_counts[map_partition] = len(output)
        key_counts: dict[str, int] = {}
        for pair in output:
            label = _key_label(pair[0])
            key_counts[label] = key_counts.get(label, 0) + 1
        stats.skew_partials[map_partition] = {
            "rows": [len(bucket) for bucket in buckets],
            "bytes": bucket_bytes,
            "keys": sorted(
                key_counts.items(), key=lambda item: (-item[1], item[0])
            )[:_HEAVY_KEYS_PER_MAP],
        }
        for collector in dep.stats_collectors:
            partial = collector.observe(output)
            stats.mergers[collector.name] = collector.merge
            stats.custom_partials.setdefault(collector.name, {})[
                map_partition
            ] = partial

        total_bytes = sum(bucket_bytes)
        task_ctx = current_task_context()
        if task_ctx is not None:
            # Transient bucketing buffer: charged to the map task's
            # execution pool for the rest of the attempt (the pinned
            # block above already rides the storage pool).
            task_ctx.reserve_memory("shuffle_write", total_bytes)
        if metrics is not None:
            metrics.shuffle_write_bytes += total_bytes
            metrics.shuffle_write_records += len(output)
        self._tracer.metrics.inc("shuffle.write.bytes", total_bytes)
        self._tracer.metrics.inc("shuffle.write.records", len(output))
        self._tracer.instant(
            "shuffle.write",
            "shuffle",
            lane=worker_id,
            shuffle_id=dep.shuffle_id,
            map_partition=map_partition,
            bytes=total_bytes,
            records=len(output),
        )

    # ------------------------------------------------------------------
    # Reduce-side fetches
    # ------------------------------------------------------------------
    def fetch(
        self,
        shuffle_id: int,
        reduce_partition: int,
        metrics: "TaskMetrics" = None,
    ) -> list:
        """Fetch bucket ``reduce_partition`` from every map output.

        Raises :class:`FetchFailedError` naming the first lost map
        partition when any map output is unavailable.
        """
        locations = self._locations[shuffle_id]
        stats = self._stats[shuffle_id]
        reader_lane = metrics.worker_id if metrics is not None else "driver"
        injector = self._fault_injector
        if injector is not None and injector.corrupt_fetch(
            shuffle_id, reduce_partition
        ):
            # A corrupted map output is indistinguishable from a lost one:
            # drop the block so lineage recovery recomputes it.  Only a
            # map output that is actually still present can be the victim
            # — picking a partition whose block already vanished (or
            # fabricating partition 0 when none are registered) would
            # report a loss lineage recovery cannot act on.
            victim = owner = None
            for candidate in sorted(locations):
                holder = self._cluster.worker(locations[candidate])
                block_id = _shuffle_block_id(shuffle_id, candidate)
                if holder.alive and block_id in holder.blocks:
                    victim, owner = candidate, locations.pop(candidate)
                    holder.blocks.remove(block_id)
                    break
            if victim is None:
                # Nothing left to corrupt: report the first map output
                # that is genuinely missing instead of inventing one.
                missing = self.missing_maps(shuffle_id)
                victim = missing[0] if missing else 0
                owner = locations.get(victim)
            self._tracer.metrics.inc("shuffle.corrupt_fetches")
            self._record_fetch_failure(
                shuffle_id, victim, owner if owner is not None else -1,
                reader_lane,
            )
            raise FetchFailedError(
                shuffle_id, victim, owner if owner is not None else -1
            )
        fetched: list = []
        for map_partition in range(stats.num_maps):
            worker_id = locations.get(map_partition)
            if worker_id is None:
                self._record_fetch_failure(
                    shuffle_id, map_partition, -1, reader_lane
                )
                raise FetchFailedError(shuffle_id, map_partition, -1)
            worker = self._cluster.worker(worker_id)
            block_id = _shuffle_block_id(shuffle_id, map_partition)
            if not worker.alive or block_id not in worker.blocks:
                self._record_fetch_failure(
                    shuffle_id, map_partition, worker_id, reader_lane
                )
                raise FetchFailedError(shuffle_id, map_partition, worker_id)
            buckets = worker.blocks.get(block_id)
            fetched.extend(buckets[reduce_partition])
        if metrics is not None:
            read_bytes = serialized_size_bytes(fetched)
            task_ctx = current_task_context()
            if task_ctx is not None:
                # The fetched rows live in the reduce task until its
                # attempt ends; charge its worker's execution pool.
                task_ctx.reserve_memory("shuffle_fetch", read_bytes)
            metrics.shuffle_read_bytes += read_bytes
            self._tracer.metrics.inc("shuffle.read.bytes", read_bytes)
            self._tracer.instant(
                "shuffle.fetch",
                "shuffle",
                lane=reader_lane,
                shuffle_id=shuffle_id,
                reduce_partition=reduce_partition,
                bytes=read_bytes,
                records=len(fetched),
            )
        self._tracer.metrics.inc("shuffle.fetches")
        return fetched

    def _record_fetch_failure(
        self, shuffle_id: int, map_partition: int, worker_id: int, lane
    ) -> None:
        """One lost-map-output fetch: the trigger for lineage recovery."""
        self._tracer.metrics.inc("shuffle.fetch_failures")
        self._tracer.instant(
            "shuffle.fetch_failed",
            "shuffle",
            lane=lane,
            shuffle_id=shuffle_id,
            map_partition=map_partition,
            lost_worker=worker_id,
        )

    def missing_maps(self, shuffle_id: int) -> list[int]:
        """Map partitions whose output is registered but no longer available."""
        locations = self._locations[shuffle_id]
        stats = self._stats[shuffle_id]
        missing = []
        for map_partition in range(stats.num_maps):
            worker_id = locations.get(map_partition)
            if worker_id is None:
                missing.append(map_partition)
                continue
            worker = self._cluster.worker(worker_id)
            block_id = _shuffle_block_id(shuffle_id, map_partition)
            if not worker.alive or block_id not in worker.blocks:
                missing.append(map_partition)
        return missing

    def stats(self, shuffle_id: int) -> MapOutputStats:
        return self._stats[shuffle_id]

    def skew_records(self, since_shuffle_id: int = 0) -> list[dict]:
        """Skew records for every still-registered shuffle whose id is
        >= ``since_shuffle_id`` (the caller's watermark), sorted by
        shuffle id.  Shuffles with no map output yet are skipped.

        Reported ids are rebased to the watermark (the query's first
        shuffle is 0): the global counter keeps growing across queries
        in one process, and logs must be byte-identical across reruns.
        """
        out = []
        for shuffle_id in sorted(self._stats):
            if shuffle_id < since_shuffle_id:
                continue
            stats = self._stats[shuffle_id]
            if not stats.skew_partials:
                continue
            out.append(
                stats.skew_record(shuffle_id - since_shuffle_id)
            )
        return out

    def map_location(self, shuffle_id: int, map_partition: int) -> int | None:
        return self._locations.get(shuffle_id, {}).get(map_partition)

    def repoint_map_output(
        self, shuffle_id: int, map_partition: int, worker_id: int
    ) -> None:
        """Make ``worker_id`` the authoritative holder of a map output.

        Used when a speculative copy finishes first: both the original and
        the copy wrote identical buckets, so reduces may fetch from the
        winner without re-running statistics collection.
        """
        self._locations[shuffle_id][map_partition] = worker_id

    # ------------------------------------------------------------------
    # Release (query cancellation / cleanup)
    # ------------------------------------------------------------------
    def release_shuffle(self, shuffle_id: int) -> int:
        """Drop one shuffle's registration and its pinned map-output
        blocks; returns the number of blocks removed.

        The lifecycle manager calls this when a query is cancelled,
        deadline-expired, or failed: its map outputs can never be
        fetched again, and because they are pinned they would otherwise
        occupy worker memory forever (the "no orphaned pinned blocks"
        invariant).
        """
        locations = self._locations.pop(shuffle_id, None)
        if locations is None:
            return 0
        stats = self._stats.pop(shuffle_id, None)
        self._deps.pop(shuffle_id, None)
        released = 0
        for map_partition, worker_id in locations.items():
            worker = self._cluster.worker(worker_id)
            block_id = _shuffle_block_id(shuffle_id, map_partition)
            if worker.alive and block_id in worker.blocks:
                worker.blocks.remove(block_id)
                released += 1
        if released or stats is not None:
            self._tracer.metrics.inc("shuffle.released")
            self._tracer.metrics.inc("shuffle.released.blocks", released)
        return released

    def registered_block_ids(self) -> set[str]:
        """Block ids of every registered map output (test/debug helper:
        cross-check against the workers' pinned blocks to prove no
        cancelled query leaked shuffle storage)."""
        return {
            _shuffle_block_id(shuffle_id, map_partition)
            for shuffle_id, locations in self._locations.items()
            for map_partition in locations
        }

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _handle_worker_killed(self, worker_id: int) -> None:
        """Forget locations pointing at a dead worker.

        The blocks themselves were dropped by the worker's ``kill``; the
        next fetch raises FetchFailedError and the scheduler recomputes.
        """
        for locations in self._locations.values():
            lost = [
                map_partition
                for map_partition, owner in locations.items()
                if owner == worker_id
            ]
            for map_partition in lost:
                del locations[map_partition]

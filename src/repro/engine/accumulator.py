"""Accumulators and PDE's pluggable statistics collectors (Section 3.1).

Two related facilities live here:

* :class:`Accumulator` — Spark-style write-only shared variables that tasks
  add to and the driver reads (used by map pruning's scan counters and by
  user jobs).
* :class:`StatisticsCollector` — the "simple, pluggable accumulator API"
  PDE uses to gather per-partition statistics while map output is being
  materialized.  Workers run ``observe`` over their output and send a small
  partial back to the master, which ``merge``\\ s partials and hands the
  result to the optimizer.  The paper's three examples — partition sizes
  (log-encoded to ~1 byte each), heavy hitters, and approximate histograms
  — are implemented below.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

# ---------------------------------------------------------------------------
# Driver-side accumulators
# ---------------------------------------------------------------------------


class Accumulator:
    """A write-only shared variable tasks add to; the driver reads ``value``.

    ``add`` called inside a running task does *not* mutate driver state:
    the delta is buffered on the task's :class:`~repro.engine.task.
    TaskContext` and merged by the scheduler exactly once per partition —
    only for the attempt whose result is kept.  Retried, speculative, and
    lineage-recovered attempts therefore never double count.  Outside a
    task (on the driver), ``add`` applies immediately.
    """

    def __init__(self, initial: Any, add: Callable[[Any, Any], Any] = None):
        self._value = initial
        self._add = add if add is not None else (lambda a, b: a + b)

    def add(self, delta: Any) -> None:
        # Imported lazily: task.py does not depend on this module, but
        # importing at module scope would still risk a cycle via engine/.
        from repro.engine.task import current_task_context

        task_ctx = current_task_context()
        if task_ctx is not None:
            task_ctx.record_accumulator(self, delta)
        else:
            self._value = self._add(self._value, delta)

    def apply(self, delta: Any) -> None:
        """Merge a buffered task-side delta into driver state (scheduler
        use only)."""
        self._value = self._add(self._value, delta)

    @property
    def value(self) -> Any:
        return self._value

    def reset(self, initial: Any) -> None:
        self._value = initial


# ---------------------------------------------------------------------------
# Log-encoded sizes (Section 3.1: one byte per size with <= 10% error)
# ---------------------------------------------------------------------------

#: Logarithmic base chosen so a single byte (0..255) spans up to ~32 GB with
#: at most ~10% relative error, as described in the paper.
_LOG_BASE = 1.1
_LOG_DENOM = math.log(_LOG_BASE)


def log_encode_size(num_bytes: int) -> int:
    """Encode a byte count into one byte with bounded relative error."""
    if num_bytes <= 0:
        return 0
    code = int(round(math.log(num_bytes) / _LOG_DENOM)) + 1
    return max(1, min(code, 255))


def log_decode_size(code: int) -> int:
    """Decode a one-byte size code back to an approximate byte count."""
    if code <= 0:
        return 0
    return int(round(_LOG_BASE ** (code - 1)))


# ---------------------------------------------------------------------------
# Pluggable per-shuffle statistics
# ---------------------------------------------------------------------------


class StatisticsCollector:
    """Interface for PDE's per-shuffle statistics.

    ``observe`` runs on the worker over one map task's output records and
    returns a compact partial; ``merge`` combines two partials on the
    master.  Partials must stay small (the paper limits them to 1-2 KB per
    task) — collectors here respect that by design.
    """

    #: Key under which merged results appear in MapOutputStats.custom.
    name: str = "stat"

    def observe(self, records: Iterable[Any]) -> Any:
        raise NotImplementedError

    def merge(self, left: Any, right: Any) -> Any:
        raise NotImplementedError


class PartitionSizeStat(StatisticsCollector):
    """Total output bytes per map task, log-encoded to one byte."""

    name = "partition_sizes"

    def __init__(self, size_of: Callable[[Any], int] = None):
        self._size_of = size_of

    def observe(self, records: Iterable[Any]) -> int:
        from repro.cluster.worker import approximate_size_bytes

        if self._size_of is not None:
            total = sum(self._size_of(record) for record in records)
        else:
            total = sum(approximate_size_bytes(record) for record in records)
        return log_encode_size(total)

    def merge(self, left: int, right: int) -> int:
        return log_encode_size(log_decode_size(left) + log_decode_size(right))


class RecordCountStat(StatisticsCollector):
    """Output record count per map task."""

    name = "record_counts"

    def observe(self, records: Iterable[Any]) -> int:
        return sum(1 for _ in records)

    def merge(self, left: int, right: int) -> int:
        return left + right


class HeavyHittersStat(StatisticsCollector):
    """Frequent keys via the SpaceSaving algorithm (bounded memory).

    Partials are ``{key: approximate_count}`` dicts capped at ``capacity``
    entries, so a partial stays within the paper's 1-2 KB budget for
    reasonable key sizes.
    """

    name = "heavy_hitters"

    def __init__(self, capacity: int = 16, key_of: Callable[[Any], Any] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._key_of = key_of if key_of is not None else (lambda record: record[0])

    def observe(self, records: Iterable[Any]) -> dict:
        counters: dict[Any, int] = {}
        for record in records:
            key = self._key_of(record)
            if key in counters:
                counters[key] += 1
            elif len(counters) < self.capacity:
                counters[key] = 1
            else:
                # SpaceSaving: evict the minimum, inherit its count + 1.
                evict = min(counters, key=counters.get)
                count = counters.pop(evict)
                counters[key] = count + 1
        return counters

    def merge(self, left: dict, right: dict) -> dict:
        merged = dict(left)
        for key, count in right.items():
            merged[key] = merged.get(key, 0) + count
        if len(merged) > self.capacity:
            top = sorted(merged.items(), key=lambda kv: -kv[1])[: self.capacity]
            merged = dict(top)
        return merged


class HistogramStat(StatisticsCollector):
    """Approximate equi-width histogram over a numeric feature of records."""

    name = "histogram"

    def __init__(
        self,
        low: float,
        high: float,
        num_buckets: int = 32,
        value_of: Callable[[Any], float] = None,
    ):
        if high <= low:
            raise ValueError("high must exceed low")
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.low = low
        self.high = high
        self.num_buckets = num_buckets
        self._value_of = value_of if value_of is not None else (lambda r: float(r))
        self._width = (high - low) / num_buckets

    def bucket_of(self, value: float) -> int:
        if value <= self.low:
            return 0
        if value >= self.high:
            return self.num_buckets - 1
        return min(int((value - self.low) / self._width), self.num_buckets - 1)

    def observe(self, records: Iterable[Any]) -> list[int]:
        buckets = [0] * self.num_buckets
        for record in records:
            buckets[self.bucket_of(self._value_of(record))] += 1
        return buckets

    def merge(self, left: list[int], right: list[int]) -> list[int]:
        return [a + b for a, b in zip(left, right)]

"""DAG scheduler: stages, tasks, and lineage-based fault recovery.

The scheduler turns an RDD graph into stages split at shuffle boundaries
(Section 2.4) and runs each stage's tasks on virtual workers.  Its recovery
behaviour implements the paper's fault-tolerance guarantees (Section 2.3):

* a fetch of lost map output raises ``FetchFailedError``; the scheduler
  re-runs *only the lost map tasks* (on other workers) and retries — the
  query never restarts;
* recovery cascades: if recomputing a map task needs data from an earlier
  shuffle that was also lost, that stage's lost tasks are recomputed first;
* recovered partitions spread across all live workers (parallel recovery);
* shuffle outputs that already exist are *not* recomputed — a stage whose
  map outputs are all present is skipped, which is also what lets PDE
  pre-run the map side of a shuffle and reuse it (Section 3.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.engine.dependencies import (
    NarrowDependency,
    ShuffleDependency,
)
from repro.engine.metrics import QueryProfile, StageProfile, TaskMetrics
from repro.engine.task import TaskContext
from repro.errors import (
    EngineError,
    FetchFailedError,
    TaskError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import EngineContext
    from repro.engine.rdd import RDD
    from repro.engine.shuffle import MapOutputStats

#: Upper bound on recovery rounds for one job before giving up.
MAX_RECOVERY_ROUNDS = 16


class Stage:
    """A set of independent tasks: map side of one shuffle, or the final
    result computation."""

    def __init__(
        self,
        stage_id: int,
        rdd: "RDD",
        shuffle_dep: Optional[ShuffleDependency] = None,
    ):
        self.stage_id = stage_id
        self.rdd = rdd
        self.shuffle_dep = shuffle_dep
        self.parents: list["Stage"] = []

    @property
    def is_shuffle_map(self) -> bool:
        return self.shuffle_dep is not None

    @property
    def num_partitions(self) -> int:
        return self.rdd.num_partitions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "shuffle-map" if self.is_shuffle_map else "result"
        return f"Stage({self.stage_id}, {kind}, rdd={self.rdd.name})"


class DAGScheduler:
    """Builds stages from lineage and executes them with recovery."""

    def __init__(self, ctx: "EngineContext"):
        self._ctx = ctx
        self._next_stage_id = 0
        self._next_job_id = 0
        #: shuffle_id -> Stage, shared across jobs so PDE pre-shuffles and
        #: reused cached plans skip already-materialized stages.
        self._shuffle_stages: dict[int, Stage] = {}
        #: Profile of the most recent job, for the cost model and tests.
        self.last_profile: Optional[QueryProfile] = None
        #: Profiles of every job run since the last reset_history(); a SQL
        #: query can span several jobs (PDE pre-shuffles, sort sampling,
        #: the final collect), and cost accounting needs all of them.
        self.history: list[QueryProfile] = []

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run_job(
        self,
        rdd: "RDD",
        func: Callable[[list], object],
        partitions: Optional[list[int]] = None,
    ) -> list:
        """Compute ``func(partition_data)`` for each requested partition."""
        if partitions is None:
            partitions = list(range(rdd.num_partitions))
        job_id = self._next_job_id
        self._next_job_id += 1
        profile = QueryProfile(job_id=job_id)
        tracer = self._ctx.tracer
        tracer.metrics.inc("jobs.submitted")
        job_span = tracer.begin_span(
            f"job {job_id}",
            "job",
            rdd=rdd.name,
            partitions=len(partitions),
        )
        try:
            final_stage = Stage(self._new_stage_id(), rdd)
            final_stage.parents = self._parent_stages(rdd)
            self._ensure_parents(final_stage, profile)

            stage_profile = self._stage_profile(profile, final_stage)
            stage_span = tracer.begin_span(
                f"stage {final_stage.stage_id}",
                "stage",
                rdd=rdd.name,
                kind="result",
                tasks=len(partitions),
            )
            tracer.metrics.inc("stages.run")
            try:
                results = []
                for partition in partitions:
                    results.append(
                        self._run_with_recovery(
                            final_stage, partition, profile, stage_profile,
                            func,
                        )
                    )
            finally:
                tracer.end_span(stage_span)
        finally:
            tracer.end_span(
                job_span,
                stages=profile.num_stages,
                recovered_tasks=profile.recovered_tasks,
            )
        self.last_profile = profile
        self.history.append(profile)
        return results

    def materialize_shuffle(self, dep: ShuffleDependency) -> "MapOutputStats":
        """PDE hook: run the map side of one shuffle now and return its
        statistics, without planning anything downstream (Section 3.1)."""
        job_id = self._next_job_id
        self._next_job_id += 1
        profile = QueryProfile(job_id=job_id)
        tracer = self._ctx.tracer
        tracer.metrics.inc("jobs.submitted")
        tracer.metrics.inc("pde.pre_shuffles")
        job_span = tracer.begin_span(
            f"job {job_id}",
            "job",
            kind="pde-pre-shuffle",
            shuffle_id=dep.shuffle_id,
        )
        try:
            stage = self._stage_for_shuffle(dep)
            self._ensure_shuffle_stage(stage, profile)
        finally:
            tracer.end_span(job_span, stages=profile.num_stages)
        self.last_profile = profile
        self.history.append(profile)
        return self._ctx.shuffle_manager.stats(dep.shuffle_id)

    def reset_history(self) -> None:
        self.history = []

    # ------------------------------------------------------------------
    # Stage graph construction
    # ------------------------------------------------------------------
    def _new_stage_id(self) -> int:
        stage_id = self._next_stage_id
        self._next_stage_id += 1
        return stage_id

    def _stage_for_shuffle(self, dep: ShuffleDependency) -> Stage:
        stage = self._shuffle_stages.get(dep.shuffle_id)
        if stage is None:
            stage = Stage(self._new_stage_id(), dep.rdd, shuffle_dep=dep)
            self._shuffle_stages[dep.shuffle_id] = stage
            stage.parents = self._parent_stages(dep.rdd)
        return stage

    def _parent_stages(self, rdd: "RDD") -> list[Stage]:
        """Shuffle stages this RDD depends on through narrow chains."""
        parents: list[Stage] = []
        seen: set[int] = set()
        stack = [rdd]
        visited: set[int] = set()
        while stack:
            current = stack.pop()
            if current.id in visited:
                continue
            visited.add(current.id)
            for dep in current.dependencies:
                if isinstance(dep, ShuffleDependency):
                    if dep.shuffle_id not in seen:
                        seen.add(dep.shuffle_id)
                        parents.append(self._stage_for_shuffle(dep))
                elif isinstance(dep, NarrowDependency):
                    stack.append(dep.rdd)
        return parents

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------
    def _ensure_parents(self, stage: Stage, profile: QueryProfile) -> None:
        for parent in stage.parents:
            self._ensure_shuffle_stage(parent, profile)

    def _ensure_shuffle_stage(self, stage: Stage, profile: QueryProfile) -> None:
        """Make every map output of this shuffle available, recursively."""
        dep = stage.shuffle_dep
        manager = self._ctx.shuffle_manager
        manager.register(dep, stage.num_partitions)
        stage_profile = self._stage_profile(profile, stage)
        tracer = self._ctx.tracer
        stage_span = None

        try:
            for round_number in range(MAX_RECOVERY_ROUNDS):
                missing = manager.missing_maps(dep.shuffle_id)
                if not missing:
                    if stage_span is None:
                        tracer.metrics.inc("stages.skipped")
                    return
                if stage_span is None:
                    stage_span = tracer.begin_span(
                        f"stage {stage.stage_id}",
                        "stage",
                        rdd=stage.rdd.name,
                        kind="shuffle-map",
                        shuffle_id=dep.shuffle_id,
                        tasks=len(missing),
                    )
                    tracer.metrics.inc("stages.run")
                if round_number > 0:
                    profile.recovered_tasks += len(missing)
                    tracer.metrics.inc("tasks.recovered", len(missing))
                    tracer.instant(
                        "lineage.recovery",
                        "recovery",
                        stage_id=stage.stage_id,
                        shuffle_id=dep.shuffle_id,
                        lost_maps=len(missing),
                        round=round_number,
                    )
                self._ensure_parents(stage, profile)
                for partition in missing:
                    try:
                        self._run_map_task(
                            stage,
                            partition,
                            stage_profile,
                            recovery=round_number > 0,
                        )
                    except FetchFailedError:
                        # An ancestor shuffle lost data while we were
                        # running; loop around, re-ensure parents, retry
                        # what's missing.
                        break
            else:
                raise EngineError(
                    f"stage {stage.stage_id} failed to materialize after "
                    f"{MAX_RECOVERY_ROUNDS} recovery rounds"
                )
            # The for/else above raises on exhaustion; re-check for the
            # break path by tail-recursing once more.
            if manager.missing_maps(dep.shuffle_id):
                raise EngineError(
                    f"stage {stage.stage_id} failed to materialize after "
                    f"{MAX_RECOVERY_ROUNDS} recovery rounds"
                )
        finally:
            tracer.end_span(stage_span)

    def _run_map_task(
        self,
        stage: Stage,
        partition: int,
        stage_profile: StageProfile,
        recovery: bool = False,
    ) -> None:
        worker = self._ctx.cluster.assign_worker(
            preferred=stage.rdd.preferred_workers(partition)
        )
        tracer = self._ctx.tracer
        tracer.metrics.inc("tasks.launched")
        metrics = TaskMetrics(
            stage_id=stage.stage_id,
            partition=partition,
            worker_id=worker.worker_id,
        )
        task_ctx = TaskContext(
            stage_id=stage.stage_id,
            partition=partition,
            worker=worker,
            shuffle_manager=self._ctx.shuffle_manager,
            cache_tracker=self._ctx.cache_tracker,
            metrics=metrics,
        )
        try:
            records = stage.rdd.iterator(partition, task_ctx)
        except (FetchFailedError, EngineError):
            raise
        except Exception as exc:
            raise TaskError(stage.stage_id, partition, exc) from exc
        self._ctx.shuffle_manager.write_map_output(
            stage.shuffle_dep, partition, worker.worker_id, records, metrics
        )
        metrics.records_out = len(records)
        stage_profile.tasks.append(metrics)
        tracer.task_span(
            f"map task {stage.stage_id}.{partition}",
            lane=worker.worker_id,
            vector=metrics.to_cost_vector(),
            stage_id=stage.stage_id,
            partition=partition,
            kind="shuffle-map",
            records_out=metrics.records_out,
            shuffle_write_bytes=metrics.shuffle_write_bytes,
            recovery=recovery,
        )
        if recovery:
            tracer.instant(
                "task.reexecution",
                "recovery",
                lane=worker.worker_id,
                stage_id=stage.stage_id,
                partition=partition,
                kind="shuffle-map",
            )
        self._ctx.cluster.task_completed(worker)

    def _run_with_recovery(
        self,
        stage: Stage,
        partition: int,
        profile: QueryProfile,
        stage_profile: StageProfile,
        func: Callable[[list], object],
    ) -> object:
        """Run one result task, recovering lost ancestor shuffles on demand."""
        tracer = self._ctx.tracer
        for attempt in range(1, MAX_RECOVERY_ROUNDS + 1):
            try:
                return self._run_result_task(
                    stage, partition, stage_profile, func, attempt=attempt
                )
            except FetchFailedError as failure:
                profile.recovered_tasks += 1
                tracer.metrics.inc("tasks.recovered")
                tracer.instant(
                    "task.reexecution",
                    "recovery",
                    stage_id=stage.stage_id,
                    partition=partition,
                    shuffle_id=failure.shuffle_id,
                    attempt=attempt,
                )
                self._recover_shuffle(failure.shuffle_id, profile)
        raise EngineError(
            f"result partition {partition} failed after "
            f"{MAX_RECOVERY_ROUNDS} recovery rounds"
        )

    def _run_result_task(
        self,
        stage: Stage,
        partition: int,
        stage_profile: StageProfile,
        func: Callable[[list], object],
        attempt: int = 1,
    ) -> object:
        worker = self._ctx.cluster.assign_worker(
            preferred=stage.rdd.preferred_workers(partition)
        )
        tracer = self._ctx.tracer
        tracer.metrics.inc("tasks.launched")
        metrics = TaskMetrics(
            stage_id=stage.stage_id,
            partition=partition,
            worker_id=worker.worker_id,
        )
        metrics.attempts = attempt
        task_ctx = TaskContext(
            stage_id=stage.stage_id,
            partition=partition,
            worker=worker,
            shuffle_manager=self._ctx.shuffle_manager,
            cache_tracker=self._ctx.cache_tracker,
            metrics=metrics,
        )
        try:
            data = stage.rdd.iterator(partition, task_ctx)
            result = func(data)
        except (FetchFailedError, EngineError):
            raise
        except Exception as exc:
            raise TaskError(stage.stage_id, partition, exc) from exc
        metrics.records_out = len(data)
        stage_profile.tasks.append(metrics)
        tracer.task_span(
            f"result task {stage.stage_id}.{partition}",
            lane=worker.worker_id,
            vector=metrics.to_cost_vector(),
            stage_id=stage.stage_id,
            partition=partition,
            kind="result",
            records_out=metrics.records_out,
            attempt=attempt,
        )
        self._ctx.cluster.task_completed(worker)
        return result

    def _recover_shuffle(self, shuffle_id: int, profile: QueryProfile) -> None:
        stage = self._shuffle_stages.get(shuffle_id)
        if stage is None:
            raise EngineError(
                f"cannot recover unknown shuffle {shuffle_id}"
            )
        self._ensure_shuffle_stage(stage, profile)

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    def _stage_profile(
        self, profile: QueryProfile, stage: Stage
    ) -> StageProfile:
        for existing in profile.stages:
            if existing.stage_id == stage.stage_id:
                return existing
        stage_profile = StageProfile(
            stage_id=stage.stage_id,
            name=stage.rdd.name,
            is_shuffle_map=stage.is_shuffle_map,
            map_side_combined=bool(
                stage.shuffle_dep is not None
                and stage.shuffle_dep.map_side_combine
            ),
        )
        profile.stages.append(stage_profile)
        return stage_profile

"""DAG scheduler: stages, tasks, and lineage-based fault recovery.

The scheduler turns an RDD graph into stages split at shuffle boundaries
(Section 2.4) and runs each stage's tasks on virtual workers.  Its recovery
behaviour implements the paper's fault-tolerance guarantees (Section 2.3):

* a fetch of lost map output raises ``FetchFailedError``; the scheduler
  re-runs *only the lost map tasks* (on other workers) and retries — the
  query never restarts;
* recovery cascades: if recomputing a map task needs data from an earlier
  shuffle that was also lost, that stage's lost tasks are recomputed first;
* recovered partitions spread across all live workers (parallel recovery);
* shuffle outputs that already exist are *not* recomputed — a stage whose
  map outputs are all present is skipped, which is also what lets PDE
  pre-run the map side of a shuffle and reuse it (Section 3.1).

Layered on top of lineage recovery is per-attempt robustness (Section 7's
straggler/failure discussion), governed by :class:`SchedulerConfig`:

* **retry with backoff** — a :class:`~repro.errors.TransientTaskFailure`
  (from the fault-injection harness or a flaky worker) retries the task on
  a different worker after a capped exponential *simulated-clock* backoff,
  up to ``max_task_attempts``; this is per-attempt and distinct from
  lineage-recovery rounds, which re-run tasks whose *output* was lost;
* **speculative execution** — when a completed task's simulated runtime
  exceeds a quantile of its stage peers, a backup copy runs on another
  worker and the faster finisher's result is kept;
* **worker blacklisting** — workers accumulating ``blacklist_threshold``
  failures are taken out of the schedulable pool for a probation period.

Correctness under re-execution: each attempt buffers its accumulator
updates on its :class:`~repro.engine.task.TaskContext`, and the scheduler
merges only the kept attempt's buffer — exactly once per map partition
(guarded across lineage re-runs) and once per result partition — so
retries, speculation, and recovery never inflate accumulator values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.engine.dependencies import (
    NarrowDependency,
    ShuffleDependency,
)
from repro.engine.metrics import QueryProfile, StageProfile, TaskMetrics
from repro.engine.task import (
    TaskContext,
    pop_task_context,
    push_task_context,
)
from repro.errors import (
    EngineError,
    FetchFailedError,
    QueryLifecycleError,
    TaskError,
    TransientTaskFailure,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import EngineContext
    from repro.engine.rdd import RDD
    from repro.engine.shuffle import MapOutputStats

#: Upper bound on recovery rounds for one job before giving up.
MAX_RECOVERY_ROUNDS = 16


@dataclass
class SchedulerConfig:
    """Knobs for the scheduler's robustness machinery.

    ``speculation=None`` means *auto*: speculative execution turns on when
    the engine context carries a fault injector (so fault-free runs keep
    their exact seed behaviour) and stays off otherwise.
    """

    #: Attempts per task (first run + retries) before the job fails.
    max_task_attempts: int = 4
    #: First retry waits this many simulated seconds; doubles per retry.
    retry_backoff_base_s: float = 0.05
    #: Ceiling on the simulated backoff delay.
    retry_backoff_cap_s: float = 2.0
    #: True/False forces speculation on/off; None = auto (see above).
    speculation: Optional[bool] = None
    #: A task is a straggler when its runtime exceeds this quantile of
    #: completed stage peers times ``speculation_multiplier``.
    speculation_quantile: float = 0.75
    speculation_multiplier: float = 1.5
    #: Minimum completed peers before the quantile is trusted.
    speculation_min_peers: int = 3
    #: Failures before a worker is blacklisted.
    blacklist_threshold: int = 3
    #: Probation length, in cluster-wide task completions.
    blacklist_probation_tasks: int = 25


@dataclass
class _Attempt:
    """One finished task attempt the scheduler may keep or discard."""

    worker_id: int
    metrics: TaskMetrics
    task_ctx: TaskContext
    result: Any
    records_out: int
    #: Simulated runtime (None when nothing downstream needs durations).
    seconds: Optional[float] = None


class Stage:
    """A set of independent tasks: map side of one shuffle, or the final
    result computation."""

    def __init__(
        self,
        stage_id: int,
        rdd: "RDD",
        shuffle_dep: Optional[ShuffleDependency] = None,
    ):
        self.stage_id = stage_id
        self.rdd = rdd
        self.shuffle_dep = shuffle_dep
        self.parents: list["Stage"] = []

    @property
    def is_shuffle_map(self) -> bool:
        return self.shuffle_dep is not None

    @property
    def num_partitions(self) -> int:
        return self.rdd.num_partitions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "shuffle-map" if self.is_shuffle_map else "result"
        return f"Stage({self.stage_id}, {kind}, rdd={self.rdd.name})"


class DAGScheduler:
    """Builds stages from lineage and executes them with recovery."""

    def __init__(
        self, ctx: "EngineContext", config: Optional[SchedulerConfig] = None
    ):
        self._ctx = ctx
        self.config = config if config is not None else SchedulerConfig()
        self._next_stage_id = 0
        self._next_job_id = 0
        #: shuffle_id -> Stage, shared across jobs so PDE pre-shuffles and
        #: reused cached plans skip already-materialized stages.
        self._shuffle_stages: dict[int, Stage] = {}
        #: Profile of the most recent job, for the cost model and tests.
        self.last_profile: Optional[QueryProfile] = None
        #: Profiles of every job run since the last reset_history(); a SQL
        #: query can span several jobs (PDE pre-shuffles, sort sampling,
        #: the final collect), and cost accounting needs all of them.
        self.history: list[QueryProfile] = []
        #: (tenant, worker_id) -> failures since its last blacklisting.
        #: Attribution is per tenant (None outside lifecycle queries) so
        #: one tenant's poison query cannot blacklist workers out from
        #: under everybody else's healthy traffic.
        self._worker_failures: dict[tuple[Optional[str], int], int] = {}
        #: (shuffle_id, map_partition) whose accumulator buffer was merged
        #: — lineage re-runs of a map task must not merge again.
        self._merged_map_acc: set[tuple[int, int]] = set()
        #: stage_id -> kept-attempt simulated durations (speculation peers).
        self._stage_durations: dict[int, list[float]] = {}

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run_job(
        self,
        rdd: "RDD",
        func: Callable[[list], object],
        partitions: Optional[list[int]] = None,
    ) -> list:
        """Compute ``func(partition_data)`` for each requested partition."""
        if partitions is None:
            partitions = list(range(rdd.num_partitions))
        job_id = self._next_job_id
        self._next_job_id += 1
        profile = QueryProfile(job_id=job_id)
        tracer = self._ctx.tracer
        tracer.metrics.inc("jobs.submitted")
        evicted_before = tracer.metrics.value("blocks.evicted")
        evicted_bytes_before = tracer.metrics.value("blocks.evicted.bytes")
        reserved_before = tracer.metrics.value("memory.reserved.bytes")
        spill_events_before = tracer.metrics.value("memory.spill.events")
        spill_bytes_before = tracer.metrics.value("memory.spill.bytes")
        job_status = "ok"
        job_span = tracer.begin_span(
            f"job {job_id}",
            "job",
            rdd=rdd.name,
            partitions=len(partitions),
        )
        try:
            final_stage = Stage(self._new_stage_id(), rdd)
            final_stage.parents = self._parent_stages(rdd)
            self._ensure_parents(final_stage, profile)

            stage_profile = self._stage_profile(profile, final_stage)
            stage_span = tracer.begin_span(
                f"stage {final_stage.stage_id}",
                "stage",
                rdd=rdd.name,
                kind="result",
                tasks=len(partitions),
            )
            tracer.metrics.inc("stages.run")
            try:
                results = []
                for partition in partitions:
                    results.append(
                        self._run_with_recovery(
                            final_stage, partition, profile, stage_profile,
                            func,
                        )
                    )
            except QueryLifecycleError:
                tracer.end_span(stage_span, status="cancelled")
                stage_span = None
                raise
            finally:
                tracer.end_span(stage_span)
        except QueryLifecycleError:
            job_status = "cancelled"
            raise
        finally:
            profile.evicted_blocks = int(
                tracer.metrics.value("blocks.evicted") - evicted_before
            )
            profile.evicted_bytes = int(
                tracer.metrics.value("blocks.evicted.bytes")
                - evicted_bytes_before
            )
            profile.memory_reserved_bytes = int(
                tracer.metrics.value("memory.reserved.bytes")
                - reserved_before
            )
            profile.memory_peak_bytes = int(self._ctx.memory.peak_bytes())
            profile.memory_spill_events = int(
                tracer.metrics.value("memory.spill.events")
                - spill_events_before
            )
            profile.memory_spill_bytes = int(
                tracer.metrics.value("memory.spill.bytes")
                - spill_bytes_before
            )
            tracer.end_span(
                job_span,
                stages=profile.num_stages,
                recovered_tasks=profile.recovered_tasks,
                status=job_status,
            )
        self.last_profile = profile
        self.history.append(profile)
        return results

    def materialize_shuffle(self, dep: ShuffleDependency) -> "MapOutputStats":
        """PDE hook: run the map side of one shuffle now and return its
        statistics, without planning anything downstream (Section 3.1)."""
        job_id = self._next_job_id
        self._next_job_id += 1
        profile = QueryProfile(job_id=job_id)
        tracer = self._ctx.tracer
        tracer.metrics.inc("jobs.submitted")
        tracer.metrics.inc("pde.pre_shuffles")
        evicted_before = tracer.metrics.value("blocks.evicted")
        evicted_bytes_before = tracer.metrics.value("blocks.evicted.bytes")
        reserved_before = tracer.metrics.value("memory.reserved.bytes")
        spill_events_before = tracer.metrics.value("memory.spill.events")
        spill_bytes_before = tracer.metrics.value("memory.spill.bytes")
        job_span = tracer.begin_span(
            f"job {job_id}",
            "job",
            kind="pde-pre-shuffle",
            shuffle_id=dep.shuffle_id,
        )
        try:
            stage = self._stage_for_shuffle(dep)
            self._ensure_shuffle_stage(stage, profile)
        finally:
            profile.evicted_blocks = int(
                tracer.metrics.value("blocks.evicted") - evicted_before
            )
            profile.evicted_bytes = int(
                tracer.metrics.value("blocks.evicted.bytes")
                - evicted_bytes_before
            )
            profile.memory_reserved_bytes = int(
                tracer.metrics.value("memory.reserved.bytes")
                - reserved_before
            )
            profile.memory_peak_bytes = int(self._ctx.memory.peak_bytes())
            profile.memory_spill_events = int(
                tracer.metrics.value("memory.spill.events")
                - spill_events_before
            )
            profile.memory_spill_bytes = int(
                tracer.metrics.value("memory.spill.bytes")
                - spill_bytes_before
            )
            tracer.end_span(job_span, stages=profile.num_stages)
        self.last_profile = profile
        self.history.append(profile)
        return self._ctx.shuffle_manager.stats(dep.shuffle_id)

    def reset_history(self) -> None:
        self.history = []

    def release_query_shuffles(self, shuffle_ids) -> int:
        """Forget a dead query's shuffles entirely; returns blocks freed.

        Called by the lifecycle manager when a query is cancelled,
        deadline-expired, or failed: its map outputs are dropped from the
        workers (they are pinned, so nothing else would ever reclaim
        them), its stages leave the reusable-stage cache, its speculation
        peer durations are forgotten, and its exactly-once accumulator
        guards are cleared so a resubmission of the same computation
        merges accumulator buffers afresh.
        """
        released = 0
        for shuffle_id in sorted(shuffle_ids):
            stage = self._shuffle_stages.pop(shuffle_id, None)
            if stage is not None:
                self._stage_durations.pop(stage.stage_id, None)
            released += self._ctx.shuffle_manager.release_shuffle(shuffle_id)
            self._merged_map_acc = {
                key for key in self._merged_map_acc if key[0] != shuffle_id
            }
        return released

    # ------------------------------------------------------------------
    # Stage graph construction
    # ------------------------------------------------------------------
    def _new_stage_id(self) -> int:
        stage_id = self._next_stage_id
        self._next_stage_id += 1
        return stage_id

    def _stage_for_shuffle(self, dep: ShuffleDependency) -> Stage:
        stage = self._shuffle_stages.get(dep.shuffle_id)
        if stage is None:
            stage = Stage(self._new_stage_id(), dep.rdd, shuffle_dep=dep)
            self._shuffle_stages[dep.shuffle_id] = stage
            stage.parents = self._parent_stages(dep.rdd)
        return stage

    def _parent_stages(self, rdd: "RDD") -> list[Stage]:
        """Shuffle stages this RDD depends on through narrow chains."""
        parents: list[Stage] = []
        seen: set[int] = set()
        stack = [rdd]
        visited: set[int] = set()
        while stack:
            current = stack.pop()
            if current.id in visited:
                continue
            visited.add(current.id)
            for dep in current.dependencies:
                if isinstance(dep, ShuffleDependency):
                    if dep.shuffle_id not in seen:
                        seen.add(dep.shuffle_id)
                        parents.append(self._stage_for_shuffle(dep))
                elif isinstance(dep, NarrowDependency):
                    stack.append(dep.rdd)
        return parents

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------
    def _ensure_parents(self, stage: Stage, profile: QueryProfile) -> None:
        for parent in stage.parents:
            self._ensure_shuffle_stage(parent, profile)

    def _ensure_shuffle_stage(self, stage: Stage, profile: QueryProfile) -> None:
        """Make every map output of this shuffle available, recursively."""
        dep = stage.shuffle_dep
        manager = self._ctx.shuffle_manager
        manager.register(dep, stage.num_partitions)
        lifecycle = self._ctx.lifecycle
        if lifecycle is not None:
            # The owning query claims this shuffle: if it is cancelled or
            # fails, the lifecycle manager releases the map outputs.
            lifecycle.note_shuffle(dep.shuffle_id)
        stage_profile = self._stage_profile(profile, stage)
        tracer = self._ctx.tracer
        stage_span = None
        status = "ok"

        try:
            for round_number in range(MAX_RECOVERY_ROUNDS):
                missing = manager.missing_maps(dep.shuffle_id)
                if not missing:
                    if stage_span is None:
                        tracer.metrics.inc("stages.skipped")
                    return
                if stage_span is None:
                    stage_span = tracer.begin_span(
                        f"stage {stage.stage_id}",
                        "stage",
                        rdd=stage.rdd.name,
                        kind="shuffle-map",
                        shuffle_id=dep.shuffle_id,
                        tasks=len(missing),
                    )
                    tracer.metrics.inc("stages.run")
                if round_number > 0:
                    profile.recovered_tasks += len(missing)
                    tracer.metrics.inc("tasks.recovered", len(missing))
                    tracer.instant(
                        "lineage.recovery",
                        "recovery",
                        stage_id=stage.stage_id,
                        shuffle_id=dep.shuffle_id,
                        lost_maps=len(missing),
                        round=round_number,
                    )
                self._ensure_parents(stage, profile)
                for partition in missing:
                    try:
                        self._run_map_task(
                            stage,
                            partition,
                            stage_profile,
                            recovery=round_number > 0,
                            profile=profile,
                        )
                    except FetchFailedError:
                        # An ancestor shuffle lost data while we were
                        # running; loop around, re-ensure parents, retry
                        # what's missing.
                        break
            # Recovery rounds exhausted with map outputs still missing:
            # record the failure so traces don't show a perpetually-open,
            # apparently-successful stage.
            status = "error"
            still_missing = manager.missing_maps(dep.shuffle_id)
            tracer.metrics.inc("tasks.failed", max(len(still_missing), 1))
            raise EngineError(
                f"stage {stage.stage_id} failed to materialize after "
                f"{MAX_RECOVERY_ROUNDS} recovery rounds "
                f"({len(still_missing)} map outputs still missing)"
            )
        except QueryLifecycleError:
            # Cancellation/deadline is not a stage failure: the span ends
            # with a distinct status and no stages.failed increment.
            status = "cancelled"
            raise
        except EngineError:
            status = "error"
            raise
        finally:
            if status == "error":
                tracer.metrics.inc("stages.failed")
                tracer.end_span(stage_span, status="error")
            elif status == "cancelled":
                tracer.end_span(stage_span, status="cancelled")
            else:
                tracer.end_span(stage_span)

    def _run_map_task(
        self,
        stage: Stage,
        partition: int,
        stage_profile: StageProfile,
        recovery: bool = False,
        profile: Optional[QueryProfile] = None,
    ) -> None:
        self._run_resilient_task(
            stage,
            partition,
            stage_profile,
            func=None,
            kind="shuffle-map",
            recovery=recovery,
            profile=profile,
        )

    def _run_with_recovery(
        self,
        stage: Stage,
        partition: int,
        profile: QueryProfile,
        stage_profile: StageProfile,
        func: Callable[[list], object],
    ) -> object:
        """Run one result task, recovering lost ancestor shuffles on demand."""
        tracer = self._ctx.tracer
        for attempt in range(1, MAX_RECOVERY_ROUNDS + 1):
            try:
                return self._run_resilient_task(
                    stage,
                    partition,
                    stage_profile,
                    func=func,
                    kind="result",
                    prior_attempts=attempt - 1,
                    profile=profile,
                )
            except FetchFailedError as failure:
                profile.recovered_tasks += 1
                tracer.metrics.inc("tasks.recovered")
                tracer.instant(
                    "task.reexecution",
                    "recovery",
                    stage_id=stage.stage_id,
                    partition=partition,
                    shuffle_id=failure.shuffle_id,
                    attempt=attempt,
                )
                self._recover_shuffle(failure.shuffle_id, profile)
        tracer.metrics.inc("tasks.failed")
        raise EngineError(
            f"result partition {partition} failed after "
            f"{MAX_RECOVERY_ROUNDS} recovery rounds"
        )

    # ------------------------------------------------------------------
    # Resilient task execution: retry, speculation, blacklisting
    # ------------------------------------------------------------------
    def _speculation_enabled(self) -> bool:
        if self.config.speculation is not None:
            return self.config.speculation
        return self._ctx.fault_injector is not None

    def _run_resilient_task(
        self,
        stage: Stage,
        partition: int,
        stage_profile: StageProfile,
        func: Optional[Callable[[list], object]],
        kind: str,
        recovery: bool = False,
        prior_attempts: int = 0,
        profile: Optional[QueryProfile] = None,
    ) -> object:
        """Run one task to a kept result: retries transient failures with
        backoff, launches a speculative copy against stragglers, feeds the
        blacklist, and merges the winning attempt's accumulator buffer
        exactly once."""
        config = self.config
        tracer = self._ctx.tracer
        excluded: set[int] = set()
        winner: Optional[_Attempt] = None
        attempts_used = 0
        last_failure: Optional[TransientTaskFailure] = None
        for attempt in range(1, config.max_task_attempts + 1):
            attempts_used = attempt
            try:
                winner = self._attempt_task(
                    stage,
                    partition,
                    prior_attempts + attempt,
                    speculative=False,
                    exclude=excluded,
                    func=func,
                    kind=kind,
                    recovery=recovery,
                )
                break
            except TransientTaskFailure as failure:
                last_failure = failure
                excluded.add(failure.worker_id)
                self._note_worker_failure(failure.worker_id, profile)
                if attempt < config.max_task_attempts:
                    self._retry_with_backoff(
                        stage, partition, failure, attempt, profile
                    )
        if winner is None:
            tracer.metrics.inc("tasks.failed")
            raise TaskError(stage.stage_id, partition, last_failure)

        winner = self._maybe_speculate(
            stage,
            partition,
            winner,
            excluded,
            func,
            kind,
            prior_attempts + attempts_used,
            profile,
        )
        if winner.seconds is not None:
            self._stage_durations.setdefault(stage.stage_id, []).append(
                winner.seconds
            )
            self._ctx.tracer.metrics.observe(
                "task.seconds", winner.seconds
            )
        self._merge_accumulators(stage, partition, winner, kind)
        winner.metrics.attempts = prior_attempts + attempts_used + (
            1 if winner.metrics.speculative else 0
        )
        stage_profile.tasks.append(winner.metrics)
        return winner.result

    def _attempt_task(
        self,
        stage: Stage,
        partition: int,
        attempt: int,
        speculative: bool,
        exclude: set[int],
        func: Optional[Callable[[list], object]],
        kind: str,
        recovery: bool = False,
    ) -> _Attempt:
        """Execute one attempt of a task on a freshly assigned worker."""
        ctx = self._ctx
        tracer = ctx.tracer
        lifecycle = ctx.lifecycle
        if lifecycle is not None:
            # Cooperative scheduling point: observe cancellation/deadline
            # and hand the baton to another admitted query's task.  A
            # retry or speculative attempt passes through here too, so a
            # cancel issued mid-recovery stops the next attempt from ever
            # launching (the cancellation-races-retry case).
            lifecycle.checkpoint()
        worker = ctx.cluster.assign_worker(
            preferred=stage.rdd.preferred_workers(partition),
            exclude=exclude,
        )
        tracer.metrics.inc("tasks.launched")
        injector = ctx.fault_injector
        if injector is not None:
            reason = injector.fail_task(
                stage.stage_id, partition, attempt, worker.worker_id
            )
            if reason is not None:
                raise TransientTaskFailure(
                    stage.stage_id,
                    partition,
                    worker.worker_id,
                    reason,
                    attempt,
                )
        metrics = TaskMetrics(
            stage_id=stage.stage_id,
            partition=partition,
            worker_id=worker.worker_id,
            speculative=speculative,
        )
        task_ctx = TaskContext(
            stage_id=stage.stage_id,
            partition=partition,
            worker=worker,
            shuffle_manager=ctx.shuffle_manager,
            cache_tracker=ctx.cache_tracker,
            metrics=metrics,
            attempt=attempt,
            speculative=speculative,
            cancel_token=(
                lifecycle.current_token() if lifecycle is not None else None
            ),
            accountant=ctx.memory,
        )
        push_task_context(task_ctx)
        try:
            try:
                records = stage.rdd.iterator(partition, task_ctx)
                result = func(records) if func is not None else None
            except (FetchFailedError, EngineError):
                raise
            except Exception as exc:
                raise TaskError(stage.stage_id, partition, exc) from exc
        finally:
            pop_task_context(task_ctx)
            # Drain the attempt's execution-pool reservations whether it
            # succeeded, failed, or was cancelled — the ledger-balances-
            # to-zero invariant lives or dies right here.
            task_ctx.release_task_memory()
        if kind == "shuffle-map":
            ctx.shuffle_manager.write_map_output(
                stage.shuffle_dep,
                partition,
                worker.worker_id,
                records,
                metrics,
            )
        metrics.records_out = len(records)
        vector = metrics.to_cost_vector()
        # Durations are only priced out when something consumes them: the
        # trace, the fault injector's stragglers, or speculation.
        seconds: Optional[float] = None
        if (
            tracer.enabled
            or injector is not None
            or self._speculation_enabled()
            or (lifecycle is not None and lifecycle.in_query())
        ):
            seconds = tracer.estimate_seconds(vector)
            if injector is not None:
                seconds *= injector.straggler_factor(
                    stage.stage_id, partition, stage.num_partitions, attempt
                )
        if lifecycle is not None and seconds is not None:
            # Deadline accounting: every completed attempt's simulated
            # cost counts against the owning query's deadline.
            lifecycle.on_task_seconds(seconds)
        span_name = (
            f"map task {stage.stage_id}.{partition}"
            if kind == "shuffle-map"
            else f"result task {stage.stage_id}.{partition}"
        )
        span_args = dict(
            stage_id=stage.stage_id,
            partition=partition,
            kind=kind,
            records_out=metrics.records_out,
            attempt=attempt,
        )
        if kind == "shuffle-map":
            span_args["shuffle_write_bytes"] = metrics.shuffle_write_bytes
            span_args["recovery"] = recovery
        if speculative:
            span_args["speculative"] = True
        tracer.task_span(
            span_name,
            lane=worker.worker_id,
            vector=vector,
            seconds=seconds,
            **span_args,
        )
        if kind == "shuffle-map" and recovery:
            tracer.instant(
                "task.reexecution",
                "recovery",
                lane=worker.worker_id,
                stage_id=stage.stage_id,
                partition=partition,
                kind="shuffle-map",
            )
        ctx.cluster.task_completed(worker)
        return _Attempt(
            worker_id=worker.worker_id,
            metrics=metrics,
            task_ctx=task_ctx,
            result=result,
            records_out=metrics.records_out,
            seconds=seconds,
        )

    def _retry_with_backoff(
        self,
        stage: Stage,
        partition: int,
        failure: TransientTaskFailure,
        attempt: int,
        profile: Optional[QueryProfile],
    ) -> None:
        """Record a retry and charge its backoff delay to simulated time."""
        config = self.config
        tracer = self._ctx.tracer
        delay = min(
            config.retry_backoff_base_s * (2 ** (attempt - 1)),
            config.retry_backoff_cap_s,
        )
        tracer.metrics.inc("tasks.retried")
        if profile is not None:
            profile.retried_tasks += 1
        tracer.instant(
            "task.retry",
            "recovery",
            lane=failure.worker_id,
            stage_id=stage.stage_id,
            partition=partition,
            attempt=attempt,
            backoff_s=delay,
            reason=failure.reason,
        )
        # The wait occupies the failed worker's lane so traces show the
        # gap; category "recovery" keeps it out of task-overlap checks.
        tracer.task_span(
            f"retry backoff {stage.stage_id}.{partition}",
            lane=failure.worker_id,
            seconds=delay,
            category="recovery",
            stage_id=stage.stage_id,
            partition=partition,
            attempt=attempt,
        )

    def _note_worker_failure(
        self, worker_id: int, profile: Optional[QueryProfile]
    ) -> None:
        """Count one failure against a worker; blacklist on threshold.

        Failures are attributed to the submitting tenant: only a single
        tenant's repeated failures on a worker trip the blacklist, so a
        multi-tenant server never punishes tenant B for tenant A's
        poison query.
        """
        lifecycle = getattr(self._ctx, "lifecycle", None)
        tenant = lifecycle.current_tenant() if lifecycle is not None else None
        scoped = (tenant, worker_id)
        count = self._worker_failures.get(scoped, 0) + 1
        self._worker_failures[scoped] = count
        if count >= self.config.blacklist_threshold:
            self._worker_failures[scoped] = 0
            self._ctx.cluster.blacklist_worker(
                worker_id, self.config.blacklist_probation_tasks
            )
            if profile is not None:
                profile.blacklisted_workers += 1

    def _maybe_speculate(
        self,
        stage: Stage,
        partition: int,
        primary: _Attempt,
        excluded: set[int],
        func: Optional[Callable[[list], object]],
        kind: str,
        next_attempt: int,
        profile: Optional[QueryProfile],
    ) -> _Attempt:
        """Launch a backup copy when the primary looks like a straggler;
        return whichever attempt finished faster (simulated time)."""
        if not self._speculation_enabled() or primary.seconds is None:
            return primary
        threshold = self._speculation_threshold(stage)
        if threshold is None or primary.seconds <= threshold:
            return primary
        tracer = self._ctx.tracer
        tracer.metrics.inc("tasks.speculative")
        if profile is not None:
            profile.speculative_tasks += 1
        tracer.instant(
            "task.speculative",
            "recovery",
            stage_id=stage.stage_id,
            partition=partition,
            primary_worker=primary.worker_id,
            primary_seconds=primary.seconds,
            threshold=threshold,
        )
        try:
            copy = self._attempt_task(
                stage,
                partition,
                next_attempt + 1,
                speculative=True,
                exclude=excluded | {primary.worker_id},
                func=func,
                kind=kind,
            )
        except (TransientTaskFailure, FetchFailedError):
            # The backup died; the primary result stands.
            return primary
        if copy.seconds is not None and copy.seconds < primary.seconds:
            # The copy wins; for map tasks it also wrote last, so the
            # shuffle locations already point at its worker.
            return copy
        if kind == "shuffle-map":
            # The primary wins but the copy's write stole the location;
            # point reads back at the primary's output.
            self._ctx.shuffle_manager.repoint_map_output(
                stage.shuffle_dep.shuffle_id, partition, primary.worker_id
            )
        return primary

    def _speculation_threshold(self, stage: Stage) -> Optional[float]:
        """Straggler cutoff from completed peers, or None if too few."""
        durations = self._stage_durations.get(stage.stage_id, ())
        if len(durations) < self.config.speculation_min_peers:
            return None
        ordered = sorted(durations)
        index = min(
            int(len(ordered) * self.config.speculation_quantile),
            len(ordered) - 1,
        )
        return ordered[index] * self.config.speculation_multiplier

    def _merge_accumulators(
        self, stage: Stage, partition: int, winner: _Attempt, kind: str
    ) -> None:
        """Apply the kept attempt's buffered accumulator updates, exactly
        once per partition (lineage re-runs of a map task skip)."""
        if kind == "shuffle-map":
            key = (stage.shuffle_dep.shuffle_id, partition)
            if key in self._merged_map_acc:
                return
            self._merged_map_acc.add(key)
        for accumulator, delta in winner.task_ctx.acc_updates:
            accumulator.apply(delta)

    def _recover_shuffle(self, shuffle_id: int, profile: QueryProfile) -> None:
        stage = self._shuffle_stages.get(shuffle_id)
        if stage is None:
            raise EngineError(
                f"cannot recover unknown shuffle {shuffle_id}"
            )
        self._ensure_shuffle_stage(stage, profile)

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    def _stage_profile(
        self, profile: QueryProfile, stage: Stage
    ) -> StageProfile:
        for existing in profile.stages:
            if existing.stage_id == stage.stage_id:
                return existing
        stage_profile = StageProfile(
            stage_id=stage.stage_id,
            name=stage.rdd.name,
            is_shuffle_map=stage.is_shuffle_map,
            map_side_combined=bool(
                stage.shuffle_dep is not None
                and stage.shuffle_dep.map_side_combine
            ),
        )
        profile.stages.append(stage_profile)
        return stage_profile

"""Task, stage and query metrics recorded during real execution.

Every executed task fills in a :class:`TaskMetrics`; the scheduler rolls
them up into :class:`StageProfile` and :class:`QueryProfile`.  These feed
two consumers:

* the PDE optimizer, which reads per-partition sizes and statistics at
  shuffle boundaries to re-plan the rest of the query (Section 3.1), and
* the cost model, which converts measured volumes into cluster-scale
  seconds for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.models import (
    SOURCE_GENERATED,
    TaskCostVector,
)


@dataclass
class TaskMetrics:
    """Volumes one task consumed and produced during real execution."""

    stage_id: int = -1
    partition: int = -1
    worker_id: int = -1
    records_in: int = 0
    bytes_in: int = 0
    records_out: int = 0
    bytes_out: int = 0
    shuffle_read_bytes: int = 0
    shuffle_write_bytes: int = 0
    shuffle_write_records: int = 0
    #: Spilled-run bytes this task wrote to (simulated) local disk under
    #: memory pressure and read back at merge time; the cost model
    #: charges a disk round trip for them (zero when nothing spilled).
    spill_bytes_written: int = 0
    spill_bytes_read: int = 0
    #: Dominant input source observed ("memory", "disk", "shuffle",
    #: "generated"); scan operators set this explicitly.
    source: str = SOURCE_GENERATED
    #: Number of times this task was attempted (>1 after failures or
    #: speculation).
    attempts: int = 1
    #: True when the kept result came from a speculative backup copy.
    speculative: bool = False
    #: Input records processed batch-at-a-time by vectorized kernels
    #: (<= records_in); the cost model charges those a cheaper per-record
    #: CPU rate.
    batch_rows: int = 0
    #: Actual output rows per planner-stamped operator ("operator#op_id"
    #: -> rows), recorded by physical operators in both execution modes.
    #: Per-attempt like every other field here, so only the kept
    #: attempt's counts ever reach the stage profile.
    operator_rows: dict[str, int] = field(default_factory=dict)

    def to_cost_vector(self) -> TaskCostVector:
        """Convert to the cost-model representation."""
        vectorized_fraction = 0.0
        if self.records_in > 0:
            vectorized_fraction = min(
                self.batch_rows / self.records_in, 1.0
            )
        return TaskCostVector(
            records_in=float(self.records_in),
            bytes_in=float(self.bytes_in),
            records_out=float(self.records_out),
            bytes_out=float(self.bytes_out),
            shuffle_write_bytes=float(self.shuffle_write_bytes),
            shuffle_read_bytes=float(self.shuffle_read_bytes),
            spill_write_bytes=float(self.spill_bytes_written),
            spill_read_bytes=float(self.spill_bytes_read),
            source=self.source,
            vectorized_fraction=vectorized_fraction,
        )


@dataclass
class StageProfile:
    """Rolled-up metrics for one executed stage."""

    stage_id: int
    name: str
    is_shuffle_map: bool
    #: True when this shuffle pre-aggregates per key on the map side; its
    #: output volume then scales with the number of map tasks, not with
    #: the data volume (each map emits ~one record per group).
    map_side_combined: bool = False
    tasks: list[TaskMetrics] = field(default_factory=list)

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def records_in(self) -> int:
        return sum(task.records_in for task in self.tasks)

    @property
    def bytes_in(self) -> int:
        return sum(task.bytes_in for task in self.tasks)

    @property
    def records_out(self) -> int:
        return sum(task.records_out for task in self.tasks)

    @property
    def shuffle_write_bytes(self) -> int:
        return sum(task.shuffle_write_bytes for task in self.tasks)

    @property
    def shuffle_read_bytes(self) -> int:
        return sum(task.shuffle_read_bytes for task in self.tasks)

    @property
    def spill_bytes_written(self) -> int:
        return sum(task.spill_bytes_written for task in self.tasks)

    @property
    def spill_bytes_read(self) -> int:
        return sum(task.spill_bytes_read for task in self.tasks)

    @property
    def total_attempts(self) -> int:
        return sum(task.attempts for task in self.tasks)

    @property
    def operator_rows(self) -> dict[str, int]:
        """Per-operator actual output rows summed over this stage's
        kept task attempts."""
        totals: dict[str, int] = {}
        for task in self.tasks:
            for key, count in task.operator_rows.items():
                totals[key] = totals.get(key, 0) + count
        return totals

    def cost_vectors(self) -> list[TaskCostVector]:
        return [task.to_cost_vector() for task in self.tasks]


@dataclass
class QueryProfile:
    """All stages executed for one job (action)."""

    job_id: int
    stages: list[StageProfile] = field(default_factory=list)
    #: Tasks re-executed due to worker failures (lineage recovery).
    recovered_tasks: int = 0
    #: Task attempts retried after transient failures (with backoff).
    retried_tasks: int = 0
    #: Speculative backup copies launched against stragglers.
    speculative_tasks: int = 0
    #: Workers placed on the blacklist during this job.
    blacklisted_workers: int = 0
    #: Cached blocks the workers' LRU dropped under memory pressure while
    #: this job ran (lineage recomputes them on the next read).
    evicted_blocks: int = 0
    evicted_bytes: int = 0
    #: Bytes the job reserved through the unified memory accountant
    #: (storage puts + execution-pool operator state), and the engine's
    #: cumulative per-worker peak watermark observed when the job ended.
    memory_reserved_bytes: int = 0
    memory_peak_bytes: int = 0
    #: Spills forced by memory arbitration while this job ran: number of
    #: consumer spill events and total run bytes written to (simulated)
    #: local disk.  Zero when every operator fit in its budget.
    memory_spill_events: int = 0
    memory_spill_bytes: int = 0

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def total_tasks(self) -> int:
        return sum(stage.num_tasks for stage in self.stages)

    @property
    def total_attempts(self) -> int:
        return sum(stage.total_attempts for stage in self.stages)

    @property
    def shuffle_read_bytes(self) -> int:
        return sum(stage.shuffle_read_bytes for stage in self.stages)

    @property
    def shuffle_write_bytes(self) -> int:
        return sum(stage.shuffle_write_bytes for stage in self.stages)

    def stage_named(self, name: str) -> StageProfile:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r} in job {self.job_id}")

    def describe(self) -> str:
        # Imported here, not at module level: repro.obs.analyze imports
        # this module, so a top-level obs import would be circular.
        from repro.obs.metrics import percentiles_of

        lines = [f"job {self.job_id}: {self.num_stages} stages"]
        for stage in self.stages:
            kind = "shuffle-map" if stage.is_shuffle_map else "result"
            lines.append(
                f"  stage {stage.stage_id} ({kind}, {stage.name}): "
                f"{stage.num_tasks} tasks "
                f"({stage.total_attempts} attempts), "
                f"{stage.records_in} records in, "
                f"{stage.records_out} records out, "
                f"shuffle read {stage.shuffle_read_bytes} B, "
                f"shuffle write {stage.shuffle_write_bytes} B"
            )
            if stage.num_tasks > 1:
                p50, p95, p99 = percentiles_of(
                    [float(task.records_in) for task in stage.tasks]
                )
                lines.append(
                    f"    rows/task p50={int(p50)} "
                    f"p95={int(p95)} p99={int(p99)}"
                )
            operator_rows = stage.operator_rows
            if operator_rows:
                # Plan order (the numeric stamp id), so row and batch
                # mode runs read identically operator for operator.
                ordered = sorted(
                    operator_rows.items(),
                    key=lambda item: int(item[0].rsplit("#", 1)[1]),
                )
                lines.append(
                    "    operator rows: "
                    + ", ".join(
                        f"{key}={count}" for key, count in ordered
                    )
                )
        if self.recovered_tasks:
            lines.append(f"  recovered tasks: {self.recovered_tasks}")
        if self.retried_tasks:
            lines.append(f"  retried tasks: {self.retried_tasks}")
        if self.speculative_tasks:
            lines.append(
                f"  speculative tasks: {self.speculative_tasks}"
            )
        if self.blacklisted_workers:
            lines.append(
                f"  blacklisted workers: {self.blacklisted_workers}"
            )
        if self.evicted_blocks:
            lines.append(
                f"  evicted cache blocks: {self.evicted_blocks} "
                f"({self.evicted_bytes} B)"
            )
        if self.memory_reserved_bytes or self.memory_peak_bytes:
            lines.append("  == memory ==")
            lines.append(
                f"  reserved during job: {self.memory_reserved_bytes} B, "
                f"engine peak watermark: {self.memory_peak_bytes} B"
            )
            if self.memory_spill_events:
                lines.append(
                    f"  spills: {self.memory_spill_events} event(s), "
                    f"{self.memory_spill_bytes} B to disk"
                )
        return "\n".join(lines)

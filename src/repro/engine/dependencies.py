"""RDD dependencies: the edges of the lineage graph.

Narrow dependencies (each output partition depends on a bounded set of
parent partitions) let the scheduler pipeline operators inside one task and
recompute a lost partition by recomputing only its parents.  Shuffle (wide)
dependencies are stage boundaries: the parent stage materializes bucketed
map output, and child tasks fetch buckets from every map task.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.engine.partitioner import Partitioner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.rdd import RDD


class Dependency:
    """Base class: a dependency on a parent RDD."""

    def __init__(self, rdd: "RDD"):
        self.rdd = rdd


class NarrowDependency(Dependency):
    """Each child partition depends on a bounded set of parent partitions."""

    def parents(self, partition: int) -> list[int]:
        raise NotImplementedError


class OneToOneDependency(NarrowDependency):
    """Child partition i depends exactly on parent partition i."""

    def parents(self, partition: int) -> list[int]:
        return [partition]


class RangeDependency(NarrowDependency):
    """Used by union: child partitions [out_start, out_start+length) map to
    parent partitions [in_start, in_start+length)."""

    def __init__(self, rdd: "RDD", in_start: int, out_start: int, length: int):
        super().__init__(rdd)
        self.in_start = in_start
        self.out_start = out_start
        self.length = length

    def parents(self, partition: int) -> list[int]:
        if self.out_start <= partition < self.out_start + self.length:
            return [partition - self.out_start + self.in_start]
        return []


class ManyToOneDependency(NarrowDependency):
    """Used by coalesce: child partition i depends on an explicit group of
    parent partitions."""

    def __init__(self, rdd: "RDD", groups: list[list[int]]):
        super().__init__(rdd)
        self.groups = groups

    def parents(self, partition: int) -> list[int]:
        return self.groups[partition]


class Aggregator:
    """Map-side and reduce-side combining functions for a shuffle.

    Mirrors Spark's Aggregator: ``create_combiner`` seeds a combiner from
    the first value of a key, ``merge_value`` folds further values in, and
    ``merge_combiners`` merges partial combiners across map outputs.
    """

    def __init__(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
    ):
        self.create_combiner = create_combiner
        self.merge_value = merge_value
        self.merge_combiners = merge_combiners


class ShuffleDependency(Dependency):
    """A wide dependency: repartition parent records by key.

    Parent records must be ``(key, value)`` pairs.  When ``aggregator`` is
    set and ``map_side_combine`` is true, map tasks pre-aggregate per key
    before writing buckets (the "task-local aggregations" of Section 6.2.2).
    ``stats_collectors`` are PDE's pluggable accumulators (Section 3.1):
    they observe map output as it is materialized and their merged results
    are available to the optimizer before the reduce stage is planned.
    """

    _next_shuffle_id = 0

    def __init__(
        self,
        rdd: "RDD",
        partitioner: Partitioner,
        aggregator: Optional[Aggregator] = None,
        map_side_combine: bool = False,
        stats_collectors: tuple = (),
    ):
        super().__init__(rdd)
        self.partitioner = partitioner
        self.aggregator = aggregator
        self.map_side_combine = map_side_combine and aggregator is not None
        self.stats_collectors = tuple(stats_collectors)
        self.shuffle_id = ShuffleDependency._next_shuffle_id
        ShuffleDependency._next_shuffle_id += 1

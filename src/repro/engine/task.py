"""Task-side runtime: the task context and the cached-partition tracker."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.cluster.worker import approximate_size_bytes
from repro.costmodel.models import SOURCE_MEMORY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster import VirtualCluster, Worker
    from repro.engine.metrics import TaskMetrics
    from repro.engine.shuffle import ShuffleManager


def _rdd_block_id(rdd_id: int, partition: int) -> str:
    return f"rdd_{rdd_id}_{partition}"


#: Stack of task contexts currently executing on this driver process.
#: Tasks run inline, so "the current task" is whatever the scheduler most
#: recently pushed; accumulators consult it to buffer task-side updates
#: per attempt instead of mutating driver state mid-task (which would
#: double count on retries, speculation, and lineage recovery).
_ACTIVE_TASKS: list["TaskContext"] = []


def current_task_context() -> "TaskContext | None":
    """The innermost running task's context, or None on the driver."""
    return _ACTIVE_TASKS[-1] if _ACTIVE_TASKS else None


def push_task_context(task_ctx: "TaskContext") -> None:
    _ACTIVE_TASKS.append(task_ctx)


def pop_task_context(task_ctx: "TaskContext") -> None:
    """Pop ``task_ctx`` (and anything an exception left above it)."""
    while _ACTIVE_TASKS:
        if _ACTIVE_TASKS.pop() is task_ctx:
            return


class CacheTracker:
    """Master-side registry of which worker holds each cached RDD partition.

    A cached partition lives on exactly one worker (RDDs need no
    replication: lineage recomputes lost blocks, Section 2.2).  When a
    worker dies its entries are dropped and the next read recomputes.
    """

    def __init__(self, cluster: "VirtualCluster"):
        self._cluster = cluster
        self._tracer = cluster.tracer
        #: (rdd_id, partition) -> worker_id
        self._locations: dict[tuple[int, int], int] = {}
        #: rdd_id -> [hits, misses] (per-table ratio gauges).
        self._rdd_stats: dict[int, list[int]] = {}
        cluster.on_worker_killed(self._handle_worker_killed)

    def get(self, rdd_id: int, partition: int) -> tuple[int, Any] | None:
        """Return (worker_id, value) for a cached partition, or None."""
        worker_id = self._locations.get((rdd_id, partition))
        if worker_id is None:
            self._tracer.metrics.inc("cache.misses")
            self._note_access(rdd_id, hit=False)
            return None
        worker = self._cluster.worker(worker_id)
        block_id = _rdd_block_id(rdd_id, partition)
        if not worker.alive or block_id not in worker.blocks:
            self._locations.pop((rdd_id, partition), None)
            self._tracer.metrics.inc("cache.misses")
            self._note_access(rdd_id, hit=False)
            return None
        self._tracer.metrics.inc("cache.hits")
        self._note_access(rdd_id, hit=True)
        self._tracer.instant(
            "cache.hit",
            "cache",
            lane=worker_id,
            rdd_id=rdd_id,
            partition=partition,
        )
        return worker_id, worker.blocks.get(block_id)

    def _note_access(self, rdd_id: int, hit: bool) -> None:
        """Maintain the derived cache-ratio gauges: one overall pair
        from the ``cache.*``/``blocks.*`` counters, plus a per-RDD
        hit-ratio gauge so eviction pressure on one table is readable
        straight from ``.metrics``."""
        stats = self._rdd_stats.setdefault(rdd_id, [0, 0])
        stats[0 if hit else 1] += 1
        metrics = self._tracer.metrics
        hits = metrics.value("cache.hits")
        misses = metrics.value("cache.misses")
        if hits + misses:
            metrics.set_gauge(
                "cache.hit_ratio", hits / (hits + misses)
            )
        puts = metrics.value("blocks.put")
        if puts:
            metrics.set_gauge(
                "blocks.eviction_ratio",
                metrics.value("blocks.evicted") / puts,
            )
        total = stats[0] + stats[1]
        metrics.set_gauge(  # dynamic name: per-table breakdown
            f"cache.rdd_{rdd_id}.hit_ratio", stats[0] / total
        )

    def location(self, rdd_id: int, partition: int) -> int | None:
        return self._locations.get((rdd_id, partition))

    def put(
        self,
        rdd_id: int,
        partition: int,
        worker_id: int,
        value: Any,
        size_bytes: int | None = None,
    ) -> None:
        worker = self._cluster.worker(worker_id)
        worker.blocks.put(_rdd_block_id(rdd_id, partition), value, size_bytes)
        self._locations[(rdd_id, partition)] = worker_id

    def unpersist(self, rdd_id: int) -> None:
        stale = [key for key in self._locations if key[0] == rdd_id]
        for key in stale:
            worker_id = self._locations.pop(key)
            worker = self._cluster.worker(worker_id)
            worker.blocks.remove(_rdd_block_id(key[0], key[1]))

    def cached_partitions(self, rdd_id: int) -> dict[int, int]:
        """partition -> worker_id for every cached partition of an RDD."""
        return {
            partition: worker_id
            for (cached_rdd, partition), worker_id in self._locations.items()
            if cached_rdd == rdd_id
        }

    def cached_bytes(self, rdd_id: int) -> int:
        """Total block-store bytes held for one RDD across live workers."""
        total = 0
        for (cached_rdd, partition), worker_id in self._locations.items():
            if cached_rdd != rdd_id:
                continue
            worker = self._cluster.worker(worker_id)
            block_id = _rdd_block_id(cached_rdd, partition)
            if worker.alive and block_id in worker.blocks:
                total += worker.blocks.size_of(block_id)
        return total

    def _handle_worker_killed(self, worker_id: int) -> None:
        stale = [
            key for key, owner in self._locations.items() if owner == worker_id
        ]
        for key in stale:
            del self._locations[key]


class TaskContext:
    """Everything a running task can reach: its identity, worker, shuffle
    manager, cache tracker, and the metrics object it fills in.

    ``attempt`` numbers retries of the same task (1-based); ``speculative``
    marks backup copies launched against stragglers.  Accumulator updates
    made while the task runs land in ``acc_updates`` and are merged into
    driver state exactly once — only for the attempt whose result the
    scheduler actually keeps.

    ``cancel_token`` is the owning query's cooperative cancellation flag
    (when the task runs under a lifecycle manager): in-flight attempts
    observe it via :meth:`check_cancelled` at RDD iterator boundaries, so
    a cancelled query stops computing without waiting for the stage to
    finish — and the dead attempt's buffered accumulator updates are
    simply discarded, never merged.
    """

    def __init__(
        self,
        stage_id: int,
        partition: int,
        worker: "Worker",
        shuffle_manager: "ShuffleManager",
        cache_tracker: CacheTracker,
        metrics: "TaskMetrics",
        attempt: int = 1,
        speculative: bool = False,
        cancel_token: Any | None = None,
        accountant: Any | None = None,
    ):
        self.stage_id = stage_id
        self.partition = partition
        self.worker = worker
        self.shuffle_manager = shuffle_manager
        self.cache_tracker = cache_tracker
        self.metrics = metrics
        self.attempt = attempt
        self.speculative = speculative
        self.cancel_token = cancel_token
        #: Buffered (accumulator, delta) pairs from this attempt.
        self.acc_updates: list[tuple[Any, Any]] = []
        #: Execution-pool memory ledger (None outside an EngineContext).
        self.accountant = accountant
        #: owner -> bytes this attempt still holds; drained by
        #: release_task_memory() when the attempt ends, so failed or
        #: cancelled attempts can never leak reservations.
        self._memory_held: dict[str, int] = {}
        #: Spillable consumers this attempt registered with the
        #: accountant; deregistered alongside the memory drain so a
        #: failed, retried, or cancelled attempt can never leave a dead
        #: consumer (or its spilled runs) reachable from arbitration.
        self._spillables: list[Any] = []

    # -- execution-pool memory accounting ------------------------------
    def reserve_memory(self, owner: str, nbytes: int) -> int:
        """Charge ``nbytes`` of transient operator state (hash tables,
        shuffle buffers) to this worker's execution pool, attributed to
        ``owner``; auto-released when the attempt ends."""
        if self.accountant is None or nbytes <= 0:
            return 0
        charged = self.accountant.reserve(
            self.worker.worker_id, "execution", owner, nbytes
        )
        if charged:
            self._memory_held[owner] = (
                self._memory_held.get(owner, 0) + charged
            )
        return charged

    def release_memory(self, owner: str, nbytes: int) -> int:
        """Return part of an earlier reservation (e.g. a drained
        aggregation state) before the attempt ends."""
        if self.accountant is None or nbytes <= 0:
            return 0
        held = self._memory_held.get(owner, 0)
        released = self.accountant.release(
            self.worker.worker_id, "execution", owner, min(nbytes, held)
        )
        remaining = held - released
        if remaining:
            self._memory_held[owner] = remaining
        else:
            self._memory_held.pop(owner, None)
        return released

    def register_spillable(self, consumer: Any) -> None:
        """Register a spillable execution consumer (external hash agg,
        external sort) with the accountant's arbitration path for this
        task's worker; automatically deregistered when the attempt
        ends."""
        if self.accountant is None:
            return
        self.accountant.register_spill_consumer(
            self.worker.worker_id, consumer
        )
        self._spillables.append(consumer)

    def release_task_memory(self) -> int:
        """Drain every reservation this attempt still holds (called by
        the scheduler in the attempt's ``finally`` — the leak-proof
        release point for retries, speculation, and cancellation)."""
        if self.accountant is None:
            return 0
        for consumer in self._spillables:
            self.accountant.deregister_spill_consumer(
                self.worker.worker_id, consumer
            )
        self._spillables.clear()
        released = 0
        for owner, held in list(self._memory_held.items()):
            released += self.accountant.release(
                self.worker.worker_id, "execution", owner, held
            )
        self._memory_held.clear()
        return released

    def check_cancelled(self) -> None:
        """Raise the owning query's typed cancellation error if its
        token is armed (no-op for tasks outside a lifecycle manager)."""
        if self.cancel_token is not None:
            self.cancel_token.raise_if_cancelled()

    def record_accumulator(self, accumulator: Any, delta: Any) -> None:
        """Buffer a task-side accumulator update for driver-side merge."""
        self.acc_updates.append((accumulator, delta))

    def read_cached(self, rdd_id: int, partition: int) -> Any | None:
        """Read a cached partition, recording memory-source metrics."""
        hit = self.cache_tracker.get(rdd_id, partition)
        if hit is None:
            return None
        __, value = hit
        self.metrics.source = SOURCE_MEMORY
        self.metrics.bytes_in += approximate_size_bytes(value)
        if isinstance(value, list):
            self.metrics.records_in += len(value)
        return value

    def write_cached(self, rdd_id: int, partition: int, value: Any) -> None:
        self.cache_tracker.put(rdd_id, partition, self.worker.worker_id, value)

"""Query lifecycle: admission control, deadlines, cancellation, fairness.

PR 2 made individual *tasks* resilient; this module makes whole *queries*
manageable.  A :class:`QueryLifecycleManager` wraps the engine with:

* **admission control** — a bounded queue over a configurable concurrency
  limit.  Submissions beyond capacity fail fast with a typed
  :class:`~repro.errors.AdmissionRejected` carrying a retry-after hint
  (backpressure, not silent queueing forever);
* **per-query deadlines** on the simulated clock — a query whose charged
  simulated seconds exceed its deadline is cancelled *mid-flight*, at the
  next task boundary, with :class:`~repro.errors.QueryDeadlineExceeded`;
* **cooperative cancellation** — :meth:`QueryHandle.cancel` arms a
  :class:`CancelToken` that the scheduler observes before every task
  launch and that in-flight attempts observe through their
  :class:`~repro.engine.task.TaskContext`.  The unwind releases the
  query's admission slot and cleans up its shuffle outputs, open tracer
  spans, and buffered accumulator updates (the recovery-tail discipline);
* **fair multi-query scheduling** — runnable tasks from concurrently
  admitted queries interleave across the shared virtual workers
  (round-robin, fewest-tasks-first, or weighted fair shares keyed on the
  submitting tenant's priority tier) instead of strict FIFO, so a short
  interactive query is not starved behind a long scan;
* a **per-query circuit breaker** — a query key whose runs repeatedly
  exhaust the engine's recovery budget fails fast with
  :class:`~repro.errors.QueryCircuitOpenError` instead of burning the
  whole retry budget again on every resubmit.  The breaker is scoped per
  ``(tenant, key)``: one tenant's poison query never fails fast another
  tenant running the same SQL.

The serving layer (:mod:`repro.serving`) builds on three hooks here:
``submit`` accepts ``tenant``/``priority``/``weight`` so admission and
fairness are tenant-aware, :meth:`QueryLifecycleManager.shed_queued`
drops a still-queued query with a typed
:class:`~repro.errors.QueryShedError` (load shedding never touches a
query that already launched tasks), and retry-after hints derive from
the observed queue drain rate on the simulated clock.

Execution model
---------------

The engine runs tasks inline and synchronously, so concurrency is
*cooperative*: each admitted query runs on its own daemon thread, but a
baton guarantees exactly one thread executes at any instant.  Handoffs
happen only at task boundaries (the scheduler calls :meth:`checkpoint`
before every task attempt), and the next query to run is chosen
deterministically by the fairness policy — so a set of concurrent
queries produces byte-identical results and traces on every run, and
composes with the seeded fault injector.  The baton also keeps the
module-global task-context stack and the tracer's span stack coherent:
the manager swaps in a per-query span stack at every handoff, so
concurrent queries' spans nest correctly and cancellation can close
exactly the spans the dead query left open.

Real wall-clock time is never read; the only real-time construct is a
generous watchdog on the baton condition variable that turns an
accidental deadlock into a typed error instead of a hung build.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import (
    AdmissionRejected,
    EngineError,
    QueryCancelledError,
    QueryCircuitOpenError,
    QueryDeadlineExceeded,
    QueryLifecycleError,
    QueryShedError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import EngineContext

#: Query states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"
DEADLINE = "deadline"
FAILED = "failed"
SHED = "shed"

#: Terminal states.
_TERMINAL = frozenset({DONE, CANCELLED, DEADLINE, FAILED, SHED})


@dataclass
class LifecycleConfig:
    """Knobs for admission, fairness, and the circuit breaker."""

    #: Queries allowed to run concurrently (admission slots).
    max_concurrent: int = 2
    #: Admitted-but-waiting queries beyond the slots; submissions past
    #: this bound raise :class:`~repro.errors.AdmissionRejected`.
    max_queued: int = 2
    #: "round-robin" interleaves one task per query in admission order;
    #: "min-tasks" always runs the query with the fewest launched tasks
    #: (max-min fairness on task shares); "weighted" runs the query with
    #: the smallest ``tasks_launched / weight`` ratio, so a weight-8
    #: interactive query gets eight task slots for every one a weight-1
    #: best-effort query gets (weighted max-min fairness).
    fairness: str = "round-robin"
    #: Deadline applied to queries submitted without an explicit one
    #: (None = no default deadline).
    default_deadline_s: Optional[float] = None
    #: Consecutive engine failures of one query key before its circuit
    #: opens.
    circuit_failure_threshold: int = 2
    #: Query completions (any key) before an open circuit half-opens and
    #: admits one trial run.
    circuit_reset_completions: int = 4
    #: Retry-after hint when no completed query durations exist yet.
    retry_after_default_s: float = 1.0
    #: Terminal events (slot/queue-position releases) sampled for the
    #: observed queue drain rate that prices retry-after hints.
    drain_rate_window: int = 8
    #: Real-time guard on baton handoffs: a cooperative-scheduling bug
    #: surfaces as a typed error after this many seconds instead of a
    #: hung test run.  Never reached in normal operation.
    watchdog_timeout_s: float = 300.0


class CancelToken:
    """Shared flag a query's scheduler and in-flight tasks observe.

    ``cancel`` is one-shot: the first reason wins (a user cancel racing a
    deadline expiry keeps whichever fired first).
    """

    __slots__ = ("_handle", "cancelled", "reason")

    def __init__(self, handle: "QueryHandle"):
        self._handle = handle
        self.cancelled = False
        self.reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled") -> None:
        if not self.cancelled:
            self.cancelled = True
            self.reason = reason

    def raise_if_cancelled(self) -> None:
        """Raise the typed cancellation error when the token is armed."""
        if not self.cancelled:
            return
        handle = self._handle
        if self.reason == "deadline":
            raise QueryDeadlineExceeded(
                handle.name,
                deadline_s=handle.deadline_s or 0.0,
                elapsed_s=handle.charged_seconds,
            )
        raise QueryCancelledError(handle.name, reason=self.reason or "cancelled")


@dataclass
class QueryHandle:
    """One submitted query: its state, result, and control surface."""

    query_id: int
    name: str
    key: str
    fn: Callable[[], Any]
    manager: "QueryLifecycleManager"
    deadline_s: Optional[float] = None
    #: Owning tenant (None for directly-submitted queries); scopes the
    #: circuit breaker and worker-failure attribution.
    tenant: Optional[str] = None
    #: Priority tier label (serving layer: interactive/batch/best_effort).
    priority: Optional[str] = None
    #: Fair-share weight under the "weighted" fairness policy.
    weight: int = 1
    #: Why load shedding dropped this query (None unless state is SHED).
    shed_reason: Optional[str] = None
    #: Simulated-clock instant this query was admitted or queued.
    submitted_at: float = 0.0
    state: str = QUEUED
    result: Any = None
    error: Optional[BaseException] = None
    #: Simulated seconds charged to this query (sum of its kept task
    #: attempts' cost-model durations plus straggler factors).
    charged_seconds: float = 0.0
    #: Task attempts this query has launched (retries and speculative
    #: copies included) — the fairness currency.
    tasks_launched: int = 0
    #: Shuffle ids registered while this query held the baton; released
    #: on cancellation so no pinned map-output blocks leak.
    shuffle_ids: set = field(default_factory=set)
    #: cache_lookup records collected by the SQL cache stack while this
    #: query ran (the lifecycle manager owns its event-log slice).
    cache_lookups: list = field(default_factory=list)
    token: CancelToken = field(init=False)
    _thread: Optional[threading.Thread] = field(default=None, repr=False)
    #: Per-query tracer span stack, swapped in while this query runs.
    _trace_stack: list = field(default_factory=list, repr=False)
    _span: Any = field(default=None, repr=False)
    _cancel_after_tasks: Optional[int] = None

    def __post_init__(self) -> None:
        self.token = CancelToken(self)

    # -- control ------------------------------------------------------
    def cancel(self, reason: str = "cancelled") -> None:
        """Request cooperative cancellation (takes effect at the next
        task boundary; immediate for still-queued queries)."""
        self.manager._cancel(self, reason)

    def cancel_after_tasks(self, count: int) -> "QueryHandle":
        """Arm cancellation to fire once this query has launched
        ``count`` tasks — the deterministic mid-flight cancel used by
        robustness tests and demos (mirrors FailureInjector.after_tasks)."""
        self._cancel_after_tasks = count
        return self

    def result_or_raise(self) -> Any:
        """Drive the cooperative scheduler until this query is terminal,
        then return its result or raise its typed error."""
        return self.manager.wait(self)

    # -- inspection ---------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state in _TERMINAL

    def describe(self) -> str:
        parts = [
            f"query {self.query_id} ({self.name!r}): {self.state}",
            f"{self.tasks_launched} tasks",
            f"{self.charged_seconds:.3f} sim-s",
        ]
        if self.deadline_s is not None:
            parts.append(f"deadline {self.deadline_s:.3f}s")
        if self.tenant is not None:
            tier = f"/{self.priority}" if self.priority else ""
            parts.append(f"tenant {self.tenant}{tier}")
        if self.shed_reason is not None:
            parts.append(f"shed: {self.shed_reason}")
        if self.error is not None:
            parts.append(f"error: {type(self.error).__name__}")
        return ", ".join(parts)


class QueryLifecycleManager:
    """Admits, schedules, cancels, and cleans up after queries.

    One per :class:`~repro.engine.context.EngineContext` (created via
    ``ctx.enable_lifecycle()``).  Drive admitted queries with
    :meth:`drain` (run everything) or :meth:`wait` (run until one handle
    finishes); both must be called from the driver, never from inside a
    submitted query.
    """

    def __init__(
        self, ctx: "EngineContext", config: Optional[LifecycleConfig] = None
    ):
        self._ctx = ctx
        self.config = config if config is not None else LifecycleConfig()
        if self.config.fairness not in (
            "round-robin", "min-tasks", "weighted"
        ):
            raise ValueError(
                f"unknown fairness policy {self.config.fairness!r}"
            )
        self._cond = threading.Condition()
        #: The query currently allowed to run (exactly one, or None when
        #: the driver holds control).
        self._baton: Optional[QueryHandle] = None
        self._current: Optional[QueryHandle] = None
        #: Admitted queries holding a slot, in admission order.
        self._running: list[QueryHandle] = []
        #: Admitted queries waiting for a slot.
        self._queued: list[QueryHandle] = []
        #: Every handle ever submitted (for the shell's .queries view).
        self.handles: list[QueryHandle] = []
        #: Terminal handles in completion order (fairness assertions).
        self.finish_order: list[QueryHandle] = []
        self._next_query_id = 0
        self._rr_cursor = 0
        self._completions = 0
        #: (tenant, query key) -> consecutive engine failures.  Scoping
        #: per tenant keeps one tenant's poison query from opening the
        #: circuit for another tenant running the same SQL.
        self._failures: dict[tuple[Optional[str], str], int] = {}
        #: (tenant, query key) -> completion count at which the circuit
        #: half-opens.
        self._circuit_until: dict[tuple[Optional[str], str], int] = {}
        #: Charged durations of recently completed queries (the
        #: retry-hint fallback before drain-rate samples exist).
        self._recent_seconds: list[float] = []
        #: Simulated-clock instants of recent terminal events — each one
        #: released a slot or queue position, so their spacing is the
        #: observed queue drain rate behind retry-after hints.
        self._drain_times: list[float] = []
        self._driver_stack: Optional[list] = None
        # Aggregate counters (engine metrics mirror these, but the
        # manager keeps its own so describe() is self-contained).
        self.submitted = 0
        self.completed = 0
        self.cancelled = 0
        self.deadline_expired = 0
        self.failed = 0
        self.rejected = 0
        self.shed = 0
        self.circuit_opened = 0

    # ------------------------------------------------------------------
    # Submission and admission control
    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[[], Any],
        name: Optional[str] = None,
        deadline_s: Optional[float] = None,
        key: Optional[str] = None,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        weight: int = 1,
    ) -> QueryHandle:
        """Admit ``fn`` (a zero-argument callable running engine work).

        Raises :class:`~repro.errors.AdmissionRejected` beyond capacity
        and :class:`~repro.errors.QueryCircuitOpenError` when the
        ``(tenant, key)`` circuit is open.  Nothing executes until
        :meth:`drain`/:meth:`wait`.  ``tenant``/``priority``/``weight``
        are the serving layer's hooks: the weight feeds the "weighted"
        fairness policy and the tenant scopes failure attribution.
        """
        metrics = self._ctx.tracer.metrics
        self.submitted += 1
        metrics.inc("queries.submitted")
        query_id = self._next_query_id
        self._next_query_id += 1
        name = name if name is not None else f"q{query_id}"
        key = key if key is not None else name
        self._check_circuit(name, key, tenant)
        handle = QueryHandle(
            query_id=query_id,
            name=name,
            key=key,
            fn=fn,
            manager=self,
            deadline_s=(
                deadline_s
                if deadline_s is not None
                else self.config.default_deadline_s
            ),
            tenant=tenant,
            priority=priority,
            weight=max(int(weight), 1),
            submitted_at=self._ctx.tracer.clock.now(),
        )
        with self._cond:
            if len(self._running) < self.config.max_concurrent:
                handle.state = RUNNING
                self._running.append(handle)
                metrics.inc("queries.admitted")
                self._ctx.tracer.instant(
                    "query.admitted", "query",
                    query_id=query_id, query=name,
                )
            elif len(self._queued) < self.config.max_queued:
                self._queued.append(handle)
                metrics.inc("queries.queued")
                self._ctx.tracer.instant(
                    "query.queued", "query",
                    query_id=query_id, query=name,
                    position=len(self._queued),
                )
            else:
                self.rejected += 1
                metrics.inc("queries.rejected")
                hint = self._retry_after_hint()
                self._ctx.tracer.instant(
                    "query.rejected", "query",
                    query_id=query_id, query=name,
                    reason="capacity", retry_after_s=hint,
                )
                raise AdmissionRejected(
                    name,
                    running=len(self._running),
                    queued=len(self._queued),
                    retry_after_s=hint,
                )
        self.handles.append(handle)
        return handle

    def _check_circuit(
        self, name: str, key: str, tenant: Optional[str]
    ) -> None:
        scoped = (tenant, key)
        half_open_at = self._circuit_until.get(scoped)
        if half_open_at is None:
            return
        if self._completions >= half_open_at:
            # Half-open: admit one trial; success closes the circuit,
            # another failure re-opens it.
            del self._circuit_until[scoped]
            return
        self.rejected += 1
        self._ctx.tracer.metrics.inc("queries.circuit_rejected")
        remaining = half_open_at - self._completions
        self._ctx.tracer.instant(
            "query.rejected", "query",
            query=name, key=key, tenant=tenant, reason="circuit-open",
            retry_after_completions=remaining,
        )
        raise QueryCircuitOpenError(
            key,
            failures=self._failures.get(scoped, 0),
            retry_after_completions=remaining,
        )

    def _retry_after_hint(self) -> float:
        """Simulated seconds until a resubmission plausibly admits.

        Derived from the observed queue drain rate: the simulated-clock
        spacing of recent terminal events (each frees a slot or queue
        position).  With ``q`` queries already queued, the hint is the
        time for ``q + 1`` drains at that rate.  Before two drain
        samples with clock movement exist, fall back to the average of
        recently completed query durations.
        """
        waiting = 1 + len(self._queued)
        samples = self._drain_times[-self.config.drain_rate_window:]
        if len(samples) >= 2:
            elapsed = samples[-1] - samples[0]
            if elapsed > 0:
                rate = (len(samples) - 1) / elapsed  # drains per sim-s
                return waiting / rate
        recent = self._recent_seconds[-8:]
        average = (
            sum(recent) / len(recent)
            if recent
            else self.config.retry_after_default_s
        )
        return max(average, 1e-3) * waiting

    # ------------------------------------------------------------------
    # Driving the cooperative scheduler
    # ------------------------------------------------------------------
    def drain(self) -> list[QueryHandle]:
        """Run every admitted query to a terminal state; returns the
        completion order."""
        self._require_driver("drain")
        while self._running or self._queued:
            self._promote_queued()
            handle = self._pick_next()
            if handle is None:  # pragma: no cover - defensive
                break
            self._run_slice(handle)
        return list(self.finish_order)

    def wait(self, handle: QueryHandle) -> Any:
        """Drive the scheduler (fairly — other queries keep their turns)
        until ``handle`` is terminal; return its result or raise."""
        self._require_driver("wait")
        while not handle.done:
            self._promote_queued()
            nxt = self._pick_next()
            if nxt is None:  # pragma: no cover - defensive
                raise EngineError(
                    f"query {handle.name!r} is {handle.state} but no "
                    "query is runnable"
                )
            self._run_slice(nxt)
        if handle.error is not None:
            raise handle.error
        return handle.result

    def _require_driver(self, op: str) -> None:
        if self._current is not None and (
            self._current._thread is threading.current_thread()
        ):
            raise EngineError(
                f"cannot call {op}() from inside a running query"
            )

    def _promote_queued(self) -> None:
        with self._cond:
            while (
                self._queued
                and len(self._running) < self.config.max_concurrent
            ):
                handle = self._queued.pop(0)
                handle.state = RUNNING
                self._running.append(handle)
                self._ctx.tracer.metrics.inc("queries.admitted")
                self._ctx.tracer.instant(
                    "query.admitted", "query",
                    query_id=handle.query_id, query=handle.name,
                    promoted=True,
                )

    def _pick_next(self) -> Optional[QueryHandle]:
        """The fairness policy: which admitted query runs next."""
        if not self._running:
            return None
        if self.config.fairness == "min-tasks":
            return min(
                self._running,
                key=lambda handle: (handle.tasks_launched, handle.query_id),
            )
        if self.config.fairness == "weighted":
            # Weighted max-min fairness: the smallest launched-tasks /
            # weight ratio runs next, ties broken by the heavier weight
            # (higher tier first), then admission order — deterministic,
            # so concurrent runs stay byte-identical.
            return min(
                self._running,
                key=lambda handle: (
                    handle.tasks_launched / handle.weight,
                    -handle.weight,
                    handle.query_id,
                ),
            )
        # Round-robin in admission order, robust to completions
        # shrinking the list between slices.
        self._rr_cursor %= len(self._running)
        handle = self._running[self._rr_cursor]
        self._rr_cursor += 1
        return handle

    def _run_slice(self, handle: QueryHandle) -> None:
        """Grant the baton to one query until it yields or finishes."""
        tracer = self._ctx.tracer
        with self._cond:
            if handle._thread is None:
                handle._thread = threading.Thread(
                    target=self._thread_main,
                    args=(handle,),
                    name=f"query-{handle.query_id}",
                    daemon=True,
                )
                handle._thread.start()
            # The query's spans must nest under its own stack, not the
            # driver's; swap for the duration of the slice.
            self._driver_stack = tracer.use_stack(handle._trace_stack)
            self._baton = handle
            self._current = handle
            self._cond.notify_all()
            while self._baton is not None:
                if not self._cond.wait(self.config.watchdog_timeout_s):
                    raise EngineError(
                        f"lifecycle watchdog: query {handle.name!r} made no "
                        f"progress in {self.config.watchdog_timeout_s}s "
                        "(cooperative-scheduling deadlock?)"
                    )
            tracer.use_stack(self._driver_stack)
            self._driver_stack = None

    def _await_grant(self, handle: QueryHandle) -> None:
        with self._cond:
            while self._baton is not handle:
                if not self._cond.wait(self.config.watchdog_timeout_s):
                    raise EngineError(
                        f"lifecycle watchdog: query {handle.name!r} waited "
                        f"{self.config.watchdog_timeout_s}s for the baton"
                    )

    def _yield_baton(self, handle: QueryHandle) -> None:
        with self._cond:
            self._baton = None
            self._current = None
            self._cond.notify_all()
            while self._baton is not handle:
                if not self._cond.wait(self.config.watchdog_timeout_s):
                    raise EngineError(
                        f"lifecycle watchdog: query {handle.name!r} waited "
                        f"{self.config.watchdog_timeout_s}s for the baton"
                    )
            self._current = handle

    # ------------------------------------------------------------------
    # The query thread
    # ------------------------------------------------------------------
    def _thread_main(self, handle: QueryHandle) -> None:
        self._await_grant(handle)
        tracer = self._ctx.tracer
        handle._span = tracer.begin_span(
            f"query {handle.name}",
            "query",
            kind="lifecycle",
            query_id=handle.query_id,
        )
        try:
            self._observe(handle)
            handle.token.raise_if_cancelled()
            handle.result = handle.fn()
            handle.state = DONE
        except QueryDeadlineExceeded as error:
            handle.error = error
            handle.state = DEADLINE
        except QueryCancelledError as error:
            handle.error = error
            handle.state = CANCELLED
        except BaseException as error:  # noqa: BLE001 - reported via handle
            handle.error = error
            handle.state = FAILED
        finally:
            # Still holding the baton: safe to touch shared engine state.
            self._cleanup(handle)
            with self._cond:
                if handle in self._running:
                    self._running.remove(handle)
                self._record_completion(handle)
                self._baton = None
                self._current = None
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Scheduler-facing hooks (called from the running query's thread)
    # ------------------------------------------------------------------
    def in_query(self) -> bool:
        """True when the calling thread is the currently granted query."""
        current = self._current
        return (
            current is not None
            and current._thread is threading.current_thread()
        )

    def current_token(self) -> Optional[CancelToken]:
        return self._current.token if self.in_query() else None

    def current_tenant(self) -> Optional[str]:
        """Tenant of the running query (worker-failure attribution in
        the scheduler is scoped by this), or None outside a query."""
        return self._current.tenant if self.in_query() else None

    def note_cache_lookups(self, records: list) -> None:
        """Attach the SQL cache stack's lookup records to the running
        query; they land in its lifecycle event-log record."""
        if self.in_query():
            self._current.cache_lookups.extend(records)

    def checkpoint(self) -> None:
        """Cooperative scheduling point, called by the scheduler before
        every task attempt: observe cancellation/deadline, then hand the
        baton back so another query's task can interleave."""
        if not self.in_query():
            return
        handle = self._current
        self._observe(handle)
        handle.token.raise_if_cancelled()
        handle.tasks_launched += 1
        if len(self._running) > 1 or self._queued:
            self._yield_baton(handle)
            # A cancel or deadline may have been issued while another
            # query held the baton — observe before launching the task
            # (this is what makes cancellation race retries/speculation
            # safely: the next attempt never starts).
            self._observe(handle)
            handle.token.raise_if_cancelled()

    def _observe(self, handle: QueryHandle) -> None:
        armed = handle._cancel_after_tasks
        if armed is not None and handle.tasks_launched >= armed:
            handle.token.cancel("cancelled")
        if (
            handle.deadline_s is not None
            and handle.charged_seconds > handle.deadline_s
        ):
            handle.token.cancel("deadline")

    def on_task_seconds(self, seconds: float) -> None:
        """Charge one kept task attempt's simulated duration to the
        running query (deadline accounting and retry-after hints)."""
        if self.in_query():
            self._current.charged_seconds += seconds

    def note_shuffle(self, shuffle_id: int) -> None:
        """Record that the running query registered a shuffle (its map
        outputs are released if the query is cancelled or fails)."""
        if self.in_query():
            self._current.shuffle_ids.add(shuffle_id)

    # ------------------------------------------------------------------
    # Cancellation and cleanup
    # ------------------------------------------------------------------
    def _cancel(self, handle: QueryHandle, reason: str) -> None:
        if handle.done:
            return
        with self._cond:
            if handle in self._queued:
                # Never started: terminal immediately, no cleanup needed.
                self._queued.remove(handle)
                handle.token.cancel(reason)
                handle.state = CANCELLED
                handle.error = QueryCancelledError(handle.name, reason=reason)
                self._record_completion(handle)
                return
        handle.token.cancel(reason)

    def shed_queued(self, handle: QueryHandle, reason: str) -> bool:
        """Load-shed a still-queued query (the serving layer's overload
        valve: a deadline that became unmeetable while waiting, or a
        brownout dropping low-priority tiers).

        Only queued queries can be shed — a query that launched tasks is
        cancelled, never shed — so shedding is always cheap: no cleanup,
        no wasted work.  Returns False when ``handle`` was not queued
        (already running or terminal)."""
        with self._cond:
            if handle not in self._queued:
                return False
            self._queued.remove(handle)
        handle.token.cancel("shed")
        handle.state = SHED
        handle.shed_reason = reason
        handle.error = QueryShedError(handle.name, shed_reason=reason)
        self._record_completion(handle)
        return True

    def _cleanup(self, handle: QueryHandle) -> None:
        """Close the query's spans and, on abnormal exit, release its
        shuffle outputs — no leaked pinned blocks, no open spans."""
        tracer = self._ctx.tracer
        status = {
            DONE: "ok",
            CANCELLED: "cancelled",
            DEADLINE: "deadline",
            FAILED: "error",
        }[handle.state]
        if handle._span is not None:
            tracer.end_span(handle._span, status=status)
            handle._span = None
        # end_span pops through abandoned children, but be exhaustive:
        # anything still on this query's private stack is force-closed.
        # drain_stack works even when tracing was disabled mid-query
        # (end_span no-ops while disabled, so a loop built on it would
        # spin forever and leak the stack entries) and is idempotent.
        tracer.drain_stack(handle._trace_stack, status=status)
        if handle.state in (CANCELLED, DEADLINE, FAILED):
            # Post-mortem: dump the flight recorder's recent events (it
            # is live even with tracing off) keyed to this query.
            tracer.flight_dump(
                status, query=f"lifecycle-{handle.query_id}"
            )
            released = self._ctx.scheduler.release_query_shuffles(
                handle.shuffle_ids
            )
            if released:
                tracer.instant(
                    "query.shuffles_released", "query",
                    query_id=handle.query_id,
                    blocks=released,
                )

    def _record_completion(self, handle: QueryHandle) -> None:
        metrics = self._ctx.tracer.metrics
        self.finish_order.append(handle)
        self._completions += 1
        # Every terminal event frees a slot or queue position: sample
        # the simulated clock for the drain rate behind retry hints.
        self._drain_times.append(self._ctx.tracer.clock.now())
        if len(self._drain_times) > 4 * self.config.drain_rate_window:
            del self._drain_times[: -self.config.drain_rate_window]
        scoped = (handle.tenant, handle.key)
        log = self._ctx.event_log
        if log is not None:
            status = {
                DONE: "ok",
                CANCELLED: "cancelled",
                DEADLINE: "deadline",
                SHED: "shed",
            }.get(handle.state, "error")
            log.write_query(
                name=handle.name,
                kind="lifecycle",
                status=status,
                error=(
                    f"{type(handle.error).__name__}: {handle.error}"
                    if handle.error is not None
                    else None
                ),
                sim_seconds=handle.charged_seconds,
                started=handle.submitted_at,
                ended=self._ctx.tracer.clock.now(),
                query_id=f"lifecycle-{handle.query_id}",
                tenant=handle.tenant,
                priority=handle.priority,
                shed_reason=handle.shed_reason,
                cache_lookups=handle.cache_lookups or None,
            )
            metrics.observe(
                "query.sim_seconds", handle.charged_seconds
            )
        if handle.state == DONE:
            self.completed += 1
            metrics.inc("queries.completed")
            self._recent_seconds.append(handle.charged_seconds)
            self._failures.pop(scoped, None)
            self._circuit_until.pop(scoped, None)
        elif handle.state == DEADLINE:
            self.deadline_expired += 1
            metrics.inc("queries.deadline_expired")
            self._ctx.tracer.instant(
                "query.deadline", "query",
                query_id=handle.query_id, query=handle.name,
                deadline_s=handle.deadline_s,
                elapsed_s=handle.charged_seconds,
            )
        elif handle.state == CANCELLED:
            self.cancelled += 1
            metrics.inc("queries.cancelled")
            self._ctx.tracer.instant(
                "query.cancelled", "query",
                query_id=handle.query_id, query=handle.name,
                tasks_launched=handle.tasks_launched,
            )
        elif handle.state == SHED:
            self.shed += 1
            metrics.inc("queries.shed")
            self._ctx.tracer.instant(
                "query.shed", "query",
                query_id=handle.query_id, query=handle.name,
                tenant=handle.tenant, priority=handle.priority,
                shed_reason=handle.shed_reason,
            )
        elif handle.state == FAILED:
            self.failed += 1
            metrics.inc("queries.failed")
            if isinstance(handle.error, EngineError) and not isinstance(
                handle.error, QueryLifecycleError
            ):
                count = self._failures.get(scoped, 0) + 1
                self._failures[scoped] = count
                if count >= self.config.circuit_failure_threshold:
                    self.circuit_opened += 1
                    metrics.inc("queries.circuit_opened")
                    self._circuit_until[scoped] = (
                        self._completions
                        + self.config.circuit_reset_completions
                    )
                    self._ctx.tracer.instant(
                        "query.circuit_open", "query",
                        key=handle.key, tenant=handle.tenant,
                        failures=count,
                        reset_after_completions=(
                            self.config.circuit_reset_completions
                        ),
                    )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        text = (
            f"lifecycle: {self.submitted} submitted, "
            f"{self.completed} completed, {self.cancelled} cancelled, "
            f"{self.deadline_expired} deadline-expired, "
            f"{self.failed} failed, {self.rejected} rejected, "
            f"{self.circuit_opened} circuit-opened"
        )
        if self.shed:
            text += f", {self.shed} shed"
        return text

    def admission_ledger(self) -> dict:
        """Live admission accounting for ledger-zero assertions: every
        submission must be running, queued, terminal, or rejected —
        slots never leak, on any terminal path."""
        terminal = (
            self.completed
            + self.cancelled
            + self.deadline_expired
            + self.failed
            + self.shed
        )
        return {
            "running": len(self._running),
            "queued": len(self._queued),
            "terminal": terminal,
            "rejected": self.rejected,
            "submitted": self.submitted,
            "leaked": self.submitted
            - terminal
            - self.rejected
            - len(self._running)
            - len(self._queued),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryLifecycleManager(running={len(self._running)}, "
            f"queued={len(self._queued)}, finished={len(self.finish_order)})"
        )

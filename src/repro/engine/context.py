"""EngineContext: the driver-side entry point to the execution engine."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.cluster import VirtualCluster
from repro.engine.broadcast import Broadcast
from repro.engine.dependencies import ShuffleDependency
from repro.engine.memory import MemoryAccountant
from repro.engine.metrics import QueryProfile
from repro.engine.rdd import RDD, DataRDD, ShuffledRDD
from repro.engine.scheduler import DAGScheduler
from repro.engine.shuffle import MapOutputStats, ShuffleManager
from repro.engine.task import CacheTracker
from repro.obs import MetricsRegistry, QueryTrace, Tracer


class EngineContext:
    """Driver context: owns the cluster, scheduler, shuffle and cache state.

    Analogous to SparkContext.  Create one per application::

        ctx = EngineContext(num_workers=4)
        counts = (
            ctx.parallelize(visits)
            .map(lambda v: (v.url, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
    """

    def __init__(
        self,
        num_workers: int = 4,
        cores_per_worker: int = 2,
        default_parallelism: Optional[int] = None,
        memory_per_worker_bytes: Optional[int] = None,
        fault_injector=None,
        scheduler_config=None,
    ):
        #: One tracer per context, disabled until enable_tracing(); its
        #: metrics registry is always live.  Every subsystem shares it.
        self.tracer = Tracer()
        #: Optional repro.faults.FaultInjector; None means fault-free
        #: execution (and speculation stays off in its auto mode).
        self.fault_injector = fault_injector
        #: Unified per-worker memory ledger (storage + execution pools);
        #: block stores, shuffle buffers, broadcasts, and operators all
        #: reserve and release through it.
        self.memory = MemoryAccountant(
            tracer=self.tracer, capacity_bytes=memory_per_worker_bytes
        )
        self.cluster = VirtualCluster(
            num_workers,
            cores_per_worker,
            memory_per_worker_bytes=memory_per_worker_bytes,
            tracer=self.tracer,
            accountant=self.memory,
        )
        self.shuffle_manager = ShuffleManager(
            self.cluster, tracer=self.tracer, fault_injector=fault_injector
        )
        self.cache_tracker = CacheTracker(self.cluster)
        self.scheduler = DAGScheduler(self, config=scheduler_config)
        #: Optional QueryLifecycleManager (admission control, deadlines,
        #: cancellation, fairness); None until enable_lifecycle().
        self.lifecycle = None
        #: Optional EventLogWriter; None until enable_event_log().
        self.event_log = None
        #: Optional SqlServer (multi-tenant serving); None until a
        #: server is started over this context (repro.serving).
        self.serving = None
        #: Optional SqlCache (plan/result/fragment caching); None until
        #: SqlSession.enable_sql_cache().  The physical layer reads this
        #: for scan-fragment reuse and shared scans.
        self.sql_cache = None
        if (
            fault_injector is not None
            and fault_injector.kill_worker_id is not None
        ):
            self.cluster.inject_failure(
                fault_injector.kill_worker_id,
                fault_injector.kill_after_tasks,
            )
        self.default_parallelism = (
            default_parallelism
            if default_parallelism is not None
            else num_workers * cores_per_worker
        )
        self._next_rdd_id = 0
        self._next_broadcast_id = 0
        #: Broadcasts whose execution-pool charge is still live (see
        #: release_broadcast_accounting).
        self._live_broadcasts: list[Broadcast] = []

    # ------------------------------------------------------------------
    # RDD creation
    # ------------------------------------------------------------------
    def new_rdd_id(self) -> int:
        rdd_id = self._next_rdd_id
        self._next_rdd_id += 1
        return rdd_id

    def parallelize(
        self, data: Iterable[Any], num_partitions: Optional[int] = None
    ) -> RDD:
        """Distribute a local collection into an RDD."""
        items = list(data)
        parts = num_partitions or self.default_parallelism
        parts = max(1, min(parts, max(len(items), 1)))
        slices: list[list] = [[] for _ in range(parts)]
        # Contiguous slicing preserves input order across collect().
        base, extra = divmod(len(items), parts)
        start = 0
        for index in range(parts):
            end = start + base + (1 if index < extra else 0)
            slices[index] = items[start:end]
            start = end
        return DataRDD(self, slices)

    def empty_rdd(self) -> RDD:
        return DataRDD(self, [[]])

    def union(self, rdds: list[RDD]) -> RDD:
        from repro.engine.rdd import UnionRDD

        return UnionRDD(self, rdds)

    # ------------------------------------------------------------------
    # Shared variables
    # ------------------------------------------------------------------
    def broadcast(self, value: Any) -> Broadcast:
        broadcast = Broadcast(
            self._next_broadcast_id, value, accountant=self.memory
        )
        self._next_broadcast_id += 1
        self._live_broadcasts.append(broadcast)
        return broadcast

    def release_broadcast_accounting(self) -> int:
        """Drop the execution-pool charge of every live broadcast (the
        SQL session calls this at query end: broadcast build tables are
        query-scoped, and the ledger must balance to zero afterwards).
        The values themselves stay usable; only the accounting ends.
        Returns the bytes released."""
        released = 0
        for broadcast in self._live_broadcasts:
            released += broadcast.release_accounting()
        self._live_broadcasts.clear()
        return released

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def run_job(
        self,
        rdd: RDD,
        func: Callable[[list], Any],
        partitions: Optional[list[int]] = None,
    ) -> list:
        return self.scheduler.run_job(rdd, func, partitions)

    def materialize_shuffle(self, shuffled: ShuffledRDD) -> MapOutputStats:
        """PDE: run only the map side of ``shuffled``'s shuffle and return
        the collected statistics.  The reduce side can then be planned (or
        abandoned for a broadcast join) based on what was observed; if the
        shuffled RDD is later executed, its map stage is skipped because
        the outputs already exist."""
        return self.scheduler.materialize_shuffle(shuffled.shuffle_dep)

    def materialize_dependency(self, dep: ShuffleDependency) -> MapOutputStats:
        return self.scheduler.materialize_shuffle(dep)

    @property
    def last_profile(self) -> Optional[QueryProfile]:
        """Metrics of the most recently executed job."""
        return self.scheduler.last_profile

    def reset_profiles(self) -> None:
        """Clear the job-profile history (call before a measured query)."""
        self.scheduler.reset_history()

    @property
    def profiles(self) -> list[QueryProfile]:
        """Profiles of every job since the last reset (a single SQL query
        may span several: PDE pre-shuffles, sampling, the final collect)."""
        return list(self.scheduler.history)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        """The always-on metrics registry (counters/gauges/histograms)."""
        return self.tracer.metrics

    @property
    def trace(self) -> QueryTrace:
        """Spans and events recorded since tracing was last enabled."""
        return self.tracer.trace

    def enable_tracing(self, reset: bool = True) -> Tracer:
        """Turn span/event collection on; returns the tracer."""
        return self.tracer.enable(reset=reset)

    def disable_tracing(self) -> None:
        self.tracer.disable()

    def enable_event_log(self, path, **header_extra):
        """Open a persistent event log at ``path`` (gzip when the name
        ends in ``.gz``); every query executed through the SQL session
        or the lifecycle manager streams its records there, and flight-
        recorder dumps go into the same file.  Returns the writer."""
        from repro.obs.events import EventLogWriter

        if self.event_log is not None:
            self.close_event_log()
        self.event_log = EventLogWriter(
            path,
            workers=self.cluster.num_workers,
            cores_per_worker=(
                self.cluster.workers[0].cores
                if self.cluster.workers
                else 1
            ),
            metrics=self.tracer.metrics,
            **header_extra,
        )
        self.tracer.flight.sink = self.event_log.write
        return self.event_log

    def close_event_log(self) -> None:
        """Flush and detach the event log (idempotent)."""
        if self.event_log is not None:
            self.event_log.close()
            self.event_log = None
            self.tracer.flight.sink = None

    # ------------------------------------------------------------------
    # Query lifecycle (admission, deadlines, cancellation, fairness)
    # ------------------------------------------------------------------
    def enable_lifecycle(self, config=None):
        """Attach a :class:`~repro.engine.lifecycle.QueryLifecycleManager`
        so queries can be submitted concurrently with admission control,
        deadlines, and cooperative cancellation; returns the manager.

        Idempotent when called without a config; a new config replaces
        the manager (only safe while no queries are in flight).
        """
        from repro.engine.lifecycle import QueryLifecycleManager

        if self.lifecycle is None or config is not None:
            self.lifecycle = QueryLifecycleManager(self, config=config)
        return self.lifecycle

    # ------------------------------------------------------------------
    # Cluster control (failure experiments, elasticity)
    # ------------------------------------------------------------------
    def kill_worker(self, worker_id: int) -> None:
        self.cluster.kill_worker(worker_id)

    def restart_worker(self, worker_id: int) -> None:
        self.cluster.restart_worker(worker_id)

    def inject_failure(self, worker_id: int, after_tasks: int):
        return self.cluster.inject_failure(worker_id, after_tasks)

    def add_worker(self, cores: int = 2):
        return self.cluster.add_worker(cores)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EngineContext(workers={self.cluster.num_workers}, "
            f"default_parallelism={self.default_parallelism})"
        )

"""Resilient Distributed Datasets: immutable, partitioned, lineage-tracked.

An RDD is defined by its partitions, its dependencies on parent RDDs, and a
deterministic ``compute`` function per partition (Section 2.2).  All
transformations are lazy; actions call into the DAG scheduler.  Pair
operations (reduce_by_key, join, cogroup, ...) follow PySpark's convention
of living directly on RDD and requiring (key, value) elements at run time.

Determinism is load-bearing: recovery re-runs ``compute`` and must get the
same records, so samplers are seeded per partition and partitioners use a
stable hash.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.engine.dependencies import (
    Aggregator,
    Dependency,
    ManyToOneDependency,
    OneToOneDependency,
    RangeDependency,
    ShuffleDependency,
)
from repro.engine.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import EngineContext
    from repro.engine.task import TaskContext


class RDD:
    """Base class for all RDDs.

    Subclasses implement :meth:`compute`; everything else (the operator
    algebra, caching, actions) is inherited.
    """

    def __init__(
        self,
        ctx: "EngineContext",
        num_partitions: int,
        dependencies: list[Dependency],
        partitioner: Optional[Partitioner] = None,
        name: str = "",
    ):
        if num_partitions <= 0:
            raise ValueError("an RDD needs at least one partition")
        self.ctx = ctx
        self.id = ctx.new_rdd_id()
        self.num_partitions = num_partitions
        self.dependencies = dependencies
        self.partitioner = partitioner
        self.name = name or type(self).__name__
        self._cached = False

    # ------------------------------------------------------------------
    # Core contract
    # ------------------------------------------------------------------
    def compute(self, split: int, task_ctx: "TaskContext") -> list:
        """Materialize partition ``split``.  Must be deterministic."""
        raise NotImplementedError

    def iterator(self, split: int, task_ctx: "TaskContext") -> list:
        """Read a partition through the cache if this RDD is persisted."""
        # Cooperative cancellation point: every RDD in a narrow chain
        # passes through here, so an in-flight attempt of a cancelled
        # query stops at the next operator boundary.
        task_ctx.check_cancelled()
        if self._cached:
            cached = task_ctx.read_cached(self.id, split)
            if cached is not None:
                return cached
            data = self.compute(split, task_ctx)
            task_ctx.write_cached(self.id, split, data)
            return data
        return self.compute(split, task_ctx)

    def preferred_workers(self, split: int) -> list[int]:
        """Workers that already hold this partition's data (locality)."""
        if self._cached:
            location = self.ctx.cache_tracker.location(self.id, split)
            if location is not None:
                return [location]
        for dep in self.dependencies:
            if isinstance(dep, OneToOneDependency):
                return dep.rdd.preferred_workers(split)
        return []

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def cache(self) -> "RDD":
        """Keep computed partitions in worker memory (one copy, no
        replication; lineage recovers lost blocks)."""
        self._cached = True
        return self

    persist = cache

    def unpersist(self) -> "RDD":
        self._cached = False
        self.ctx.cache_tracker.unpersist(self.id)
        return self

    @property
    def is_cached(self) -> bool:
        return self._cached

    # ------------------------------------------------------------------
    # Basic transformations
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return MapPartitionsRDD(
            self,
            lambda _, part: [fn(item) for item in part],
            name="map",
        )

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        return MapPartitionsRDD(
            self,
            lambda _, part: [item for item in part if predicate(item)],
            preserves_partitioning=True,
            name="filter",
        )

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return MapPartitionsRDD(
            self,
            lambda _, part: [out for item in part for out in fn(item)],
            name="flat_map",
        )

    def map_partitions(
        self, fn: Callable[[Iterable[Any]], Iterable[Any]],
        preserves_partitioning: bool = False,
    ) -> "RDD":
        return MapPartitionsRDD(
            self,
            lambda _, part: list(fn(part)),
            preserves_partitioning=preserves_partitioning,
            name="map_partitions",
        )

    def map_partitions_with_index(
        self, fn: Callable[[int, Iterable[Any]], Iterable[Any]],
        preserves_partitioning: bool = False,
    ) -> "RDD":
        return MapPartitionsRDD(
            self,
            lambda split, part: list(fn(split, part)),
            preserves_partitioning=preserves_partitioning,
            name="map_partitions_with_index",
        )

    def glom(self) -> "RDD":
        """Each partition becomes a single list element."""
        return MapPartitionsRDD(self, lambda _, part: [list(part)], name="glom")

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self.ctx, [self, other])

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        paired = self.map(lambda item: (item, None))
        reduced = paired.reduce_by_key(lambda a, _: a, num_partitions)
        return reduced.map(lambda pair: pair[0])

    def sample(self, fraction: float, seed: int = 17) -> "RDD":
        """Bernoulli sample; seeded per partition for deterministic replay."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

        def sample_partition(split: int, part: Iterable[Any]) -> list:
            rng = random.Random(seed * 1_000_003 + split)
            return [item for item in part if rng.random() < fraction]

        return MapPartitionsRDD(
            self, sample_partition, preserves_partitioning=True, name="sample"
        )

    def key_by(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda item: (fn(item), item))

    def zip_with_index(self) -> "RDD":
        """Pairs each element with its global index.  Eagerly runs a count
        job to learn partition offsets, like Spark."""
        counts = self.ctx.run_job(self, lambda part: len(part))
        offsets = [0] * self.num_partitions
        running = 0
        for split, count in enumerate(counts):
            offsets[split] = running
            running += count

        def with_index(split: int, part: Iterable[Any]) -> list:
            base = offsets[split]
            return [(item, base + i) for i, item in enumerate(part)]

        return MapPartitionsRDD(
            self, with_index, preserves_partitioning=False, name="zip_with_index"
        )

    def coalesce(self, num_partitions: int) -> "RDD":
        """Reduce partition count without a shuffle (narrow many-to-one)."""
        if num_partitions >= self.num_partitions:
            return self
        return CoalescedRDD(self, num_partitions)

    def coalesce_grouped(self, groups: list[list[int]]) -> "RDD":
        """Coalesce with an explicit parent-partition grouping.

        PDE's skew-aware bin-packing (Section 3.1.2) computes the groups
        from observed partition sizes and applies them here.
        """
        return CoalescedRDD(self, len(groups), groups=groups)

    def repartition(self, num_partitions: int) -> "RDD":
        """Redistribute evenly via a shuffle on a synthetic key."""
        paired = self.map_partitions_with_index(
            lambda split, part: [
                ((split * 7919 + i), item) for i, item in enumerate(part)
            ]
        )
        shuffled = paired.partition_by(HashPartitioner(num_partitions))
        return shuffled.map(lambda pair: pair[1])

    # ------------------------------------------------------------------
    # Pair transformations
    # ------------------------------------------------------------------
    def map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        return MapPartitionsRDD(
            self,
            lambda _, part: [(key, fn(value)) for key, value in part],
            preserves_partitioning=True,
            name="map_values",
        )

    def flat_map_values(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return MapPartitionsRDD(
            self,
            lambda _, part: [
                (key, out) for key, value in part for out in fn(value)
            ],
            preserves_partitioning=True,
            name="flat_map_values",
        )

    def keys(self) -> "RDD":
        return self.map(lambda pair: pair[0])

    def values(self) -> "RDD":
        return self.map(lambda pair: pair[1])

    def partition_by(
        self,
        partitioner: Partitioner,
        stats_collectors: tuple = (),
    ) -> "RDD":
        """Shuffle (key, value) pairs by key with the given partitioner."""
        if self.partitioner == partitioner:
            return self
        return ShuffledRDD(
            self, partitioner, stats_collectors=stats_collectors
        )

    def combine_by_key(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
        map_side_combine: bool = True,
        stats_collectors: tuple = (),
    ) -> "RDD":
        aggregator = Aggregator(create_combiner, merge_value, merge_combiners)
        partitioner = self._target_partitioner(num_partitions)
        if self.partitioner == partitioner:
            # Already partitioned by key: combine locally, no shuffle.
            def combine_local(_: int, part: Iterable[Any]) -> list:
                combined: dict = {}
                for key, value in part:
                    if key in combined:
                        combined[key] = merge_value(combined[key], value)
                    else:
                        combined[key] = create_combiner(value)
                return list(combined.items())

            return MapPartitionsRDD(
                self, combine_local, preserves_partitioning=True,
                name="combine_local",
            )
        return ShuffledRDD(
            self,
            partitioner,
            aggregator=aggregator,
            map_side_combine=map_side_combine,
            stats_collectors=stats_collectors,
        )

    def reduce_by_key(
        self,
        fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
        stats_collectors: tuple = (),
    ) -> "RDD":
        return self.combine_by_key(
            lambda value: value, fn, fn, num_partitions,
            stats_collectors=stats_collectors,
        )

    def fold_by_key(
        self,
        zero: Any,
        fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        return self.combine_by_key(
            lambda value: fn(zero, value), fn, fn, num_partitions
        )

    def aggregate_by_key(
        self,
        zero: Any,
        seq_fn: Callable[[Any, Any], Any],
        comb_fn: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        return self.combine_by_key(
            lambda value: seq_fn(zero, value), seq_fn, comb_fn, num_partitions
        )

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        return self.combine_by_key(
            lambda value: [value],
            lambda acc, value: acc + [value],
            lambda left, right: left + right,
            num_partitions,
            map_side_combine=False,
        )

    def group_by(
        self, fn: Callable[[Any], Any], num_partitions: Optional[int] = None
    ) -> "RDD":
        return self.key_by(fn).group_by_key(num_partitions)

    def cogroup(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        partitioner = self._target_partitioner(num_partitions, other)
        return CoGroupedRDD(self.ctx, [self, other], partitioner)

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Inner equi-join of two pair RDDs.

        When both sides are already partitioned the same way (Shark's
        co-partitioned tables, Section 3.4), cogroup uses narrow
        dependencies and no shuffle occurs.
        """
        def emit(pair):
            key, (left_values, right_values) = pair
            return [
                (key, (lv, rv)) for lv in left_values for rv in right_values
            ]

        return self.cogroup(other, num_partitions).flat_map(emit)

    def left_outer_join(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        def emit(pair):
            key, (left_values, right_values) = pair
            if not right_values:
                return [(key, (lv, None)) for lv in left_values]
            return [
                (key, (lv, rv)) for lv in left_values for rv in right_values
            ]

        return self.cogroup(other, num_partitions).flat_map(emit)

    def right_outer_join(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        def emit(pair):
            key, (left_values, right_values) = pair
            if not left_values:
                return [(key, (None, rv)) for rv in right_values]
            return [
                (key, (lv, rv)) for lv in left_values for rv in right_values
            ]

        return self.cogroup(other, num_partitions).flat_map(emit)

    def full_outer_join(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        def emit(pair):
            key, (left_values, right_values) = pair
            if not left_values:
                return [(key, (None, rv)) for rv in right_values]
            if not right_values:
                return [(key, (lv, None)) for lv in left_values]
            return [
                (key, (lv, rv)) for lv in left_values for rv in right_values
            ]

        return self.cogroup(other, num_partitions).flat_map(emit)

    # ------------------------------------------------------------------
    # Sorting
    # ------------------------------------------------------------------
    def sort_by(
        self,
        key_fn: Callable[[Any], Any],
        ascending: bool = True,
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """Total sort: sample for range bounds, shuffle, sort partitions."""
        target = num_partitions or self.ctx.default_parallelism
        # Range bounds come from a sample (as in Spark's RangePartitioner);
        # small inputs fall back to exact keys so bounds stay meaningful.
        keys_rdd = self.map(key_fn)
        keys = keys_rdd.sample(0.1, seed=29).collect()
        if len(keys) < max(20 * target, 100):
            keys = keys_rdd.collect()
        if not keys:
            return self
        if target > 1:
            sorted_keys = sorted(keys)
            step = max(1, len(sorted_keys) // target)
            bounds = sorted_keys[step::step][: target - 1]
        else:
            bounds = []
        partitioner = RangePartitioner(bounds, ascending=ascending)
        paired = self.map(lambda item: (key_fn(item), item))
        shuffled = ShuffledRDD(paired, partitioner)

        def sort_partition(_: int, part: Iterable[Any]) -> list:
            # External sort: the buffer is charged to the task's
            # execution pool and sheds sorted runs under memory
            # pressure; finish() k-way-merges runs + tail into exactly
            # the order an in-memory stable sort would produce.
            from repro.engine.spill import ExternalSorter

            sorter = ExternalSorter(
                key=lambda pair: pair[0], reverse=not ascending
            )
            for pair in part:
                sorter.add(pair)
            return [value for __, value in sorter.finish()]

        return MapPartitionsRDD(shuffled, sort_partition, name="sort")

    def sort_by_key(
        self, ascending: bool = True, num_partitions: Optional[int] = None
    ) -> "RDD":
        return self.sort_by(lambda pair: pair[0], ascending, num_partitions)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def collect(self) -> list:
        parts = self.ctx.run_job(self, list)
        return [item for part in parts for item in part]

    def count(self) -> int:
        return sum(self.ctx.run_job(self, len))

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        def reduce_partition(part: list) -> list:
            if not part:
                return []
            acc = part[0]
            for item in part[1:]:
                acc = fn(acc, item)
            return [acc]

        partials = [
            item
            for part in self.ctx.run_job(self, reduce_partition)
            for item in part
        ]
        if not partials:
            raise ValueError("reduce on an empty RDD")
        acc = partials[0]
        for item in partials[1:]:
            acc = fn(acc, item)
        return acc

    def fold(self, zero: Any, fn: Callable[[Any, Any], Any]) -> Any:
        def fold_partition(part: list) -> Any:
            acc = zero
            for item in part:
                acc = fn(acc, item)
            return acc

        acc = zero
        for partial in self.ctx.run_job(self, fold_partition):
            acc = fn(acc, partial)
        return acc

    def aggregate(
        self,
        zero: Any,
        seq_fn: Callable[[Any, Any], Any],
        comb_fn: Callable[[Any, Any], Any],
    ) -> Any:
        def agg_partition(part: list) -> Any:
            acc = zero
            for item in part:
                acc = seq_fn(acc, item)
            return acc

        acc = zero
        for partial in self.ctx.run_job(self, agg_partition):
            acc = comb_fn(acc, partial)
        return acc

    def take(self, n: int) -> list:
        """First n elements, scanning partitions incrementally."""
        if n <= 0:
            return []
        taken: list = []
        for split in range(self.num_partitions):
            parts = self.ctx.run_job(self, list, partitions=[split])
            taken.extend(parts[0])
            if len(taken) >= n:
                return taken[:n]
        return taken

    def first(self) -> Any:
        items = self.take(1)
        if not items:
            raise ValueError("first on an empty RDD")
        return items[0]

    def top(self, n: int, key: Callable[[Any], Any] = None) -> list:
        def top_partition(part: list) -> list:
            return sorted(part, key=key, reverse=True)[:n]

        partials = [
            item for part in self.ctx.run_job(self, top_partition) for item in part
        ]
        return sorted(partials, key=key, reverse=True)[:n]

    def sum(self) -> Any:
        return self.fold(0, lambda a, b: a + b)

    def mean(self) -> float:
        total, count = self.aggregate(
            (0.0, 0),
            lambda acc, item: (acc[0] + item, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        if count == 0:
            raise ValueError("mean on an empty RDD")
        return total / count

    def min(self) -> Any:
        return self.reduce(lambda a, b: a if a <= b else b)

    def max(self) -> Any:
        return self.reduce(lambda a, b: a if a >= b else b)

    def count_by_key(self) -> dict:
        counts: dict = {}
        for key, __ in self.collect():
            counts[key] = counts.get(key, 0) + 1
        return counts

    def count_by_value(self) -> dict:
        counts: dict = {}
        for item in self.collect():
            counts[item] = counts.get(item, 0) + 1
        return counts

    def collect_as_map(self) -> dict:
        return dict(self.collect())

    def lookup(self, key: Any) -> list:
        """Values for one key of a pair RDD — a fine-grained random read.

        Section 7.1: "while RDDs only support coarse-grained operations
        for their writes, read operations on them can be fine-grained,
        accessing just one record.  This would allow RDDs to be used as
        indices."  With a known partitioner only the partition holding
        ``key`` is read; otherwise every partition is scanned.
        """
        if self.partitioner is not None:
            split = self.partitioner.partition(key)
            parts = self.ctx.run_job(
                self,
                lambda part: [v for k, v in part if k == key],
                partitions=[split],
            )
            return parts[0]
        return [v for k, v in self.collect() if k == key]

    def foreach_partition(self, fn: Callable[[list], None]) -> None:
        def run(part: list) -> None:
            fn(part)

        self.ctx.run_job(self, run)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _target_partitioner(
        self, num_partitions: Optional[int], other: Optional["RDD"] = None
    ) -> Partitioner:
        """Pick the partitioner for a shuffle: reuse an existing one when a
        parent already has a compatible partitioning, else hash."""
        if num_partitions is not None:
            return HashPartitioner(num_partitions)
        for candidate in (self, other):
            if candidate is not None and candidate.partitioner is not None:
                return candidate.partitioner
        return HashPartitioner(self.ctx.default_parallelism)

    def set_name(self, name: str) -> "RDD":
        self.name = name
        return self

    def __repr__(self) -> str:
        return f"{self.name}[{self.id}] ({self.num_partitions} partitions)"


class DataRDD(RDD):
    """Source RDD over pre-split in-driver data (``ctx.parallelize``)."""

    def __init__(self, ctx: "EngineContext", slices: list[list]):
        super().__init__(ctx, max(len(slices), 1), [], name="parallelize")
        self._slices = slices if slices else [[]]

    def compute(self, split: int, task_ctx: "TaskContext") -> list:
        data = list(self._slices[split])
        task_ctx.metrics.records_in += len(data)
        return data


class MapPartitionsRDD(RDD):
    """Applies ``fn(split, partition) -> list`` over one parent partition."""

    def __init__(
        self,
        parent: RDD,
        fn: Callable[[int, list], list],
        preserves_partitioning: bool = False,
        name: str = "map_partitions",
    ):
        super().__init__(
            parent.ctx,
            parent.num_partitions,
            [OneToOneDependency(parent)],
            partitioner=parent.partitioner if preserves_partitioning else None,
            name=name,
        )
        self._parent = parent
        self._fn = fn

    def compute(self, split: int, task_ctx: "TaskContext") -> list:
        return self._fn(split, self._parent.iterator(split, task_ctx))


class UnionRDD(RDD):
    """Concatenation of several RDDs; partitions are passed through."""

    def __init__(self, ctx: "EngineContext", rdds: list[RDD]):
        if not rdds:
            raise ValueError("union of zero RDDs")
        deps: list[Dependency] = []
        offset = 0
        for rdd in rdds:
            deps.append(RangeDependency(rdd, 0, offset, rdd.num_partitions))
            offset += rdd.num_partitions
        super().__init__(ctx, offset, deps, name="union")
        self._rdds = rdds

    def compute(self, split: int, task_ctx: "TaskContext") -> list:
        offset = 0
        for rdd in self._rdds:
            if split < offset + rdd.num_partitions:
                return rdd.iterator(split - offset, task_ctx)
            offset += rdd.num_partitions
        raise IndexError(f"partition {split} out of range for union")


class CoalescedRDD(RDD):
    """Narrow many-to-one repartitioning (PDE's partition coalescing)."""

    def __init__(self, parent: RDD, num_partitions: int,
                 groups: Optional[list[list[int]]] = None):
        if groups is None:
            # Contiguous round-robin grouping.
            groups = [[] for _ in range(num_partitions)]
            for parent_split in range(parent.num_partitions):
                groups[parent_split % num_partitions].append(parent_split)
        if len(groups) != num_partitions:
            raise ValueError("groups must match num_partitions")
        super().__init__(
            parent.ctx,
            num_partitions,
            [ManyToOneDependency(parent, groups)],
            name="coalesce",
        )
        self._parent = parent
        self._groups = groups

    def compute(self, split: int, task_ctx: "TaskContext") -> list:
        merged: list = []
        for parent_split in self._groups[split]:
            merged.extend(self._parent.iterator(parent_split, task_ctx))
        return merged


class PrunedRDD(RDD):
    """Exposes only a subset of a parent's partitions.

    This is how map pruning (Section 3.5) avoids launching tasks: the scan
    RDD is narrowed to the partitions whose statistics may satisfy the
    query's predicates, and the pruned partitions are simply never
    computed.
    """

    def __init__(self, parent: RDD, kept_partitions: list[int]):
        for partition in kept_partitions:
            if not 0 <= partition < parent.num_partitions:
                raise IndexError(
                    f"partition {partition} out of range for {parent!r}"
                )
        groups = [[partition] for partition in kept_partitions]
        super().__init__(
            parent.ctx,
            max(len(kept_partitions), 1),
            [ManyToOneDependency(parent, groups or [[]])],
            name="prune",
        )
        self._parent = parent
        self._kept = list(kept_partitions)

    @property
    def kept_partitions(self) -> list[int]:
        return list(self._kept)

    def compute(self, split: int, task_ctx: "TaskContext") -> list:
        if not self._kept:
            return []
        return self._parent.iterator(self._kept[split], task_ctx)

    def preferred_workers(self, split: int) -> list[int]:
        if not self._kept:
            return []
        return self._parent.preferred_workers(self._kept[split])


class ShuffledRDD(RDD):
    """The reduce side of a shuffle.

    Reads bucket ``split`` from every map output (raising FetchFailedError
    on lost outputs, which the scheduler turns into lineage recovery) and
    merges combiners when an aggregator is attached.
    """

    def __init__(
        self,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator] = None,
        map_side_combine: bool = False,
        stats_collectors: tuple = (),
        existing_dep: Optional[ShuffleDependency] = None,
    ):
        if existing_dep is not None:
            # PDE reuse: the map side of this shuffle was already
            # materialized by EngineContext.materialize_shuffle; building
            # the reduce side on the same dependency skips the map stage.
            dep = existing_dep
        else:
            dep = ShuffleDependency(
                parent,
                partitioner,
                aggregator=aggregator,
                map_side_combine=map_side_combine,
                stats_collectors=stats_collectors,
            )
        super().__init__(
            parent.ctx,
            partitioner.num_partitions,
            [dep],
            partitioner=partitioner,
            name="shuffle",
        )
        self.shuffle_dep = dep

    def compute(self, split: int, task_ctx: "TaskContext") -> list:
        pairs = task_ctx.shuffle_manager.fetch(
            self.shuffle_dep.shuffle_id, split, task_ctx.metrics
        )
        aggregator = self.shuffle_dep.aggregator
        if aggregator is None:
            return pairs
        merged: dict = {}
        if self.shuffle_dep.map_side_combine:
            for key, combiner in pairs:
                if key in merged:
                    merged[key] = aggregator.merge_combiners(
                        merged[key], combiner
                    )
                else:
                    merged[key] = combiner
        else:
            for key, value in pairs:
                if key in merged:
                    merged[key] = aggregator.merge_value(merged[key], value)
                else:
                    merged[key] = aggregator.create_combiner(value)
        return list(merged.items())


class CoGroupedRDD(RDD):
    """Groups values from N pair RDDs by key.

    For each parent already partitioned compatibly the dependency is
    narrow; others are shuffled.  Output elements are
    ``(key, (values_from_rdd0, values_from_rdd1, ...))``.
    """

    def __init__(
        self,
        ctx: "EngineContext",
        rdds: list[RDD],
        partitioner: Partitioner,
        stats_collectors: tuple = (),
    ):
        deps: list[Dependency] = []
        for rdd in rdds:
            if rdd.partitioner == partitioner:
                deps.append(OneToOneDependency(rdd))
            else:
                deps.append(
                    ShuffleDependency(
                        rdd, partitioner, stats_collectors=stats_collectors
                    )
                )
        super().__init__(
            ctx,
            partitioner.num_partitions,
            deps,
            partitioner=partitioner,
            name="cogroup",
        )
        self._rdds = rdds

    @property
    def uses_only_narrow_deps(self) -> bool:
        """True when co-partitioning eliminated every shuffle (Section 3.4)."""
        return all(
            isinstance(dep, OneToOneDependency) for dep in self.dependencies
        )

    def compute(self, split: int, task_ctx: "TaskContext") -> list:
        groups: dict[Any, tuple] = {}
        arity = len(self._rdds)
        for index, dep in enumerate(self.dependencies):
            if isinstance(dep, OneToOneDependency):
                pairs = self._rdds[index].iterator(split, task_ctx)
            else:
                pairs = task_ctx.shuffle_manager.fetch(
                    dep.shuffle_id, split, task_ctx.metrics
                )
            for key, value in pairs:
                if key not in groups:
                    groups[key] = tuple([] for _ in range(arity))
                groups[key][index].append(value)
        return list(groups.items())

"""Spillable execution consumers: external hash aggregation and sort.

The enforcement half of memory arbitration (DESIGN §12).  When
:meth:`repro.engine.memory.MemoryAccountant.reserve` crosses a worker's
cap and evicting unpinned storage blocks is not enough, it asks the
worker's registered consumers to spill.  Two consumers live here:

:class:`SpillableGroups`
    Shared hash-aggregation state for the vectorized
    ``BatchAggregator`` and the row-mode partial aggregation.  Spilling
    is *bucket-grained* (Grace-style): every group key maps to one of
    :data:`NUM_SPILL_BUCKETS` fixed buckets via a deterministic CRC32
    of its repr; a spill serializes whole buckets of ``(key, accs)``
    items to an accumulator run and marks them spilled, after which
    rows for those buckets are appended *raw* — ``(key, arg values)``
    in arrival order — to raw runs.  ``finish()`` reloads the
    accumulator runs and replays the raw rows through ``fn.update`` in
    the same order the in-memory path would have applied them, then
    restores the global first-seen output order from per-key sequence
    numbers.  Results are therefore repr-identical to the uncapped run
    no matter where (or whether) spills fire — crucial because chaos
    retries shift spill points between runs.

:class:`ExternalSorter`
    Classic run generation + k-way merge.  Each spill sorts the buffer
    into a run; ``finish()`` merges the runs (chronological order) and
    the sorted tail with :func:`heapq.merge`, whose stability over
    in-order iterables makes the merged output equal a single stable
    sort of the full input — so ``RDD.sort_by`` partitions (ORDER BY,
    and any future sort/merge-join build) spill transparently.

"Disk" is simulated: spilled runs are serialized bytes held off-ledger
(their memory charge is released), with the write/read volume recorded
in :class:`~repro.engine.metrics.TaskMetrics` so
:mod:`repro.costmodel` charges real disk seconds for the round trip.
Bucketing uses CRC32, never ``hash()`` (randomized per process), so
spill decisions are deterministic run to run.
"""

from __future__ import annotations

import heapq
import zlib
from typing import Any, Callable, Optional

from repro.cluster.worker import approximate_size_bytes
from repro.columnar.serde import SpillSerde
from repro.engine.task import current_task_context

#: Fixed spill-bucket fanout for hash-aggregate state.  Small enough
#: that bucket bookkeeping is negligible, large enough that one spill
#: sheds ~1/8 of the live groups at a time.
NUM_SPILL_BUCKETS = 8

#: Raw rows buffered per spilled bucket before flushing a raw run.
RAW_FLUSH_ROWS = 256

#: Sorter items added between incremental ledger charges.
_SORT_CHARGE_EVERY = 64

_SERDE = SpillSerde()


def spill_bucket(key: Any) -> int:
    """Deterministic bucket for a group key.

    ``repr`` + CRC32 instead of ``hash()``: Python string hashing is
    randomized per process, and spill decisions must be identical
    across the baseline and chaos runs for byte-identical event logs.
    """
    return zlib.crc32(repr(key).encode("utf-8")) % NUM_SPILL_BUCKETS


class _SpilledBucket:
    """Runs belonging to one spilled bucket."""

    __slots__ = ("acc_payloads", "raw_payloads", "raw_buffer")

    def __init__(self) -> None:
        #: Serialized ``(key, accs)`` items cut at spill time (at most
        #: one per bucket: a spilled bucket holds no live groups, so it
        #: can never be picked again).
        self.acc_payloads: list[bytes] = []
        #: Serialized ``(key, values)`` rows that arrived after the
        #: bucket spilled, flushed in arrival-order chunks.
        self.raw_payloads: list[bytes] = []
        self.raw_buffer: list[tuple] = []


class SpillableGroups:
    """Hash-aggregation state that can shed buckets to simulated disk.

    ``functions`` are the aggregate function objects (``initial`` /
    ``update`` / per-slot accumulators); both the vectorized and the
    row-mode pipelines own one instance and register it with the
    accountant's arbitration path via the running task's context.
    """

    def __init__(self, functions: list, owner: str) -> None:
        self.functions = functions
        self.owner = owner
        #: key -> accumulator list, live (unspilled-bucket) groups only.
        self.groups: dict[tuple, list] = {}
        #: key -> first-seen sequence number, every key ever observed —
        #: the uncapped run's dict insertion order, restored at finish.
        self._order: dict[tuple, int] = {}
        self._spilled: dict[int, _SpilledBucket] = {}
        self._bytes_per_group = 0
        self._charged_groups = 0
        self._finishing = False
        self._registered = False
        self._register()

    # -- wiring ---------------------------------------------------------
    def _register(self) -> None:
        task_ctx = current_task_context()
        if task_ctx is not None and not self._registered:
            task_ctx.register_spillable(self)
            self._registered = True

    @staticmethod
    def _accountant():
        task_ctx = current_task_context()
        return task_ctx.accountant if task_ctx is not None else None

    @property
    def spilled(self) -> bool:
        return bool(self._spilled)

    def note_key(self, key: tuple) -> None:
        if key not in self._order:
            self._order[key] = len(self._order)

    # -- building state -------------------------------------------------
    def live_accs(self, key: tuple) -> Optional[list]:
        """Accumulators for ``key``, creating the group if new; None
        when the key's bucket is spilled (route those rows raw)."""
        accs = self.groups.get(key)
        if accs is not None:
            return accs
        if self._spilled and spill_bucket(key) in self._spilled:
            self.note_key(key)
            return None
        accs = [fn.initial() for fn in self.functions]
        self.groups[key] = accs
        self.note_key(key)
        return accs

    def update_row(self, key: tuple, values: list) -> None:
        """One row, row-mode: update live accumulators or append raw."""
        accs = self.live_accs(key)
        if accs is None:
            self.append_raw(key, values)
            return
        for j, fn in enumerate(self.functions):
            accs[j] = fn.update(accs[j], values[j])
        self.charge_pending()

    def append_raw(self, key: tuple, values: list) -> None:
        """Queue one row for a spilled bucket, flushing full chunks."""
        state = self._spilled[spill_bucket(key)]
        state.raw_buffer.append((key, list(values)))
        if len(state.raw_buffer) >= RAW_FLUSH_ROWS:
            self._flush_raw(state)

    def _flush_raw(self, state: _SpilledBucket) -> None:
        if not state.raw_buffer:
            return
        payload = _SERDE.encode(state.raw_buffer)
        state.raw_payloads.append(payload)
        state.raw_buffer = []
        self._record_write(len(payload))

    def _record_write(self, nbytes: int) -> None:
        task_ctx = current_task_context()
        if task_ctx is not None:
            task_ctx.metrics.spill_bytes_written += nbytes
            if task_ctx.accountant is not None:
                task_ctx.accountant.note_spill_write(
                    self.owner, nbytes, runs=1
                )

    def charge_pending(self) -> None:
        """Charge uncharged group growth to the task's execution pool."""
        new = len(self.groups) - self._charged_groups
        if new <= 0:
            return
        task_ctx = current_task_context()
        if task_ctx is None:
            return
        if not self._bytes_per_group:
            self._bytes_per_group = max(
                approximate_size_bytes(next(iter(self.groups.items()))), 1
            )
        task_ctx.reserve_memory(self.owner, new * self._bytes_per_group)
        self._charged_groups = len(self.groups)

    # -- the consumer contract ------------------------------------------
    def spillable_bytes(self) -> int:
        return self._charged_groups * self._bytes_per_group

    def spill(self, nbytes: int) -> tuple[int, int, int]:
        """Shed whole buckets until ``nbytes`` of ledger charge is
        released (or no live groups remain); returns
        ``(released, written, runs)``."""
        if self._finishing or not self.groups:
            return (0, 0, 0)
        task_ctx = current_task_context()
        if not self._bytes_per_group:
            self._bytes_per_group = max(
                approximate_size_bytes(next(iter(self.groups.items()))), 1
            )
        released = written = runs = 0
        while self.groups and released < nbytes:
            counts: dict[int, int] = {}
            for key in self.groups:
                bucket = spill_bucket(key)
                counts[bucket] = counts.get(bucket, 0) + 1
            # Largest bucket first (ties: lowest id) — fewest spills to
            # cover the shortfall, deterministically.
            bucket = min(counts, key=lambda b: (-counts[b], b))
            items = [
                (key, accs)
                for key, accs in self.groups.items()
                if spill_bucket(key) == bucket
            ]
            payload = _SERDE.encode(items)
            self._spilled.setdefault(
                bucket, _SpilledBucket()
            ).acc_payloads.append(payload)
            for key, __ in items:
                del self.groups[key]
            freed_groups = min(len(items), self._charged_groups)
            self._charged_groups -= freed_groups
            if task_ctx is not None:
                released += task_ctx.release_memory(
                    self.owner, freed_groups * self._bytes_per_group
                )
            self._record_write(len(payload))
            written += len(payload)
            runs += 1
        return (released, written, runs)

    # -- merge ----------------------------------------------------------
    def finish_groups(self) -> list:
        """All ``(key, accs)`` pairs in the uncapped run's exact order,
        merging spilled accumulator runs and replaying raw rows."""
        self._finishing = True
        if not self._spilled:
            return list(self.groups.items())
        merged = dict(self.groups)
        live_before = len(self.groups)
        read_bytes = 0
        for bucket in sorted(self._spilled):
            state = self._spilled[bucket]
            for payload in state.acc_payloads:
                read_bytes += len(payload)
                for key, accs in _SERDE.decode(payload):
                    merged[key] = accs
            self._flush_raw(state)
            for payload in state.raw_payloads:
                read_bytes += len(payload)
                for key, values in _SERDE.decode(payload):
                    accs = merged.get(key)
                    if accs is None:
                        accs = [fn.initial() for fn in self.functions]
                        merged[key] = accs
                    # Arrival-order fn.update replay: the exact update
                    # sequence the in-memory path would have applied.
                    for j, fn in enumerate(self.functions):
                        accs[j] = fn.update(accs[j], values[j])
        task_ctx = current_task_context()
        if task_ctx is not None:
            task_ctx.metrics.spill_bytes_read += read_bytes
            reloaded = len(merged) - live_before
            if reloaded > 0 and self._bytes_per_group:
                # The merged state lives on the task's heap again until
                # the attempt ends: put it back on the ledger.
                task_ctx.reserve_memory(
                    self.owner, reloaded * self._bytes_per_group
                )
        self._spilled.clear()
        order = self._order
        return sorted(merged.items(), key=lambda item: order[item[0]])


class ExternalSorter:
    """Buffered sort that sheds sorted runs under memory pressure.

    ``finish()`` k-way-merges the runs in chronological order plus the
    sorted in-memory tail; :func:`heapq.merge` keeps equal keys in
    iterable order, so the result equals one stable sort of everything
    ever added — ``sort_by`` output is byte-identical with or without
    spills.
    """

    def __init__(
        self,
        key: Optional[Callable] = None,
        reverse: bool = False,
        owner: str = "sort",
    ) -> None:
        self._key = key
        self._reverse = reverse
        self.owner = owner
        self._buffer: list = []
        self._runs: list[bytes] = []
        self._bytes_per_item = 0
        self._charged_items = 0
        self._finishing = False
        self._registered = False
        task_ctx = current_task_context()
        if task_ctx is not None:
            task_ctx.register_spillable(self)
            self._registered = True

    def add(self, item: Any) -> None:
        self._buffer.append(item)
        pending = len(self._buffer) - self._charged_items
        if pending >= _SORT_CHARGE_EVERY:
            self._charge_pending()

    def _charge_pending(self) -> None:
        pending = len(self._buffer) - self._charged_items
        if pending <= 0:
            return
        task_ctx = current_task_context()
        if task_ctx is None:
            return
        if not self._bytes_per_item:
            self._bytes_per_item = max(
                approximate_size_bytes(self._buffer[0]), 1
            )
        task_ctx.reserve_memory(
            self.owner, pending * self._bytes_per_item
        )
        self._charged_items = len(self._buffer)

    def spillable_bytes(self) -> int:
        return self._charged_items * self._bytes_per_item

    def spill(self, nbytes: int) -> tuple[int, int, int]:
        """Sort the buffer into one run and release its charge."""
        if self._finishing or not self._buffer:
            return (0, 0, 0)
        run = sorted(self._buffer, key=self._key, reverse=self._reverse)
        payload = _SERDE.encode(run)
        self._runs.append(payload)
        self._buffer = []
        released = 0
        task_ctx = current_task_context()
        if task_ctx is not None:
            released = task_ctx.release_memory(
                self.owner, self._charged_items * self._bytes_per_item
            )
            task_ctx.metrics.spill_bytes_written += len(payload)
            if task_ctx.accountant is not None:
                task_ctx.accountant.note_spill_write(
                    self.owner, len(payload), runs=1
                )
        self._charged_items = 0
        return (released, len(payload), 1)

    def finish(self) -> list:
        """The fully sorted sequence (merging any spilled runs)."""
        self._finishing = True
        tail = sorted(self._buffer, key=self._key, reverse=self._reverse)
        if not self._runs:
            return tail
        read_bytes = sum(len(payload) for payload in self._runs)
        iterables = [_SERDE.decode(payload) for payload in self._runs]
        iterables.append(tail)
        merged = list(
            heapq.merge(*iterables, key=self._key, reverse=self._reverse)
        )
        task_ctx = current_task_context()
        if task_ctx is not None:
            task_ctx.metrics.spill_bytes_read += read_bytes
            reloaded = len(merged) - len(tail)
            if reloaded > 0 and self._bytes_per_item:
                task_ctx.reserve_memory(
                    self.owner, reloaded * self._bytes_per_item
                )
        return merged

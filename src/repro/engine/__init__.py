"""A Spark-like execution engine: RDDs, lineage, DAG scheduling, shuffle.

This package is the substrate the paper builds Shark on (Section 2): an
in-memory, MapReduce-like engine whose datasets (RDDs) are immutable,
partitioned collections created only by deterministic coarse-grained
operators.  Lost partitions are *recomputed from lineage*, never replicated,
which is what gives Shark mid-query fault tolerance.

Everything executes for real, in-process, over a
:class:`~repro.cluster.VirtualCluster`: tasks are assigned to virtual
workers, cached partitions and shuffle map outputs live on specific workers,
and killing a worker forces genuine lineage-based recovery.

Entry point: :class:`~repro.engine.context.EngineContext`.
"""

from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.engine.partitioner import HashPartitioner, RangePartitioner
from repro.engine.broadcast import Broadcast
from repro.engine.accumulator import (
    Accumulator,
    StatisticsCollector,
    PartitionSizeStat,
    RecordCountStat,
    HeavyHittersStat,
    HistogramStat,
)
from repro.engine.metrics import TaskMetrics, StageProfile, QueryProfile
from repro.engine.lifecycle import (
    LifecycleConfig,
    QueryHandle,
    QueryLifecycleManager,
)

__all__ = [
    "EngineContext",
    "LifecycleConfig",
    "QueryHandle",
    "QueryLifecycleManager",
    "RDD",
    "HashPartitioner",
    "RangePartitioner",
    "Broadcast",
    "Accumulator",
    "StatisticsCollector",
    "PartitionSizeStat",
    "RecordCountStat",
    "HeavyHittersStat",
    "HistogramStat",
    "TaskMetrics",
    "StageProfile",
    "QueryProfile",
]

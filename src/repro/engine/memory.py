"""Unified memory accounting: one ledger over storage and execution.

Shark's in-memory claims (Sections 3.2 and 3.4 of the paper) rest on
knowing *who is holding memory when*: columnar tables cached in the
block store, and execution-side state — hash-aggregate accumulators,
join build tables, shuffle buffers, broadcast values — that today's
engines charge against a unified memory manager.  This module is that
manager's observability half: a per-worker :class:`MemoryAccountant`
with two pools,

``storage``
    bytes held by the :class:`~repro.cluster.worker.BlockStore` —
    cached RDD partitions and pinned shuffle map outputs; and
``execution``
    transient operator state reserved through a
    :class:`~repro.engine.task.TaskContext` (auto-released when the
    task attempt ends, so failed or cancelled attempts cannot leak) or
    held by long-lived broadcast values.

Every reservation is attributed to an ``owner`` label (``rdd_3``,
``shuffle_1``, ``hash_aggregate``, ``broadcast_0``, ...) so the ledger
answers "which operator peaked where" — surfaced via the ``memory.*``
metric family, the shell's ``.memory`` command, EXPLAIN ANALYZE's
``== memory ==`` section, and ``memory_watermark``/``memory_spill``
event-log records.

When a reservation would push a worker past ``memory_per_worker_bytes``
the accountant does **not** fail: it emits a structured
``memory.pressure`` instant carrying the would-be victim list from that
worker's block store (never pinned blocks), then *arbitrates* — first
evicting unpinned storage blocks LRU-first (cheapest: lineage
recomputes a cached partition on its next read), then asking the
worker's registered execution consumers (external hash aggregation,
external sort — see :mod:`repro.engine.spill`) to spill state to
simulated disk.  Either way the reservation itself always proceeds, so
callers never see an allocation failure; larger-than-memory queries
degrade to spilled execution instead of OOM.

All bookkeeping is plain dict arithmetic on the simulated clock — no
wall-clock reads, deterministic, and cheap enough for the task hot
path (the sentinel budget allows <5% sim-seconds overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

#: Pool names.
STORAGE = "storage"
EXECUTION = "execution"
POOLS = (STORAGE, EXECUTION)

#: Pseudo worker id for driver-held reservations (broadcast values live
#: on the driver and are shipped to tasks by reference).
DRIVER_WORKER = -1

#: Victim-list entries included in a ``memory.pressure`` instant.
_MAX_VICTIMS = 8


@dataclass
class WorkerLedger:
    """Live bytes, peaks, and per-owner attribution for one worker."""

    worker_id: int
    capacity_bytes: Optional[int] = None
    #: pool -> live reserved bytes.
    used: dict = field(default_factory=lambda: {STORAGE: 0, EXECUTION: 0})
    #: pool -> high-water mark of ``used``.
    peak: dict = field(default_factory=lambda: {STORAGE: 0, EXECUTION: 0})
    #: (pool, owner) -> live bytes.
    owners: dict = field(default_factory=dict)
    #: (pool, owner) -> high-water mark.
    owner_peak: dict = field(default_factory=dict)
    #: ``memory.pressure`` events observed on this worker.
    pressure_events: int = 0

    @property
    def total_used(self) -> int:
        return self.used[STORAGE] + self.used[EXECUTION]

    @property
    def total_peak(self) -> int:
        return self.peak[STORAGE] + self.peak[EXECUTION]

    def headroom(self) -> Optional[int]:
        """Bytes until the worker cap (None when uncapped)."""
        if self.capacity_bytes is None:
            return None
        return max(self.capacity_bytes - self.total_used, 0)


class MemoryAccountant:
    """The per-worker two-pool ledger behind every allocation site.

    One per :class:`~repro.engine.context.EngineContext`; the cluster,
    block stores, shuffle manager, broadcasts, and physical operators
    all reserve and release through it so the engine has a single
    attributed view of memory.  ``reserve``/``release`` are the only
    mutation points — a CI grep guard forbids touching block-store byte
    fields anywhere else.
    """

    def __init__(
        self,
        tracer=None,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        self.tracer = tracer
        #: Default per-worker cap (``memory_per_worker_bytes``).
        self.capacity_bytes = capacity_bytes
        self.ledgers: dict[int, WorkerLedger] = {}
        #: worker_id -> callable returning [(block_id, bytes), ...] of
        #: evictable (never pinned) blocks, insertion order — the
        #: would-be victim list a pressure event reports.
        self._victim_sources: dict[int, Callable[[], list]] = {}
        #: worker_id -> callable(nbytes) -> bytes freed by evicting
        #: unpinned storage blocks (the arbitration path's first step).
        self._evictors: dict[int, Callable[[int], int]] = {}
        #: worker_id -> registered spillable execution consumers, asked
        #: in registration order when eviction alone cannot cover an
        #: over-cap reservation.
        self._spill_consumers: dict[int, list] = {}
        #: Re-entrancy guard: a consumer's spill releases memory through
        #: this same accountant and must never trigger nested arbitration.
        self._arbitrating = False
        #: Monotonic totals (mirrored as counters when a tracer is set).
        self.total_reserved_bytes = 0
        self.total_released_bytes = 0
        self.pressure_events = 0
        self.spill_events = 0
        self.spill_bytes = 0
        self.spill_runs = 0
        #: owner -> {"events", "bytes", "runs"} cumulative attribution.
        self.spilled_by_owner: dict[str, dict[str, int]] = {}
        #: Bytes silently dropped by over-releases (double-release bugs);
        #: the ledger-zero invariant tests assert this stays zero.
        self.clamped_release_bytes = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def ledger(self, worker_id: int) -> WorkerLedger:
        entry = self.ledgers.get(worker_id)
        if entry is None:
            capacity = (
                self.capacity_bytes if worker_id != DRIVER_WORKER else None
            )
            entry = self.ledgers[worker_id] = WorkerLedger(
                worker_id=worker_id, capacity_bytes=capacity
            )
        return entry

    def attach_victim_source(
        self, worker_id: int, source: Callable[[], list]
    ) -> None:
        """Register a block store's evictable-block listing for
        ``memory.pressure`` victim reporting."""
        self._victim_sources[worker_id] = source

    def attach_evictor(
        self, worker_id: int, evictor: Callable[[int], int]
    ) -> None:
        """Register a block store's ``evict_up_to`` for arbitration:
        called with a byte shortfall, returns the bytes it freed."""
        self._evictors[worker_id] = evictor

    def register_spill_consumer(self, worker_id: int, consumer) -> None:
        """Register a spillable execution consumer (see
        :mod:`repro.engine.spill`) for ``worker_id``.  Consumers expose
        ``owner`` (attribution label) and ``spill(nbytes) ->
        (released, written, runs)``; task-scoped consumers must be
        deregistered when the attempt ends (``TaskContext`` does this)."""
        self._spill_consumers.setdefault(worker_id, []).append(consumer)

    def deregister_spill_consumer(self, worker_id: int, consumer) -> None:
        consumers = self._spill_consumers.get(worker_id)
        if consumers is not None and consumer in consumers:
            consumers.remove(consumer)

    # ------------------------------------------------------------------
    # The reserve / resize / release API
    # ------------------------------------------------------------------
    def reserve(
        self, worker_id: int, pool: str, owner: str, nbytes: int
    ) -> int:
        """Charge ``nbytes`` to ``owner`` in ``pool`` on ``worker_id``.

        Never fails: a reservation past the worker cap emits a
        structured ``memory.pressure`` event, then arbitrates — evict
        unpinned storage blocks first, then ask registered execution
        consumers to spill — and proceeds whether or not arbitration
        covered the shortfall.  Returns the bytes actually charged.
        """
        if nbytes <= 0:
            return 0
        nbytes = int(nbytes)
        ledger = self.ledger(worker_id)
        if (
            ledger.capacity_bytes is not None
            and ledger.total_used + nbytes > ledger.capacity_bytes
            and not self._arbitrating
        ):
            self._pressure(ledger, pool, owner, nbytes)
            self._arbitrate(ledger, pool, owner, nbytes)
        ledger.used[pool] += nbytes
        if ledger.used[pool] > ledger.peak[pool]:
            ledger.peak[pool] = ledger.used[pool]
        key = (pool, owner)
        live = ledger.owners.get(key, 0) + nbytes
        ledger.owners[key] = live
        if live > ledger.owner_peak.get(key, 0):
            ledger.owner_peak[key] = live
        self.total_reserved_bytes += nbytes
        if self.tracer is not None:
            self.tracer.metrics.inc("memory.reserved.bytes", nbytes)
            self._update_gauges()
        return nbytes

    def release(
        self, worker_id: int, pool: str, owner: str, nbytes: int
    ) -> int:
        """Return ``nbytes`` of ``owner``'s reservation; clamped to the
        owner's live bytes so the ledger can never go negative.

        A clamp means someone released more than they reserved — a
        double-release — which is an accounting bug, not a normal path:
        the clamped remainder is counted under
        ``memory.release.clamped`` and ``clamped_release_bytes`` so the
        ledger-zero invariant tests can assert it never happens.
        Returns the bytes actually released."""
        if nbytes <= 0:
            return 0
        ledger = self.ledger(worker_id)
        key = (pool, owner)
        live = ledger.owners.get(key, 0)
        requested = int(nbytes)
        nbytes = min(requested, live)
        if requested > nbytes:
            self.clamped_release_bytes += requested - nbytes
            if self.tracer is not None:
                self.tracer.metrics.inc(
                    "memory.release.clamped", requested - nbytes
                )
        if nbytes <= 0:
            return 0
        remaining = live - nbytes
        if remaining:
            ledger.owners[key] = remaining
        else:
            del ledger.owners[key]
        ledger.used[pool] -= nbytes
        self.total_released_bytes += nbytes
        if self.tracer is not None:
            self.tracer.metrics.inc("memory.released.bytes", nbytes)
            self._update_gauges()
        return nbytes

    def resize(
        self, worker_id: int, pool: str, owner: str, delta: int
    ) -> int:
        """Grow (positive ``delta``) or shrink a live reservation.

        Return contract — the **signed** byte delta actually applied to
        the ledger: ``>= 0`` bytes charged on grow, ``<= 0`` (minus the
        bytes released) on shrink.  Shrinks clamp at the owner's live
        bytes, so ``resize(..., -big)`` returns ``-live``, never less.
        Callers folding the result into their own byte tracking must
        *add* it in both directions; treating a shrink's return as a
        positive count double-books (the asymmetry this contract fixes).
        """
        if delta >= 0:
            return self.reserve(worker_id, pool, owner, delta)
        return -self.release(worker_id, pool, owner, -delta)

    def release_owner(
        self,
        owner: str,
        pool: Optional[str] = None,
        worker_id: Optional[int] = None,
    ) -> int:
        """Release everything ``owner`` still holds (cleanup paths:
        task teardown, broadcast destroy, worker kill)."""
        released = 0
        ledgers: Iterable[WorkerLedger] = (
            [self.ledger(worker_id)]
            if worker_id is not None
            else list(self.ledgers.values())
        )
        for ledger in ledgers:
            for key in [
                key
                for key in ledger.owners
                if key[1] == owner and (pool is None or key[0] == pool)
            ]:
                released += self.release(
                    ledger.worker_id, key[0], owner, ledger.owners[key]
                )
        return released

    def _update_gauges(self) -> None:
        """Mirror the ledger into the always-on ``memory.*`` gauges
        (live usage must be gauges: counters are monotonic)."""
        metrics = self.tracer.metrics
        storage_used = execution_used = 0
        storage_peak = execution_peak = 0
        headroom: Optional[int] = None
        for ledger in self.ledgers.values():
            storage_used += ledger.used[STORAGE]
            execution_used += ledger.used[EXECUTION]
            storage_peak += ledger.peak[STORAGE]
            execution_peak += ledger.peak[EXECUTION]
            room = ledger.headroom()
            if room is not None:
                headroom = room if headroom is None else min(headroom, room)
        metrics.set_gauge("memory.storage.used", storage_used)
        metrics.set_gauge("memory.execution.used", execution_used)
        metrics.set_gauge("memory.storage.peak", storage_peak)
        metrics.set_gauge("memory.execution.peak", execution_peak)
        if headroom is not None:
            metrics.set_gauge("memory.headroom", headroom)

    # ------------------------------------------------------------------
    # Pressure
    # ------------------------------------------------------------------
    def _pressure(
        self, ledger: WorkerLedger, pool: str, owner: str, nbytes: int
    ) -> None:
        ledger.pressure_events += 1
        self.pressure_events += 1
        victims = []
        source = self._victim_sources.get(ledger.worker_id)
        if source is not None:
            victims = [
                {"block_id": block_id, "bytes": size}
                for block_id, size in source()[:_MAX_VICTIMS]
            ]
        if self.tracer is not None:
            self.tracer.metrics.inc("memory.pressure.events")
            lane = (
                ledger.worker_id
                if ledger.worker_id != DRIVER_WORKER
                else "driver"
            )
            self.tracer.instant(
                "memory.pressure",
                "memory",
                lane=lane,
                pool=pool,
                owner=owner,
                requested_bytes=nbytes,
                used_bytes=ledger.total_used,
                capacity_bytes=ledger.capacity_bytes,
                victims=victims,
            )

    # ------------------------------------------------------------------
    # Arbitration (eviction before spill)
    # ------------------------------------------------------------------
    def _arbitrate(
        self, ledger: WorkerLedger, pool: str, owner: str, nbytes: int
    ) -> None:
        """Try to make room for an over-cap reservation.

        Policy: evict unpinned storage blocks first (lineage recomputes
        them — no I/O charged), then ask the worker's spill consumers,
        in registration order, to spill execution state to simulated
        disk.  Each step re-checks the shortfall because evictions and
        spills release through this accountant as they go.
        """
        self._arbitrating = True
        try:
            def shortfall() -> int:
                return ledger.total_used + nbytes - ledger.capacity_bytes

            evictor = self._evictors.get(ledger.worker_id)
            if evictor is not None and shortfall() > 0:
                evictor(shortfall())
            for consumer in list(
                self._spill_consumers.get(ledger.worker_id, ())
            ):
                if shortfall() <= 0:
                    break
                released, written, runs = consumer.spill(shortfall())
                if released > 0 or runs > 0:
                    self._note_spill(
                        ledger, consumer.owner, released, written, runs,
                        pool, owner, nbytes,
                    )
        finally:
            self._arbitrating = False

    def note_spill_write(
        self, owner: str, nbytes: int, runs: int = 0
    ) -> None:
        """Record spill-run bytes hitting simulated disk.

        Consumers call this for *every* run they write — accumulator
        runs cut during arbitration and raw-row runs flushed between
        arbitrations alike — so ``memory.spill.bytes``/``.runs`` and the
        per-owner attribution cover the full disk traffic, not just the
        arbitration-triggered slices.
        """
        self.spill_bytes += nbytes
        self.spill_runs += runs
        entry = self.spilled_by_owner.setdefault(
            owner, {"events": 0, "bytes": 0, "runs": 0}
        )
        entry["bytes"] += nbytes
        entry["runs"] += runs
        if self.tracer is not None:
            metrics = self.tracer.metrics
            metrics.inc("memory.spill.bytes", nbytes)
            metrics.inc("memory.spill.runs", runs)
            # dynamic name: per-owner spill attribution (stable labels:
            # batch_aggregate / hash_aggregate / sort).
            metrics.inc(f"memory.spill.owner.{owner}.bytes", nbytes)

    def _note_spill(
        self,
        ledger: WorkerLedger,
        spiller: str,
        released: int,
        written: int,
        runs: int,
        trigger_pool: str,
        trigger_owner: str,
        requested: int,
    ) -> None:
        """One arbitration-triggered consumer spill: the *event* and its
        instant (byte/run totals arrive via :meth:`note_spill_write`)."""
        self.spill_events += 1
        entry = self.spilled_by_owner.setdefault(
            spiller, {"events": 0, "bytes": 0, "runs": 0}
        )
        entry["events"] += 1
        if self.tracer is not None:
            self.tracer.metrics.inc("memory.spill.events")
            lane = (
                ledger.worker_id
                if ledger.worker_id != DRIVER_WORKER
                else "driver"
            )
            self.tracer.instant(
                "memory.spill",
                "memory",
                lane=lane,
                owner=spiller,
                released_bytes=released,
                spilled_bytes=written,
                runs=runs,
                trigger_pool=trigger_pool,
                trigger_owner=trigger_owner,
                requested_bytes=requested,
                used_bytes=ledger.total_used,
                capacity_bytes=ledger.capacity_bytes,
            )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def live_bytes(self, pool: Optional[str] = None) -> int:
        """Total live reserved bytes across workers (the ledger-zero
        invariant checks ``live_bytes(EXECUTION) == 0`` after queries)."""
        return sum(
            ledger.used[pool] if pool is not None else ledger.total_used
            for ledger in self.ledgers.values()
        )

    def peak_bytes(self, pool: Optional[str] = None) -> int:
        return sum(
            ledger.peak[pool] if pool is not None else ledger.total_peak
            for ledger in self.ledgers.values()
        )

    def watermarks(self) -> list[dict[str, Any]]:
        """Per-worker per-pool snapshot rows, ready for event-log
        ``memory_watermark`` records and reports (stable order)."""
        rows: list[dict[str, Any]] = []
        for worker_id in sorted(self.ledgers):
            ledger = self.ledgers[worker_id]
            for pool in POOLS:
                rows.append(
                    {
                        "worker": worker_id,
                        "pool": pool,
                        "used_bytes": ledger.used[pool],
                        "peak_bytes": ledger.peak[pool],
                        "owners": {
                            owner: peak
                            for (p, owner), peak in sorted(
                                ledger.owner_peak.items()
                            )
                            if p == pool
                        },
                    }
                )
        return rows

    def spill_rows(self) -> list[dict[str, Any]]:
        """Per-owner cumulative spill attribution rows (stable order),
        ready for ``memory_spill`` event-log records and reports."""
        return [
            {
                "owner": owner,
                "events": entry["events"],
                "bytes": entry["bytes"],
                "runs": entry["runs"],
            }
            for owner, entry in sorted(self.spilled_by_owner.items())
        ]

    def spill_snapshot(self) -> dict[str, dict[str, int]]:
        """Copy of the per-owner spill attribution, for computing
        per-query deltas around a statement."""
        return {
            owner: dict(entry)
            for owner, entry in self.spilled_by_owner.items()
        }

    def spill_rows_since(
        self, snapshot: dict[str, dict[str, int]]
    ) -> list[dict[str, Any]]:
        """Per-owner spill rows accumulated since ``snapshot`` (taken
        with :meth:`spill_snapshot`); owners with no new activity are
        omitted, keeping per-query event-log records minimal."""
        rows: list[dict[str, Any]] = []
        for owner, entry in sorted(self.spilled_by_owner.items()):
            base = snapshot.get(owner, {})
            delta = {
                field_name: entry[field_name] - base.get(field_name, 0)
                for field_name in ("events", "bytes", "runs")
            }
            if any(delta.values()):
                rows.append({"owner": owner, **delta})
        return rows

    def top_consumers(self, limit: int = 10) -> list[tuple]:
        """(owner, pool, peak_bytes) across all workers, largest first."""
        merged: dict[tuple, int] = {}
        for ledger in self.ledgers.values():
            for (pool, owner), peak in ledger.owner_peak.items():
                key = (owner, pool)
                if peak > merged.get(key, 0):
                    merged[key] = peak
        ranked = sorted(
            merged.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            (owner, pool, peak) for (owner, pool), peak in ranked[:limit]
        ]

    def describe(self) -> str:
        """Human-readable ledger for the shell's ``.memory`` command."""
        if not self.ledgers:
            return "(no memory activity)"
        lines: list[str] = []
        for worker_id in sorted(self.ledgers):
            ledger = self.ledgers[worker_id]
            label = (
                "driver" if worker_id == DRIVER_WORKER
                else f"worker {worker_id}"
            )
            headroom = ledger.headroom()
            cap = (
                f", headroom {_fmt_bytes(headroom)}"
                if headroom is not None
                else ""
            )
            lines.append(
                f"{label}: storage {_fmt_bytes(ledger.used[STORAGE])} "
                f"(peak {_fmt_bytes(ledger.peak[STORAGE])}), "
                f"execution {_fmt_bytes(ledger.used[EXECUTION])} "
                f"(peak {_fmt_bytes(ledger.peak[EXECUTION])})"
                f"{cap}"
            )
            if ledger.pressure_events:
                lines.append(
                    f"  {ledger.pressure_events} memory.pressure event(s)"
                )
        consumers = self.top_consumers(limit=8)
        if consumers:
            lines.append("top consumers (peak bytes, any worker):")
            for owner, pool, peak in consumers:
                lines.append(
                    f"  {owner} [{pool}]: {_fmt_bytes(peak)}"
                )
        if self.spill_events:
            lines.append(
                f"spills: {self.spill_events} event(s), "
                f"{_fmt_bytes(self.spill_bytes)} to disk in "
                f"{self.spill_runs} run(s)"
            )
            for row in self.spill_rows():
                lines.append(
                    f"  {row['owner']}: {_fmt_bytes(row['bytes'])} in "
                    f"{row['runs']} run(s)"
                )
        return "\n".join(lines)


def _fmt_bytes(count: float) -> str:
    count = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(count)}{unit}"
            return f"{count:.1f}{unit}"
        count /= 1024.0
    return f"{count:.1f}GiB"  # pragma: no cover - defensive

"""The shared type system: SQL data types, fields, and schemas.

Used by the SQL front end (column types, expression typing), the columnar
store (array dtypes, compression choices), and the serdes (wire formats).
Modelled on Hive's primitive types plus the complex types the paper calls
out (array/map/struct appear in the real-warehouse workload, Section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime
from typing import Any, Iterable

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class DataType:
    """Base class for SQL data types."""

    name: str = field(default="", init=False)

    def validate(self, value: Any) -> bool:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.name.upper()


@dataclass(frozen=True)
class IntegerType(DataType):
    name = "int"

    def validate(self, value: Any) -> bool:
        return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


@dataclass(frozen=True)
class LongType(DataType):
    name = "bigint"

    def validate(self, value: Any) -> bool:
        return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


@dataclass(frozen=True)
class DoubleType(DataType):
    name = "double"

    def validate(self, value: Any) -> bool:
        return isinstance(value, (int, float, np.floating, np.integer)) and (
            not isinstance(value, bool)
        )


@dataclass(frozen=True)
class StringType(DataType):
    name = "string"

    def validate(self, value: Any) -> bool:
        return isinstance(value, str)


@dataclass(frozen=True)
class BooleanType(DataType):
    name = "boolean"

    def validate(self, value: Any) -> bool:
        return isinstance(value, (bool, np.bool_))


@dataclass(frozen=True)
class DateType(DataType):
    name = "date"

    def validate(self, value: Any) -> bool:
        return isinstance(value, date) and not isinstance(value, datetime)


@dataclass(frozen=True)
class TimestampType(DataType):
    name = "timestamp"

    def validate(self, value: Any) -> bool:
        return isinstance(value, datetime)


@dataclass(frozen=True)
class ArrayType(DataType):
    """Complex type: serialized to bytes in the columnar store (Section 3.2)."""

    element_type: "DataType" = None  # type: ignore[assignment]
    name = "array"

    def validate(self, value: Any) -> bool:
        return isinstance(value, (list, tuple))

    def __str__(self) -> str:
        return f"ARRAY<{self.element_type}>"


@dataclass(frozen=True)
class MapType(DataType):
    key_type: "DataType" = None  # type: ignore[assignment]
    value_type: "DataType" = None  # type: ignore[assignment]
    name = "map"

    def validate(self, value: Any) -> bool:
        return isinstance(value, dict)

    def __str__(self) -> str:
        return f"MAP<{self.key_type},{self.value_type}>"


@dataclass(frozen=True)
class StructType(DataType):
    field_names: tuple = ()
    field_types: tuple = ()
    name = "struct"

    def validate(self, value: Any) -> bool:
        return isinstance(value, (tuple, dict))

    def __str__(self) -> str:
        inner = ",".join(
            f"{n}:{t}" for n, t in zip(self.field_names, self.field_types)
        )
        return f"STRUCT<{inner}>"


INT = IntegerType()
BIGINT = LongType()
DOUBLE = DoubleType()
STRING = StringType()
BOOLEAN = BooleanType()
DATE = DateType()
TIMESTAMP = TimestampType()

_PRIMITIVES_BY_NAME = {
    "int": INT,
    "integer": INT,
    "tinyint": INT,
    "smallint": INT,
    "bigint": BIGINT,
    "long": BIGINT,
    "float": DOUBLE,
    "double": DOUBLE,
    "decimal": DOUBLE,
    "string": STRING,
    "varchar": STRING,
    "char": STRING,
    "text": STRING,
    "boolean": BOOLEAN,
    "bool": BOOLEAN,
    "date": DATE,
    "timestamp": TIMESTAMP,
}

#: Numeric types, ordered by promotion priority.
NUMERIC_TYPES = (INT, BIGINT, DOUBLE)


def type_by_name(name: str) -> DataType:
    """Resolve a type name from SQL text (case-insensitive)."""
    try:
        return _PRIMITIVES_BY_NAME[name.lower()]
    except KeyError:
        raise AnalysisError(f"unknown data type {name!r}") from None


def is_numeric(data_type: DataType) -> bool:
    return isinstance(data_type, (IntegerType, LongType, DoubleType))


def promote(left: DataType, right: DataType) -> DataType:
    """Common type of two operands in an arithmetic expression."""
    if left == right:
        return left
    if is_numeric(left) and is_numeric(right):
        if DOUBLE in (left, right):
            return DOUBLE
        if BIGINT in (left, right):
            return BIGINT
        return INT
    raise AnalysisError(f"cannot promote {left} and {right}")


def infer_type(value: Any) -> DataType:
    """Infer the SQL type of a Python value (for schema-on-read loading)."""
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, (int, np.integer)):
        return BIGINT if abs(int(value)) > 2**31 - 1 else INT
    if isinstance(value, (float, np.floating)):
        return DOUBLE
    if isinstance(value, str):
        return STRING
    if isinstance(value, datetime):
        return TIMESTAMP
    if isinstance(value, date):
        return DATE
    if isinstance(value, (list, tuple)):
        element = infer_type(value[0]) if value else STRING
        return ArrayType(element_type=element)
    if isinstance(value, dict):
        if value:
            key, val = next(iter(value.items()))
            return MapType(key_type=infer_type(key), value_type=infer_type(val))
        return MapType(key_type=STRING, value_type=STRING)
    raise AnalysisError(f"cannot infer SQL type for {type(value).__name__}")


@dataclass(frozen=True)
class Field:
    """One named, typed column of a schema."""

    name: str
    data_type: DataType
    nullable: bool = True

    def __str__(self) -> str:
        return f"{self.name} {self.data_type}"


class Schema:
    """An ordered collection of fields with fast name lookup."""

    def __init__(self, fields: Iterable[Field]):
        self.fields = list(fields)
        self._index = {f.name.lower(): i for i, f in enumerate(self.fields)}
        if len(self._index) != len(self.fields):
            names = [f.name for f in self.fields]
            raise AnalysisError(f"duplicate column names in schema: {names}")

    @classmethod
    def of(cls, *pairs: tuple[str, DataType]) -> "Schema":
        """Shorthand: ``Schema.of(("url", STRING), ("hits", INT))``."""
        return cls(Field(name, data_type) for name, data_type in pairs)

    @classmethod
    def from_rows(cls, names: list[str], rows: list[tuple]) -> "Schema":
        """Infer a schema from sample rows (schema-on-read)."""
        if not rows:
            return cls(Field(name, STRING) for name in names)
        sample = rows[0]
        if len(sample) != len(names):
            raise AnalysisError(
                f"row width {len(sample)} does not match {len(names)} names"
            )
        return cls(
            Field(name, infer_type(value))
            for name, value in zip(names, sample)
        )

    @property
    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    @property
    def types(self) -> list[DataType]:
        return [f.data_type for f in self.fields]

    def index_of(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise AnalysisError(
                f"unknown column {name!r}; available: {self.names}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def field(self, name: str) -> Field:
        return self.fields[self.index_of(name)]

    def select(self, names: list[str]) -> "Schema":
        return Schema(self.field(name) for name in names)

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __repr__(self) -> str:
        inner = ", ".join(str(f) for f in self.fields)
        return f"Schema({inner})"

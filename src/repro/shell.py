"""An interactive SQL shell over a SharkContext.

The paper: "We have modified the Scala shell to enable interactive
execution of both SQL and distributed machine learning algorithms."  This
is the Python analogue: a REPL that executes SQL statements against an
in-process Shark cluster, plus dot-commands for inspecting the catalog,
plans, and run-time optimizer decisions — and for killing workers live to
watch lineage recovery happen.

Run with::

    python -m repro.shell
"""

from __future__ import annotations

import sys
from typing import Callable, Iterable, Optional, TextIO

from repro import SharkContext
from repro.errors import ReproError

PROMPT = "shark> "
CONTINUATION = "    -> "

HELP_TEXT = """\
Enter SQL terminated by ';'.  Dot-commands:
  .help                 this message
  .tables               list catalog tables
  .describe <table>     show a table's schema and storage
  .explain <query>      optimized logical plan without executing
  .profile <query>      EXPLAIN ANALYZE: run and annotate the plan with
                        per-stage tasks/rows/bytes/simulated seconds
  .metrics              engine counters (tasks, shuffle bytes, evictions)
  .memory               unified memory ledger: per-worker pool usage,
                        peaks, headroom, top consumers, and spills
  .cache [on]           query caching stack status (plan/result/fragment
                        hit ratios, shared scans); 'on' enables it
  .trace [on|off|<path>] toggle span tracing / export Chrome-trace JSON
  .eventlog [<path>|off] stream every query to a persistent event log
  .history <path> [id]  report over an event log (whole log, or one query)
  .doctor <log_a> <log_b>  diff two event logs of the same corpus and
                        rank root causes for every regressed query
  .workers              virtual cluster status
  .kill <worker_id>     kill a worker (lineage recovery demo)
  .notes                run-time optimizer decisions of the last query
  .submit <query>       submit SQL for concurrent execution (queued under
                        admission control; run with .drain)
  .queries              lifecycle status of every submitted query
  .cancel <id>          cooperatively cancel a submitted query
  .drain                run all submitted queries to completion, fairly
                        interleaved
  .server [start|drain] multi-tenant serving status; 'start' hosts a
                        SqlServer over this context, 'drain' runs every
                        accepted query; 'submit <tenant> <sql>' admits
                        one query under the tenant's quota
  .tenants [add <name> [tier]]  per-tenant serving sessions; 'add'
                        registers a tenant (tier: interactive, batch,
                        or best_effort)
  .quit                 exit"""

#: Truncate result sets in the shell beyond this many rows.
MAX_DISPLAY_ROWS = 40


def format_table(column_names: list[str], rows: list[tuple]) -> str:
    """Render rows as an aligned text table."""
    display = [[_cell(value) for value in row] for row in rows]
    widths = [len(name) for name in column_names]
    for row in display:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    header = " | ".join(
        name.ljust(width) for name, width in zip(column_names, widths)
    )
    separator = "-+-".join("-" * width for width in widths)
    lines = [header, separator]
    for row in display:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


class Shell:
    """The REPL: feed it lines, it feeds back output via ``write``."""

    def __init__(
        self,
        shark: Optional[SharkContext] = None,
        write: Optional[Callable[[str], None]] = None,
    ):
        self.shark = shark if shark is not None else SharkContext()
        self._write = write if write is not None else self._default_write
        self._buffer: list[str] = []
        self.running = True

    @staticmethod
    def _default_write(text: str) -> None:
        print(text)

    # ------------------------------------------------------------------
    # Input handling
    # ------------------------------------------------------------------
    def feed(self, line: str) -> None:
        """Process one input line (statement fragment or dot-command)."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("."):
            self._dot_command(stripped)
            return
        if not stripped and not self._buffer:
            return
        self._buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self._buffer)
            self._buffer = []
            self._execute(statement)

    @property
    def prompt(self) -> str:
        return CONTINUATION if self._buffer else PROMPT

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, statement: str) -> None:
        try:
            result = self.shark.sql(statement)
        except ReproError as error:
            self._write(f"error: {error}")
            return
        rows = result.rows[:MAX_DISPLAY_ROWS]
        self._write(format_table(result.column_names, rows))
        suffix = ""
        if len(result.rows) > MAX_DISPLAY_ROWS:
            suffix = f" (showing first {MAX_DISPLAY_ROWS})"
        self._write(f"{len(result.rows)} row(s){suffix}")
        for note in result.report.notes:
            self._write(f"-- {note}")

    # ------------------------------------------------------------------
    # Dot-commands
    # ------------------------------------------------------------------
    def _dot_command(self, command: str) -> None:
        name, __, argument = command.partition(" ")
        argument = argument.strip()
        if name in (".quit", ".exit"):
            self.running = False
            return
        if name == ".help":
            self._write(HELP_TEXT)
            return
        if name == ".tables":
            names = self.shark.session.catalog.table_names()
            self._write("\n".join(names) if names else "(no tables)")
            return
        if name == ".describe":
            self._describe(argument)
            return
        if name == ".explain":
            try:
                self._write(self.shark.explain(argument.rstrip(";")))
            except ReproError as error:
                self._write(f"error: {error}")
            return
        if name == ".profile":
            log_path = None
            if argument.startswith("--log "):
                log_path, __, argument = argument[len("--log "):].partition(" ")
                argument = argument.strip()
            try:
                self._write(
                    self.shark.explain_analyze(
                        argument.rstrip(";"), log=log_path
                    )
                )
                if log_path:
                    self._write(f"-- query record appended to {log_path}")
            except ReproError as error:
                self._write(f"error: {error}")
            return
        if name == ".metrics":
            self._write(self.shark.metrics.describe())
            serving = self.shark.engine.serving
            if serving is not None:
                self._write("== serving ==")
                for line in serving.summary_lines():
                    self._write(line)
            return
        if name == ".server":
            self._server_command(argument)
            return
        if name == ".tenants":
            self._tenants_command(argument)
            return
        if name == ".memory":
            self._write(self.shark.engine.memory.describe())
            return
        if name == ".cache":
            if argument == "on":
                self.shark.enable_sql_cache()
                self._write("sql cache enabled")
                return
            cache = self.shark.sql_cache
            if cache is None:
                self._write(
                    "sql cache disabled (enable with '.cache on')"
                )
                return
            self._write("== sql cache ==")
            for line in cache.summary_lines():
                self._write(line)
            return
        if name == ".trace":
            self._trace_command(argument)
            return
        if name == ".eventlog":
            self._eventlog_command(argument)
            return
        if name == ".history":
            self._history_command(argument)
            return
        if name == ".doctor":
            self._doctor_command(argument)
            return
        if name == ".workers":
            for worker in self.shark.engine.cluster.workers:
                status = "alive" if worker.alive else "DEAD"
                self._write(
                    f"worker {worker.worker_id}: {status}, "
                    f"{len(worker.blocks)} blocks, "
                    f"{worker.tasks_run} tasks run"
                )
            return
        if name == ".kill":
            try:
                self.shark.kill_worker(int(argument))
                self._write(
                    f"killed worker {argument}; its cached partitions and "
                    f"shuffle outputs are gone — the next query recovers "
                    f"them from lineage"
                )
            except (ValueError, IndexError, ReproError) as error:
                self._write(f"error: {error}")
            return
        if name == ".notes":
            report = self.shark.last_report
            if report is None or not report.notes:
                self._write("(no optimizer notes)")
            else:
                for note in report.notes:
                    self._write(f"-- {note}")
            return
        if name == ".submit":
            try:
                handle = self.shark.submit_sql(argument.rstrip(";"))
                self._write(
                    f"submitted query {handle.query_id} "
                    f"({handle.state}); run with .drain"
                )
            except RuntimeError:
                self.shark.enable_lifecycle()
                self._dot_command(command)
            except ReproError as error:
                self._write(f"error: {error}")
            return
        if name == ".queries":
            lifecycle = self.shark.lifecycle
            if lifecycle is None or not lifecycle.handles:
                self._write("(no submitted queries)")
            else:
                for handle in lifecycle.handles:
                    self._write(handle.describe())
                self._write(lifecycle.describe())
            return
        if name == ".cancel":
            lifecycle = self.shark.lifecycle
            try:
                query_id = int(argument)
                handle = next(
                    h
                    for h in (lifecycle.handles if lifecycle else [])
                    if h.query_id == query_id
                )
            except (ValueError, StopIteration):
                self._write(f"error: no submitted query {argument!r}")
                return
            if handle.done:
                self._write(
                    f"query {query_id} already finished ({handle.state})"
                )
                return
            handle.cancel()
            self._write(
                f"cancellation requested for query {query_id} (takes "
                f"effect at its next task boundary)"
            )
            return
        if name == ".drain":
            lifecycle = self.shark.lifecycle
            if lifecycle is None:
                self._write("(no submitted queries)")
                return
            try:
                finished = lifecycle.drain()
            except ReproError as error:
                self._write(f"error: {error}")
                return
            for handle in finished:
                self._write(handle.describe())
            return
        self._write(f"unknown command {name!r}; try .help")

    def _server_command(self, argument: str) -> None:
        from repro.serving import SqlServer

        server = self.shark.engine.serving
        if argument == "start":
            if server is not None:
                self._write("server already running")
            else:
                server = SqlServer(self.shark)
                self._write(
                    "server started (weighted fair scheduling); register "
                    "tenants with `.tenants add <name> [tier]`"
                )
            return
        if server is None:
            self._write("(no server; start one with `.server start`)")
            return
        if argument == "drain":
            finished = server.drain()
            for ticket in finished[-MAX_DISPLAY_ROWS:]:
                self._write(ticket.describe())
            self._write(server.describe())
            return
        if argument.startswith("submit "):
            rest = argument[len("submit "):].strip()
            tenant, __, text = rest.partition(" ")
            text = text.strip().rstrip(";")
            if not tenant or not text:
                self._write("usage: .server submit <tenant> <sql>")
                return
            try:
                ticket = server.submit(tenant, text)
            except ReproError as error:
                self._write(f"error: {error}")
                return
            self._write(
                f"accepted query {ticket.seq} for tenant {tenant} "
                f"({ticket.priority}); run with .server drain"
            )
            return
        if argument:
            self._write(f"unknown server subcommand {argument!r}")
            return
        for line in server.summary_lines():
            self._write(line)

    def _tenants_command(self, argument: str) -> None:
        server = self.shark.engine.serving
        if argument.startswith("add "):
            if server is None:
                self._write(
                    "(no server; start one with `.server start`)"
                )
                return
            rest = argument[len("add "):].split()
            name = rest[0] if rest else ""
            tier = rest[1] if len(rest) > 1 else "batch"
            if not name:
                self._write("usage: .tenants add <name> [tier]")
                return
            try:
                tenant = server.register_tenant(name, priority=tier)
            except (ValueError, ReproError) as error:
                self._write(f"error: {error}")
                return
            self._write(
                f"tenant {tenant.name} registered "
                f"[{tenant.priority}, weight {tenant.weight}]"
            )
            return
        if server is None or not server.tenants:
            self._write("(no tenants; `.tenants add <name> [tier]`)")
            return
        for name in sorted(server.tenants):
            self._write(server.tenants[name].describe())

    def _trace_command(self, argument: str) -> None:
        tracer = self.shark.tracer
        if argument in ("", "on"):
            self.shark.enable_tracing(reset=argument == "on")
            self._write("tracing enabled")
            return
        if argument == "off":
            self.shark.disable_tracing()
            self._write("tracing disabled")
            return
        # Anything else is a path: export what was recorded.
        trace = self.shark.trace
        if len(trace) == 0:
            self._write(
                "(no spans recorded — run `.trace on`, then a query)"
            )
            return
        try:
            trace.write_chrome_trace(argument)
        except OSError as error:
            self._write(f"error: {error}")
            return
        self._write(
            f"wrote {len(trace.spans)} spans / {len(trace.events)} events "
            f"to {argument} (open in https://ui.perfetto.dev)"
        )

    def _eventlog_command(self, argument: str) -> None:
        log = self.shark.engine.event_log
        if argument == "":
            if log is None:
                self._write("(no event log; `.eventlog <path>` to start one)")
            else:
                self._write(
                    f"event log: {log.path} "
                    f"({log.queries_logged} queries logged)"
                )
            return
        if argument == "off":
            if log is None:
                self._write("(no event log open)")
            else:
                path = log.path
                self.shark.close_event_log()
                self._write(f"closed event log {path}")
            return
        try:
            self.shark.enable_event_log(argument, source="shell")
        except OSError as error:
            self._write(f"error: {error}")
            return
        self._write(
            f"event log open at {argument}; every query now streams its "
            f"records there (`.eventlog off` to close, then inspect with "
            f"`.history {argument}`)"
        )

    def _history_command(self, argument: str) -> None:
        from repro.obs.history import HistoryStore

        path, __, query = argument.partition(" ")
        query = query.strip()
        if not path:
            self._write("usage: .history <path> [query-id-or-name]")
            return
        log = self.shark.engine.event_log
        if log is not None and str(log.path) == path:
            self._write(
                f"(note: {path} is still open for writing; close it "
                f"with `.eventlog off` for a complete report)"
            )
        try:
            store = HistoryStore.load(path)
            self._write(store.report(query=query if query else None))
        except (OSError, ValueError, KeyError) as error:
            self._write(f"error: {error}")

    def _doctor_command(self, argument: str) -> None:
        from repro.obs import doctor

        parts = argument.split()
        if len(parts) != 2:
            self._write("usage: .doctor <log_a> <log_b>")
            return
        try:
            report = doctor.diagnose_logs(
                parts[0],
                parts[1],
                metrics=self.shark.tracer.metrics,
            )
        except (OSError, ValueError, KeyError) as error:
            self._write(f"error: {error}")
            return
        self._write(report.render())

    def _describe(self, name: str) -> None:
        try:
            entry = self.shark.table_entry(name)
        except ReproError as error:
            self._write(f"error: {error}")
            return
        storage = "cached (columnar memstore)" if entry.is_cached else (
            f"external ({entry.path})"
        )
        self._write(f"table {entry.name} — {storage}")
        for field in entry.schema.fields:
            self._write(f"  {field.name}  {field.data_type}")
        if entry.row_count is not None:
            self._write(f"  -- {entry.row_count} rows")
        if entry.distribute_column:
            self._write(
                f"  -- DISTRIBUTE BY {entry.distribute_column} "
                f"({entry.partitioner})"
            )


def run(
    lines: Iterable[str],
    shark: Optional[SharkContext] = None,
    write: Optional[Callable[[str], None]] = None,
) -> Shell:
    """Drive a shell over an iterable of input lines (testing entry)."""
    shell = Shell(shark=shark, write=write)
    for line in lines:
        if not shell.running:
            break
        shell.feed(line)
    return shell


def main(stdin: Optional[TextIO] = None) -> int:
    """Interactive entry point."""
    stream = stdin if stdin is not None else sys.stdin
    shell = Shell()
    print("Shark SQL shell — .help for commands, .quit to exit")
    interactive = stream is sys.stdin and stream.isatty()
    while shell.running:
        if interactive:
            try:
                line = input(shell.prompt)
            except (EOFError, KeyboardInterrupt):
                break
        else:
            line = stream.readline()
            if not line:
                break
        shell.feed(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""SqlSession: statement execution over the engine, store, and catalog.

Runs the full pipeline of Section 2.4 — parse, logical plan + rule-based
optimization, physical plan as RDD transformations — then executes the
dataflow and materializes results.  Also owns DDL/DML: CREATE TABLE [AS
SELECT] with ``shark.cache`` and co-partitioning TBLPROPERTIES, INSERT,
DROP, CACHE/UNCACHE, and EXPLAIN.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional

from repro.columnar.table import ColumnarPartition
from repro.columnar.serde import TextSerde
from repro.datatypes import Field, Schema, type_by_name
from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.errors import AnalysisError, CatalogError, UnsupportedFeatureError
from repro.obs import analyze_profiles
from repro.sql import ast
from repro.sql.analyzer import Analyzer, Scope
from repro.sql.catalog import CACHED, Catalog, EXTERNAL, TableEntry
from repro.sql.functions import FunctionRegistry
from repro.sql.optimizer import optimize
from repro.sql.parser import parse
from repro.sql.planner import (
    ExecutionReport,
    PhysicalPlanner,
    PlannerConfig,
)
from repro.storage import DistributedFileStore


@dataclass
class QueryResult:
    """Rows plus metadata from one executed statement."""

    rows: list[tuple]
    schema: Schema
    report: ExecutionReport = field(default_factory=ExecutionReport)
    #: For EXPLAIN: the rendered plan text.
    plan_text: Optional[str] = None
    #: True when the rows came from the session's result cache.
    cache_hit: bool = False

    @property
    def column_names(self) -> list[str]:
        return self.schema.names

    def column(self, name: str) -> list:
        index = self.schema.index_of(name)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.schema)} columns"
            )
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class SqlSession:
    """One SQL session: catalog + UDF registry + planner configuration."""

    def __init__(
        self,
        ctx: EngineContext,
        store: Optional[DistributedFileStore] = None,
        config: Optional[PlannerConfig] = None,
        enable_master_recovery: bool = False,
    ):
        self.ctx = ctx
        self.store = store if store is not None else DistributedFileStore()
        self.catalog = Catalog()
        self.registry = FunctionRegistry()
        self.config = config or PlannerConfig()
        #: Report of the most recently planned query.
        self.last_report: Optional[ExecutionReport] = None
        #: Reliable log of catalog-mutating operations (paper footnote 4);
        #: None disables journaling.
        self.journal = None
        if enable_master_recovery:
            from repro.sql.journal import MasterJournal

            self.journal = MasterJournal(self.store)
        #: True while executing a journaled statement, so internal
        #: load_rows calls are not double-journaled.
        self._in_statement = False
        #: Original SQL text of the statement being executed (event log).
        self._current_text: Optional[str] = None
        #: Optimized-plan text captured by plan_select when logging.
        self._last_plan_text: Optional[str] = None
        #: Query caching stack (repro.sql.cache); None until enabled.
        self.sql_cache = None

    def enable_sql_cache(self, config=None):
        """Turn on the plan/result/fragment caching stack for this
        session (idempotent; returns the active SqlCache)."""
        if self.sql_cache is None:
            from repro.sql.cache import SqlCache

            self.sql_cache = SqlCache(self.ctx, self.catalog, config)
            # The physical layer reads ctx.sql_cache for fragment reuse.
            self.ctx.sql_cache = self.sql_cache
        return self.sql_cache

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def execute(self, text: str) -> QueryResult:
        cache = self.sql_cache
        if cache is not None:
            from repro.sql.cache import SqlCache

            memo = cache.memo_for(text)
            if memo is not None and memo is not SqlCache._MISSING:
                # Known-cacheable text: the normalized form stands in for
                # the AST, so parsing is skipped entirely.  A plan- or
                # result-cache miss below re-parses on demand.
                self._current_text = text
                try:
                    return self._execute_select(None, memo=memo)
                finally:
                    self._current_text = None
                    self.ctx.release_broadcast_accounting()
        statement = parse(text)
        self._current_text = text
        try:
            return self.execute_statement(statement)
        finally:
            self._current_text = None

    def execute_statement(self, statement: ast.Statement) -> QueryResult:
        try:
            return self._execute_statement(statement)
        finally:
            # Broadcast build tables are query-scoped: drop their
            # execution-pool charge so the ledger balances to zero after
            # every statement (success, cancellation, or failure).
            self.ctx.release_broadcast_accounting()

    def _execute_statement(self, statement: ast.Statement) -> QueryResult:
        if isinstance(statement, ast.SelectStatement):
            memo = None
            if self.sql_cache is not None and self._current_text is not None:
                memo = self.sql_cache.memoize(self._current_text, statement)
            return self._execute_select(statement, memo=memo)
        if isinstance(statement, ast.Explain):
            if statement.analyze:
                return self._explain_analyze(statement.statement)
            return self._explain(statement.statement)
        # Catalog-mutating statements: execute, then journal on success.
        previously_in_statement = self._in_statement
        self._in_statement = True
        try:
            if isinstance(statement, ast.CreateTable):
                result = self._create_table(statement)
            elif isinstance(statement, ast.DropTable):
                self.catalog.drop(
                    statement.name, if_exists=statement.if_exists
                )
                result = _status(f"dropped {statement.name}")
            elif isinstance(statement, ast.InsertInto):
                result = self._insert(statement)
            elif isinstance(statement, ast.CacheTable):
                result = self._cache_table(statement)
            else:
                raise UnsupportedFeatureError(
                    f"cannot execute {type(statement).__name__}"
                )
        finally:
            self._in_statement = previously_in_statement
        if self.journal is not None and not previously_in_statement:
            self.journal.log_statement(_render_statement(statement))
        return result

    def _execute_select(
        self,
        statement: Optional[ast.SelectStatement],
        memo=None,
    ) -> QueryResult:
        """Run one SELECT through the cache stack.

        ``statement`` may be None when the raw text's normalized form
        (``memo``) is known — a result- or plan-cache hit then never
        parses; a miss re-parses ``self._current_text`` on demand.
        """
        ctx = self.ctx
        tracer = ctx.tracer
        tracer.metrics.inc("queries.executed")
        text = self._current_text
        cache = self.sql_cache
        lookups: list[dict] = []
        try:
            with self._logged_query("sql", text) as logged:
                logged["cache_lookups"] = lookups
                with tracer.span("query", "query", kind="select"):
                    if cache is not None and memo is not None:
                        hit = cache.result_lookup(memo)
                        if hit is not None:
                            rows, schema = hit
                            lookups.append(
                                {"layer": "result", "outcome": "hit"}
                            )
                            report = ExecutionReport()
                            report.note("served from result cache")
                            self.last_report = report
                            logged["report"] = report
                            logged["rows"] = len(rows)
                            return QueryResult(
                                rows, schema, report, cache_hit=True
                            )
                        lookups.append(
                            {"layer": "result", "outcome": "miss"}
                        )
                    plan = None
                    if cache is not None and memo is not None:
                        cached = cache.plan_lookup(memo)
                        if cached is not None:
                            plan = cached[0]
                            lookups.append(
                                {"layer": "plan", "outcome": "hit"}
                            )
                        else:
                            lookups.append(
                                {"layer": "plan", "outcome": "miss"}
                            )
                    if plan is None:
                        if statement is None:
                            statement = parse(text)
                        analyzer = Analyzer(self.catalog, self.registry)
                        plan = optimize(analyzer.analyze_select(statement))
                    if ctx.event_log is not None:
                        self._last_plan_text = plan.pretty()
                    planner = PhysicalPlanner(ctx, self.store, self.config)
                    planned = planner.plan(plan)
                    self.last_report = planned.report
                    fragment_mark = (
                        (cache.fragment_hits, cache.fragment_misses)
                        if cache is not None
                        else (0, 0)
                    )
                    rows = planned.rdd.collect()
                    if cache is not None:
                        hits = cache.fragment_hits - fragment_mark[0]
                        misses = cache.fragment_misses - fragment_mark[1]
                        if hits or misses:
                            lookups.append(
                                {
                                    "layer": "fragment",
                                    "outcome": "hit" if hits else "miss",
                                    "hits": hits,
                                    "misses": misses,
                                }
                            )
                    if cache is not None and memo is not None:
                        cache.plan_store(memo, plan, planned.schema)
                        cache.result_store(memo, rows, planned.schema)
                logged["report"] = planned.report
                logged["rows"] = len(rows)
                logged["plan_text"] = self._last_plan_text
            return QueryResult(rows, planned.schema, planned.report)
        finally:
            # Inside a lifecycle-managed query the manager owns the
            # event-log slice; hand it the lookups for its own record.
            if (
                lookups
                and ctx.lifecycle is not None
                and ctx.lifecycle.in_query()
            ):
                ctx.lifecycle.note_cache_lookups(lookups)

    def plan_select(self, select: ast.SelectStatement,
                    config: Optional[PlannerConfig] = None):
        """Analyze, optimize and physically plan a SELECT; returns the
        PlannedQuery (rdd + schema + report) without executing it."""
        analyzer = Analyzer(self.catalog, self.registry)
        plan = analyzer.analyze_select(select)
        plan = optimize(plan)
        if self.ctx.event_log is not None:
            self._last_plan_text = plan.pretty()
        planner = PhysicalPlanner(self.ctx, self.store, config or self.config)
        planned = planner.plan(plan)
        self.last_report = planned.report
        return planned

    # ------------------------------------------------------------------
    # Event logging
    # ------------------------------------------------------------------
    @contextmanager
    def _logged_query(
        self, kind: str, text: Optional[str], name: Optional[str] = None
    ):
        """Stream one query's records to the context's event log.

        Yields a carrier dict the caller fills with ``report`` /
        ``rows`` / ``plan_text``.  Watermarks on the scheduler history,
        the trace buffers, and the counter values isolate this query's
        slice; on any exit (including cancellation/failure) the records
        are written and, on abnormal status, the flight recorder dumps.
        No-op without an event log, or inside a lifecycle-managed query
        (the lifecycle manager owns those records).
        """
        ctx = self.ctx
        log = ctx.event_log
        carrier: dict[str, Any] = {
            "report": None,
            "rows": None,
            "plan_text": None,
            "cache_lookups": None,
        }
        if log is None or (
            ctx.lifecycle is not None and ctx.lifecycle.in_query()
        ):
            yield carrier
            return
        tracer = ctx.tracer
        history = ctx.scheduler.history
        history_mark = len(history)
        span_mark = len(tracer.trace.spans)
        event_mark = len(tracer.trace.events)
        counters_before = dict(tracer.metrics.snapshot()["counters"])
        spill_mark = ctx.memory.spill_snapshot()
        # Shuffle-id watermark: ids are globally monotonic, so every
        # shuffle this query creates has an id >= the mark.
        from repro.engine.dependencies import ShuffleDependency

        shuffle_mark = ShuffleDependency._next_shuffle_id
        started = tracer.clock.now()
        query_id = f"q{log.queries_logged:04d}"
        status, error = "ok", None
        try:
            yield carrier
        except BaseException as exc:
            status = _terminal_status(exc)
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            ended = tracer.clock.now()
            if history_mark > len(history):
                # reset_profiles ran inside the query (EXPLAIN ANALYZE):
                # everything in the history belongs to it.
                history_mark = 0
            profiles = list(history[history_mark:])
            spans = tracer.trace.spans[span_mark:]
            events = tracer.trace.events[event_mark:]
            counters_after = tracer.metrics.snapshot()["counters"]
            deltas = {
                key: value - counters_before.get(key, 0.0)
                for key, value in counters_after.items()
                if value != counters_before.get(key, 0.0)
            }
            cluster = ctx.cluster
            cores = cluster.workers[0].cores if cluster.workers else 1
            analysis = analyze_profiles(
                "",
                profiles,
                num_workers=cluster.num_workers,
                cores_per_worker=cores,
            )
            tracer.metrics.observe(
                "query.sim_seconds", analysis.total_sim_seconds
            )
            if status != "ok":
                tracer.flight_dump(status, query=query_id)
            report = carrier.get("report")
            operator_profiles = _operator_profiles(report, profiles)
            skew_records = ctx.shuffle_manager.skew_records(shuffle_mark)
            metrics = tracer.metrics
            if operator_profiles:
                from repro.obs.planquality import (
                    DEFAULT_Q_ERROR_THRESHOLD,
                    audit,
                )

                metrics.inc(
                    "plan.operator_profiles", len(operator_profiles)
                )
                flagged = audit(
                    operator_profiles, DEFAULT_Q_ERROR_THRESHOLD
                )
                if flagged:
                    metrics.inc("plan.misestimates", len(flagged))
                    metrics.set_gauge(
                        "plan.q_error_max", flagged[0]["q_error"]
                    )
            if skew_records:
                metrics.inc("skew.shuffles", len(skew_records))
            log.write_query(
                name=name if name is not None else (text or kind).strip(),
                kind=kind,
                text=text,
                status=status,
                error=error,
                profiles=profiles,
                spans=spans,
                events=events,
                counter_deltas=deltas,
                plan_text=carrier.get("plan_text"),
                operator_modes=(
                    list(report.operator_modes)
                    if report is not None
                    else []
                ),
                result_rows=carrier.get("rows"),
                sim_seconds=analysis.total_sim_seconds,
                stage_sim=[
                    {
                        "job_id": stage.job_id,
                        "stage_id": stage.stage_id,
                        "name": stage.name,
                        "kind": stage.kind,
                        "num_tasks": stage.num_tasks,
                        "sim_seconds": stage.sim_seconds,
                        "records_in": stage.records_in,
                        "records_out": stage.records_out,
                        "shuffle_read_bytes": stage.shuffle_read_bytes,
                        "shuffle_write_bytes": stage.shuffle_write_bytes,
                    }
                    for stage in analysis.stages
                ],
                started=started,
                ended=ended,
                query_id=query_id,
                memory=ctx.memory.watermarks(),
                spills=ctx.memory.spill_rows_since(spill_mark),
                cache_lookups=carrier.get("cache_lookups") or None,
                operator_profiles=operator_profiles or None,
                shuffle_skew=skew_records or None,
            )

    def _explain(self, statement: ast.Statement) -> QueryResult:
        if isinstance(statement, ast.CreateTable) and statement.as_select:
            statement = statement.as_select
        if not isinstance(statement, ast.SelectStatement):
            raise UnsupportedFeatureError("EXPLAIN supports SELECT and CTAS")
        analyzer = Analyzer(self.catalog, self.registry)
        plan = analyzer.analyze_select(statement)
        optimized = optimize(plan)
        text = optimized.pretty()
        schema = Schema([Field("plan", type_by_name("string"))])
        return QueryResult(
            rows=[(line,) for line in text.splitlines()],
            schema=schema,
            plan_text=text,
        )

    def _explain_analyze(self, statement: ast.Statement) -> QueryResult:
        """EXPLAIN ANALYZE: run the query for real, then annotate the
        optimized plan with each executed stage's task counts, attempts,
        rows, shuffle bytes, and simulated seconds."""
        if isinstance(statement, ast.CreateTable) and statement.as_select:
            statement = statement.as_select
        if not isinstance(statement, ast.SelectStatement):
            raise UnsupportedFeatureError(
                "EXPLAIN ANALYZE supports SELECT and CTAS"
            )
        analyzer = Analyzer(self.catalog, self.registry)
        plan = analyzer.analyze_select(statement)
        optimized = optimize(plan)
        plan_text = optimized.pretty()

        self.ctx.reset_profiles()
        tracer = self.ctx.tracer
        tracer.metrics.inc("queries.executed")
        spill_mark = self.ctx.memory.spill_snapshot()
        from repro.engine.dependencies import ShuffleDependency

        shuffle_mark = ShuffleDependency._next_shuffle_id
        with self._logged_query(
            "explain-analyze", self._current_text
        ) as logged:
            with tracer.span("query", "query", kind="explain-analyze"):
                planner = PhysicalPlanner(self.ctx, self.store, self.config)
                planned = planner.plan(optimized)
                self.last_report = planned.report
                rows = planned.rdd.collect()
            logged["report"] = planned.report
            logged["rows"] = len(rows)
            logged["plan_text"] = plan_text

        cluster = self.ctx.cluster
        cores = cluster.workers[0].cores if cluster.workers else 1
        notes = list(planned.report.notes)
        if self.ctx.lifecycle is not None:
            notes.append(self.ctx.lifecycle.describe())
        analysis = analyze_profiles(
            plan_text,
            self.ctx.profiles,
            num_workers=cluster.num_workers,
            cores_per_worker=cores,
            result_rows=len(rows),
            notes=notes,
            operator_modes=list(planned.report.operator_modes),
            memory_rows=self.ctx.memory.watermarks(),
            memory_pressure_events=self.ctx.memory.pressure_events,
            memory_spills=self.ctx.memory.spill_rows_since(spill_mark),
            operator_profiles=_operator_profiles(
                planned.report, self.ctx.profiles
            ),
            shuffle_skew=self.ctx.shuffle_manager.skew_records(
                shuffle_mark
            ),
        )
        serving = getattr(self.ctx, "serving", None)
        if serving is not None:
            analysis.serving_lines = serving.summary_lines()
        if self.sql_cache is not None:
            analysis.sql_cache_lines = self.sql_cache.summary_lines()
        text = analysis.render()
        schema = Schema([Field("plan", type_by_name("string"))])
        return QueryResult(
            rows=[(line,) for line in text.splitlines()],
            schema=schema,
            report=planned.report,
            plan_text=text,
        )

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _create_table(self, statement: ast.CreateTable) -> QueryResult:
        if self.catalog.exists(statement.name):
            if statement.if_not_exists:
                return _status(f"table {statement.name} already exists")
            raise CatalogError(f"table already exists: {statement.name}")

        cached = _wants_cache(statement.properties)

        if statement.as_select is None:
            if not statement.columns:
                raise AnalysisError(
                    "CREATE TABLE needs column definitions or AS SELECT"
                )
            schema = Schema(
                Field(column.name, type_by_name(column.type_name))
                for column in statement.columns
            )
            entry = TableEntry(
                name=statement.name,
                schema=schema,
                kind=CACHED if cached else EXTERNAL,
                path=None if cached else self._table_path(statement.name),
                properties=dict(statement.properties),
                row_count=0,
                size_bytes=0,
            )
            if not cached:
                # overwrite=True: during master-recovery replay the file
                # may already exist; loads are replayed on top anyway.
                self.store.write_file(
                    entry.path, [], format="text", overwrite=True
                )
            self.catalog.create(entry)
            return _status(f"created {statement.name}")

        # CTAS: plan the select, honoring co-partitioning requests.
        config = self.config
        copartition_target = statement.properties.get("copartition")
        if copartition_target:
            target = self.catalog.get(copartition_target)
            if target.partitioner is None:
                raise AnalysisError(
                    f"cannot co-partition with {copartition_target}: it was "
                    f"not created with DISTRIBUTE BY"
                )
            config = replace(
                self.config, repartition_override=target.partitioner
            )
        planned = self.plan_select(statement.as_select, config=config)

        entry = TableEntry(
            name=statement.name,
            schema=planned.schema,
            kind=CACHED if cached else EXTERNAL,
            path=None if cached else self._table_path(statement.name),
            properties=dict(statement.properties),
            partitioner=planned.output_partitioner,
            distribute_column=planned.distribute_column,
        )
        if cached:
            self._materialize_cached(entry, planned.rdd)
        else:
            self._materialize_external(entry, planned.rdd)
        self.catalog.create(entry)
        return _status(
            f"created {statement.name} ({entry.row_count} rows, "
            f"{'cached' if cached else 'external'})"
        )

    def _cache_table(self, statement: ast.CacheTable) -> QueryResult:
        entry = self.catalog.get(statement.name)
        if statement.uncache:
            if entry.is_cached and entry.cached_rdd is not None:
                # Spill to the store and flip to external.
                rows_rdd = self._scan_rdd(entry)
                new_entry = TableEntry(
                    name=entry.name,
                    schema=entry.schema,
                    kind=EXTERNAL,
                    path=self._table_path(entry.name),
                    properties=dict(entry.properties),
                )
                self._materialize_external(new_entry, rows_rdd)
                self.catalog.drop(entry.name)
                self.catalog.create(new_entry)
            return _status(f"uncached {statement.name}")
        if entry.is_cached:
            return _status(f"{statement.name} is already cached")
        rows_rdd = self._scan_rdd(entry)
        new_entry = TableEntry(
            name=entry.name,
            schema=entry.schema,
            kind=CACHED,
            properties=dict(entry.properties),
        )
        self._materialize_cached(new_entry, rows_rdd)
        self.catalog.drop(entry.name)
        self.catalog.create(new_entry)
        return _status(f"cached {statement.name}")

    def _scan_rdd(self, entry: TableEntry) -> RDD:
        from repro.sql import logical

        planner = PhysicalPlanner(self.ctx, self.store, self.config)
        return planner.plan(logical.Scan(entry)).rdd

    # ------------------------------------------------------------------
    # DML and loading
    # ------------------------------------------------------------------
    def _insert(self, statement: ast.InsertInto) -> QueryResult:
        entry = self.catalog.get(statement.table)
        if statement.values:
            analyzer = Analyzer(self.catalog, self.registry)
            empty_scope = Scope([])
            rows = []
            for value_exprs in statement.values:
                row = tuple(
                    analyzer.bind(expr, empty_scope).eval(())
                    for expr in value_exprs
                )
                if len(row) != len(entry.schema):
                    raise AnalysisError(
                        f"INSERT row width {len(row)} != table width "
                        f"{len(entry.schema)}"
                    )
                rows.append(row)
            self.load_rows(statement.table, rows)
            return _status(f"inserted {len(rows)} rows into {statement.table}")
        planned = self.plan_select(statement.select)
        if len(planned.schema) != len(entry.schema):
            raise AnalysisError(
                f"INSERT select width {len(planned.schema)} != table width "
                f"{len(entry.schema)}"
            )
        rows = planned.rdd.collect()
        self.load_rows(statement.table, rows)
        return _status(f"inserted {len(rows)} rows into {statement.table}")

    def load_rows(
        self,
        table_name: str,
        rows: Iterable[tuple],
        num_partitions: Optional[int] = None,
    ) -> int:
        """Bulk-load rows into a table (distributed loading, Section 3.3).

        For cached tables each loading partition independently marshals its
        split into compressed columns and records statistics; for external
        tables each partition is encoded into one DFS block.
        """
        entry = self.catalog.get(table_name)
        rows = [tuple(row) for row in rows]
        if self.journal is not None and not self._in_statement:
            self.journal.log_load(table_name, rows)
        rdd = self.ctx.parallelize(
            rows, num_partitions or self.ctx.default_parallelism
        )
        if entry.partitioner is not None and entry.distribute_column:
            from repro.sql.expressions import BoundColumn
            from repro.sql import physical as phys

            index = entry.schema.index_of(entry.distribute_column)
            key = BoundColumn(
                index,
                entry.schema.fields[index].data_type,
                entry.distribute_column,
            )
            rdd = phys.repartition_rows(rdd, [key], entry.partitioner)
        if entry.is_cached:
            self._materialize_cached(entry, rdd, append=True)
        else:
            self._materialize_external(entry, rdd, append=True)
        # Loads/inserts move the table version (result/fragment cache
        # invalidation) without touching its DDL identity.
        self.catalog.bump_version(table_name)
        return len(rows)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def _materialize_cached(
        self, entry: TableEntry, rows_rdd: RDD, append: bool = False
    ) -> None:
        """Marshal a row RDD into cached columnar partitions.

        Loading is itself a distributed job: each task builds its own
        partition's columns, picks compression per column, and collects the
        statistics map pruning needs; the master keeps only the metadata.
        """
        schema = entry.schema
        # TBLPROPERTIES ('shark.compress' = 'false') keeps columns plain —
        # an ablation/differential-testing axis for the compression codecs.
        compress = (
            entry.properties.get("shark.compress", "").lower()
            not in ("false", "0", "no")
        )

        def build(part: list) -> list:
            return [ColumnarPartition.from_rows(schema, part,
                                                compress=compress)]

        blocks = rows_rdd.map_partitions(build).set_name(
            f"load:{entry.name}"
        )
        blocks.partitioner = rows_rdd.partitioner
        blocks.cache()
        infos = self.ctx.run_job(
            blocks,
            lambda blks: (
                blks[0].stats,
                blks[0].memory_footprint_bytes(),
                blks[0].num_rows,
            ),
        )
        stats = [info[0] for info in infos]
        bytes_per_partition = [info[1] for info in infos]
        row_count = sum(info[2] for info in infos)

        if append and entry.cached_rdd is not None:
            entry.cached_rdd = entry.cached_rdd.union(blocks)
            entry.partition_stats = entry.partition_stats + stats
            entry.partition_bytes = entry.partition_bytes + bytes_per_partition
            entry.row_count = (entry.row_count or 0) + row_count
            entry.size_bytes = (entry.size_bytes or 0) + sum(
                bytes_per_partition
            )
            # Appends break any previous co-partitioning contract.
            if entry.partitioner is not None and rows_rdd.partitioner != (
                entry.partitioner
            ):
                entry.partitioner = None
                entry.distribute_column = None
        else:
            entry.cached_rdd = blocks
            entry.partition_stats = stats
            entry.partition_bytes = bytes_per_partition
            entry.row_count = row_count
            entry.size_bytes = sum(bytes_per_partition)

    def _materialize_external(
        self, entry: TableEntry, rows_rdd: RDD, append: bool = False
    ) -> None:
        serde = TextSerde(entry.schema)
        partitions = self.ctx.run_job(rows_rdd, list)
        blocks = [serde.encode(part) for part in partitions if part]
        path = entry.path or self._table_path(entry.name)
        entry.path = path
        if append and self.store.exists(path):
            for block in blocks:
                self.store.append_block(path, block)
            entry.row_count = (entry.row_count or 0) + sum(
                len(part) for part in partitions
            )
        else:
            self.store.write_file(path, blocks, format="text", overwrite=True)
            entry.row_count = sum(len(part) for part in partitions)
        entry.size_bytes = self.store.file(path).size_bytes

    @staticmethod
    def _table_path(name: str) -> str:
        return f"/warehouse/{name.lower()}"


def _render_statement(statement: ast.Statement) -> str:
    """Statement text for the journal (re-parsable on replay)."""
    if isinstance(statement, ast.CreateTable):
        return _render_create(statement)
    if isinstance(statement, ast.DropTable):
        suffix = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {suffix}{statement.name}"
    if isinstance(statement, ast.InsertInto):
        if statement.values:
            rows_sql = ", ".join(
                "(" + ", ".join(_render_literal(e) for e in row) + ")"
                for row in statement.values
            )
            return f"INSERT INTO {statement.table} VALUES {rows_sql}"
        return f"INSERT INTO {statement.table} {_render_select(statement.select)}"
    if isinstance(statement, ast.CacheTable):
        verb = "UNCACHE" if statement.uncache else "CACHE"
        return f"{verb} TABLE {statement.name}"
    raise UnsupportedFeatureError(
        f"cannot journal {type(statement).__name__}"
    )


def _render_create(statement: ast.CreateTable) -> str:
    parts = ["CREATE TABLE"]
    if statement.if_not_exists:
        parts.append("IF NOT EXISTS")
    parts.append(statement.name)
    if statement.columns:
        columns = ", ".join(
            f"{c.name} {c.type_name.upper()}" for c in statement.columns
        )
        parts.append(f"({columns})")
    if statement.properties:
        props = ", ".join(
            f"'{k}' = '{v}'" for k, v in statement.properties.items()
        )
        parts.append(f"TBLPROPERTIES ({props})")
    if statement.as_select is not None:
        parts.append("AS " + _render_select(statement.as_select))
    return " ".join(parts)


def _render_select(select: ast.SelectStatement) -> str:
    """SELECT statements journal as their original text is unavailable;
    re-render from the AST (covers the dialect's full surface)."""
    from repro.sql.render import render_select

    return render_select(select)


def _render_literal(expr: ast.Expr) -> str:
    from repro.sql.render import render_expr

    return render_expr(expr)


def _operator_profiles(
    report: Optional[ExecutionReport], profiles: list
) -> list[dict]:
    """Join a report's planner stamps with the run's actual row counts
    (empty when the query had no report, e.g. a pure cache hit)."""
    if report is None or not report.operator_stamps:
        return []
    from repro.obs.planquality import (
        actual_rows_from_profiles,
        build_operator_profiles,
    )

    return build_operator_profiles(
        report.operator_stamps, actual_rows_from_profiles(profiles)
    )


def _wants_cache(properties: dict[str, str]) -> bool:
    return properties.get("shark.cache", "").lower() in ("true", "1", "yes")


def _terminal_status(error: BaseException) -> str:
    from repro.errors import QueryCancelledError, QueryDeadlineExceeded

    if isinstance(error, QueryDeadlineExceeded):
        return "deadline"
    if isinstance(error, QueryCancelledError):
        return "cancelled"
    return "error"


def _status(message: str) -> QueryResult:
    schema = Schema([Field("status", type_by_name("string"))])
    return QueryResult(rows=[(message,)], schema=schema)

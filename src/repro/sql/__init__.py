"""The SQL layer: HiveQL-subset front end, optimizer, physical planner.

Query processing follows the paper's three-step pipeline (Section 2.4):

1. **Parse** (:mod:`repro.sql.lexer`, :mod:`repro.sql.parser`) — query text
   to AST.
2. **Logical plan** (:mod:`repro.sql.analyzer`, :mod:`repro.sql.logical`,
   :mod:`repro.sql.optimizer`) — name/type resolution, then rule-based
   optimization: predicate pushdown, column pruning, constant folding, and
   pushing LIMIT down to individual partitions.
3. **Physical plan** (:mod:`repro.sql.planner`, :mod:`repro.sql.physical`)
   — transformations on RDDs rather than MapReduce jobs, with run-time
   join-strategy selection via Partial DAG Execution (:mod:`repro.pde`),
   co-partitioned joins, and map pruning from partition statistics.
"""

from importlib import import_module

_EXPORTS = {
    "Catalog": "repro.sql.catalog",
    "TableEntry": "repro.sql.catalog",
    "parse": "repro.sql.parser",
    "SqlSession": "repro.sql.session",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.sql' has no attribute {name!r}")
    return getattr(import_module(module_name), name)

"""Expression compilation: bound expression trees -> Python bytecode.

Section 5 of the paper: "for certain queries, when data is served out of
the memory store the majority of the CPU cycles are wasted in interpreting
these evaluators.  We are working on a compiler to transform these
expression evaluators into JVM bytecode."  This module implements that
compiler for the Python engine: a :class:`~repro.sql.expressions.BoundExpr`
tree is translated to a Python source expression, compiled once with
``compile()``, and evaluated per row with zero tree-walking.

Semantics are identical to interpreted evaluation (SQL three-valued logic
included); the test suite cross-checks compiled against interpreted output
on every expression shape, and the planner falls back to interpretation
for any expression the compiler does not cover.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sql.expressions import (
    BoundAnd,
    BoundArithmetic,
    BoundBetween,
    BoundCase,
    BoundCast,
    BoundColumn,
    BoundComparison,
    BoundExpr,
    BoundIn,
    BoundIsNull,
    BoundLike,
    BoundLiteral,
    BoundNegate,
    BoundNot,
    BoundOr,
    BoundScalarCall,
    like_to_regex,
)


class _Emitter:
    """Builds the source expression plus the closure environment."""

    def __init__(self) -> None:
        self.env: dict[str, Any] = {}
        self._counter = 0

    def bind_constant(self, value: Any) -> str:
        """Install a constant in the environment, returning its name."""
        name = f"_c{self._counter}"
        self._counter += 1
        self.env[name] = value
        return name

    def temp(self) -> str:
        """A fresh temporary name for walrus-bound sub-results."""
        name = f"_t{self._counter}"
        self._counter += 1
        return name




def _compile_node(expr: BoundExpr, emitter: _Emitter) -> str:
    if isinstance(expr, BoundLiteral):
        if expr.value is None or isinstance(expr.value, (int, float, str, bool)):
            return repr(expr.value)
        return emitter.bind_constant(expr.value)

    if isinstance(expr, BoundColumn):
        return f"_row[{expr.index}]"

    if isinstance(expr, BoundArithmetic):
        left = _compile_node(expr.left, emitter)
        right = _compile_node(expr.right, emitter)
        a, b = emitter.temp(), emitter.temp()
        if expr.op in ("/", "%"):
            op = "/" if expr.op == "/" else "%"
            return (
                f"(None if ({a} := {left}) is None "
                f"or ({b} := {right}) is None or {b} == 0 "
                f"else {a} {op} {b})"
            )
        return (
            f"(None if ({a} := {left}) is None "
            f"or ({b} := {right}) is None else {a} {expr.op} {b})"
        )

    if isinstance(expr, BoundComparison):
        left = _compile_node(expr.left, emitter)
        right = _compile_node(expr.right, emitter)
        a, b = emitter.temp(), emitter.temp()
        op = {"=": "==", "<>": "!="}.get(expr.op, expr.op)
        return (
            f"(None if ({a} := {left}) is None "
            f"or ({b} := {right}) is None else {a} {op} {b})"
        )

    if isinstance(expr, BoundAnd):
        left = _compile_node(expr.left, emitter)
        right = _compile_node(expr.right, emitter)
        a, b = emitter.temp(), emitter.temp()
        # SQL Kleene AND with short-circuit: the right side is only
        # evaluated when the left is not False.
        return (
            f"(False if ({a} := {left}) is False else "
            f"(False if ({b} := {right}) is False else "
            f"(None if ({a} is None or {b} is None) else True)))"
        )

    if isinstance(expr, BoundOr):
        left = _compile_node(expr.left, emitter)
        right = _compile_node(expr.right, emitter)
        a, b = emitter.temp(), emitter.temp()
        return (
            f"(True if ({a} := {left}) is True else "
            f"(True if ({b} := {right}) is True else "
            f"(None if ({a} is None or {b} is None) else False)))"
        )

    if isinstance(expr, BoundNot):
        operand = _compile_node(expr.operand, emitter)
        v = emitter.temp()
        return f"(None if ({v} := {operand}) is None else (not {v}))"

    if isinstance(expr, BoundNegate):
        operand = _compile_node(expr.operand, emitter)
        v = emitter.temp()
        return f"(None if ({v} := {operand}) is None else -{v})"

    if isinstance(expr, BoundBetween):
        operand = _compile_node(expr.operand, emitter)
        low = _compile_node(expr.low, emitter)
        high = _compile_node(expr.high, emitter)
        v, lo, hi = emitter.temp(), emitter.temp(), emitter.temp()
        core = (
            f"(None if ({v} := {operand}) is None "
            f"or ({lo} := {low}) is None or ({hi} := {high}) is None "
            f"else {'not ' if expr.negated else ''}({lo} <= {v} <= {hi}))"
        )
        return core

    if isinstance(expr, BoundIn):
        operand = _compile_node(expr.operand, emitter)
        v = emitter.temp()
        maybe_not = "not " if expr.negated else ""
        if expr._constant_set is not None:
            constants = emitter.bind_constant(expr._constant_set)
            return (
                f"(None if ({v} := {operand}) is None "
                f"else {maybe_not}({v} in {constants}))"
            )
        options = [_compile_node(option, emitter) for option in expr.options]
        options_src = "(" + ", ".join(options) + ("," if options else "") + ")"
        return (
            f"(None if ({v} := {operand}) is None "
            f"else {maybe_not}({v} in {options_src}))"
        )

    if isinstance(expr, BoundLike):
        operand = _compile_node(expr.operand, emitter)
        v = emitter.temp()
        maybe_not = "not " if expr.negated else ""
        if expr._compiled is not None:
            regex = emitter.bind_constant(expr._compiled.match)
            return (
                f"(None if ({v} := {operand}) is None "
                f"else {maybe_not}({regex}({v}) is not None))"
            )
        pattern = _compile_node(expr.pattern, emitter)
        builder = emitter.bind_constant(like_to_regex)
        p = emitter.temp()
        return (
            f"(None if ({v} := {operand}) is None "
            f"or ({p} := {pattern}) is None "
            f"else {maybe_not}({builder}({p}).match({v}) is not None))"
        )

    if isinstance(expr, BoundIsNull):
        operand = _compile_node(expr.operand, emitter)
        if expr.negated:
            return f"({operand} is not None)"
        return f"({operand} is None)"

    if isinstance(expr, BoundCase):
        source = "None" if expr.otherwise is None else _compile_node(
            expr.otherwise, emitter
        )
        # Build the chain from the last branch backwards so the first
        # matching WHEN wins.
        for condition, value in reversed(expr.branches):
            condition_src = _compile_node(condition, emitter)
            value_src = _compile_node(value, emitter)
            source = (
                f"({value_src} if ({condition_src}) is True else {source})"
            )
        return source

    if isinstance(expr, BoundCast):
        operand = _compile_node(expr.operand, emitter)
        cast_fn = emitter.bind_constant(expr._cast_fn)
        v = emitter.temp()
        return (
            f"(None if ({v} := {operand}) is None else {cast_fn}({v}))"
        )

    if isinstance(expr, BoundScalarCall):
        args = [_compile_node(arg, emitter) for arg in expr.args]
        fn = emitter.bind_constant(expr._fn)
        args_src = ", ".join(args)
        if expr._null_propagating:
            helper = emitter.bind_constant(_call_null_propagating)
            tuple_src = "(" + args_src + ("," if args else "") + ")"
            return f"{helper}({fn}, {tuple_src})"
        return f"{fn}({args_src})"

    raise NotImplementedError(
        f"no codegen for {type(expr).__name__}"
    )


# --- environment helpers (plain functions: picklable, no tree walking) ----



def _call_null_propagating(fn, args):
    if any(arg is None for arg in args):
        return None
    return fn(*args)


def compile_expression(expr: BoundExpr) -> Optional[Callable[[tuple], Any]]:
    """Compile one bound expression to a Python function of the row.

    Returns None when the tree contains a node the compiler does not
    handle (the caller falls back to interpreted ``expr.eval``).
    """
    emitter = _Emitter()
    try:
        source = _compile_node(expr, emitter)
    except NotImplementedError:
        return None
    fn_source = "def _compiled(_row):\n    return " + source
    namespace: dict[str, Any] = dict(emitter.env)
    exec(  # noqa: S102 - generated from a fixed, audited template
        compile(fn_source, "<codegen:expr>", "exec"), namespace
    )
    return namespace["_compiled"]


def compile_projection(
    expressions: list[BoundExpr],
) -> Optional[Callable[[tuple], tuple]]:
    """Compile a whole SELECT list into one tuple-building function."""
    emitter = _Emitter()
    try:
        parts = [_compile_node(expr, emitter) for expr in expressions]
    except NotImplementedError:
        return None
    inner = ", ".join(parts) + ("," if len(parts) == 1 else "")
    fn_source = f"def _compiled(_row):\n    return ({inner})"
    namespace: dict[str, Any] = dict(emitter.env)
    exec(  # noqa: S102
        compile(fn_source, "<codegen:projection>", "exec"), namespace
    )
    return namespace["_compiled"]


def compile_predicate(expr: BoundExpr) -> Optional[Callable[[tuple], bool]]:
    """Compile a WHERE predicate to a row -> bool function (TRUE only)."""
    compiled = compile_expression(expr)
    if compiled is None:
        return None

    def predicate(row: tuple) -> bool:
        return compiled(row) is True

    return predicate


# ---------------------------------------------------------------------------
# Vector kernels (batch-at-a-time compilation)
# ---------------------------------------------------------------------------
#
# The row compiler above turns an expression tree into one Python function
# per *row*; the vector compiler below turns the same tree into one closure
# per *operator* that maps a ColumnBatch to a Vector.  Numeric columns stay
# numpy arrays end to end (NULLs as validity masks, three-valued logic as
# true/false mask pairs); subtrees the compiler cannot vectorize fall back
# to an elementwise interpreter over the batch, so compilation is total —
# the caller only learns *how much* of the tree ran interpreted.
#
# Parity contract: every kernel reproduces the corresponding BoundExpr.eval
# semantics exactly (NULL propagation, division by zero -> NULL, Kleene
# AND/OR, BETWEEN's non-decomposable NULL handling).

import numpy as np  # noqa: E402

from repro.columnar.batch import ColumnBatch, Vector  # noqa: E402


class _Const:
    """A compile-time scalar operand (literal or folded sub-result)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


class _VectorCompileState:
    """Counts subtrees that fell back to the elementwise interpreter."""

    __slots__ = ("interpreted",)

    def __init__(self) -> None:
        self.interpreted = 0


def _values_list(operand, n: int) -> list:
    if isinstance(operand, _Const):
        return [operand.value] * n
    return operand.to_python_list()


def _numeric_operand(operand):
    """(data, valid) with data an upcast ndarray or a Python scalar;
    None when the operand is not numpy-numeric."""
    if isinstance(operand, _Const):
        value = operand.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return value, None
    data = operand.data
    if not isinstance(data, np.ndarray):
        return None
    if data.dtype == np.bool_ or not np.issubdtype(data.dtype, np.number):
        return None
    if np.issubdtype(data.dtype, np.integer) and data.dtype != np.int64:
        data = data.astype(np.int64)
    return data, operand.valid


def _combine_valid(*valids) -> Optional[np.ndarray]:
    out = None
    for valid in valids:
        if valid is None:
            continue
        out = valid if out is None else (out & valid)
    return out


def _all_null(n: int) -> Vector:
    return Vector(np.zeros(n, dtype=np.float64), np.zeros(n, dtype=bool))


def _bool_masks(operand, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Three-valued truth of a boolean operand as (is_true, is_false)."""
    if isinstance(operand, _Const):
        true = np.full(n, operand.value is True)
        false = np.full(n, operand.value is False)
        return true, false
    data = operand.data
    if isinstance(data, np.ndarray) and data.dtype == np.bool_:
        if operand.valid is None:
            return data, ~data
        return data & operand.valid, ~data & operand.valid
    values = _values_list(operand, n)
    true = np.fromiter((v is True for v in values), dtype=bool, count=n)
    false = np.fromiter((v is False for v in values), dtype=bool, count=n)
    return true, false


def _arith_kernel(op: str, fn, left, right, n: int):
    if isinstance(left, _Const) and isinstance(right, _Const):
        a, b = left.value, right.value
        if a is None or b is None:
            return _Const(None)
        if op in ("/", "%") and b == 0:
            return _Const(None)
        return _Const(a / b if op == "/" else fn(a, b))
    if (isinstance(left, _Const) and left.value is None) or (
        isinstance(right, _Const) and right.value is None
    ):
        return _all_null(n)
    if (
        op in ("/", "%")
        and isinstance(right, _Const)
        and right.value == 0
    ):
        return _all_null(n)
    a = _numeric_operand(left)
    b = _numeric_operand(right)
    if a is not None and b is not None:
        (ad, av), (bd, bv) = a, b
        valid = _combine_valid(av, bv)
        if op in ("/", "%") and isinstance(bd, np.ndarray):
            zero = bd == 0
            if np.any(zero):
                nonzero = ~zero
                valid = nonzero if valid is None else (valid & nonzero)
                bd = np.where(zero, 1, bd)
        with np.errstate(all="ignore"):
            if op == "/":
                vals = np.true_divide(ad, bd)
            elif op == "%":
                vals = np.mod(ad, bd)
            elif op == "+":
                vals = ad + bd
            elif op == "-":
                vals = ad - bd
            else:
                vals = ad * bd
        return Vector(vals, valid)
    out = []
    for x, y in zip(_values_list(left, n), _values_list(right, n)):
        if x is None or y is None:
            out.append(None)
        elif op in ("/", "%") and y == 0:
            out.append(None)
        elif op == "/":
            out.append(x / y)
        else:
            out.append(fn(x, y))
    return Vector(out)


_NUMPY_CMP = {
    "=": np.equal, "<>": np.not_equal, "<": np.less,
    "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal,
}


def _compare_kernel(op: str, fn, left, right, n: int):
    if isinstance(left, _Const) and isinstance(right, _Const):
        a, b = left.value, right.value
        if a is None or b is None:
            return _Const(None)
        return _Const(fn(a, b))
    if (isinstance(left, _Const) and left.value is None) or (
        isinstance(right, _Const) and right.value is None
    ):
        return Vector(np.zeros(n, dtype=bool), np.zeros(n, dtype=bool))
    a = _numeric_operand(left)
    b = _numeric_operand(right)
    if a is not None and b is not None:
        (ad, av), (bd, bv) = a, b
        return Vector(_NUMPY_CMP[op](ad, bd), _combine_valid(av, bv))
    out = []
    for x, y in zip(_values_list(left, n), _values_list(right, n)):
        out.append(None if x is None or y is None else fn(x, y))
    return Vector(out)


def _between_kernel(value, low, high, negated: bool, n: int):
    consts = [value, low, high]
    if all(isinstance(c, _Const) for c in consts):
        v, lo, hi = (c.value for c in consts)
        if v is None or lo is None or hi is None:
            return _Const(None)
        result = lo <= v <= hi
        return _Const(not result if negated else result)
    if any(isinstance(c, _Const) and c.value is None for c in consts):
        return Vector(np.zeros(n, dtype=bool), np.zeros(n, dtype=bool))
    v = _numeric_operand(value)
    lo = _numeric_operand(low)
    hi = _numeric_operand(high)
    if v is not None and lo is not None and hi is not None:
        (vd, vv), (lod, lov), (hid, hiv) = v, lo, hi
        vals = (lod <= vd) & (vd <= hid)
        if negated:
            vals = ~vals
        return Vector(vals, _combine_valid(vv, lov, hiv))
    out = []
    for x, lo_v, hi_v in zip(
        _values_list(value, n), _values_list(low, n), _values_list(high, n)
    ):
        if x is None or lo_v is None or hi_v is None:
            out.append(None)
        else:
            result = lo_v <= x <= hi_v
            out.append(not result if negated else result)
    return Vector(out)


def _in_kernel(operand, constant_set: frozenset, negated: bool, n: int):
    if isinstance(operand, _Const):
        if operand.value is None:
            return _Const(None)
        result = operand.value in constant_set
        return _Const(not result if negated else result)
    numeric = _numeric_operand(operand)
    if numeric is not None:
        data, valid = numeric
        options = [
            option for option in constant_set
            if isinstance(option, (int, float))
            and not isinstance(option, bool)
        ]
        vals = np.isin(data, options)
        if negated:
            vals = ~vals
        return Vector(vals, valid)
    out = []
    for v in _values_list(operand, n):
        if v is None:
            out.append(None)
        else:
            result = v in constant_set
            out.append(not result if negated else result)
    return Vector(out)


def _is_null_kernel(operand, negated: bool, n: int):
    if isinstance(operand, _Const):
        result = operand.value is None
        return _Const(not result if negated else result)
    data = operand.data
    if isinstance(data, np.ndarray):
        if operand.valid is None:
            vals = np.zeros(n, dtype=bool)
        else:
            vals = ~operand.valid
    else:
        vals = np.fromiter(
            (v is None for v in data), dtype=bool, count=n
        )
    if negated:
        vals = ~vals
    return Vector(vals)


def _interpret_subtree(expr: BoundExpr, width: int, state: _VectorCompileState):
    """Whole-subtree fallback: evaluate ``expr.eval`` per batch row.

    Still batch-granular (columns are materialized once per batch, rows
    are reused buffers), and exactly the row semantics by construction.
    """
    state.interpreted += 1
    references = sorted(expr.references())
    evaluate = expr.eval

    def run(batch: ColumnBatch):
        columns = [
            (index, batch.vector(index).to_python_list())
            for index in references
        ]
        row = [None] * width
        out = []
        for r in range(batch.num_rows):
            for index, values in columns:
                row[index] = values[r]
            out.append(evaluate(row))
        return Vector(out)

    return run


def _vector_node(expr: BoundExpr, width: int, state: _VectorCompileState):
    """Compile one expression node to a closure ``batch -> Vector|_Const``."""
    if isinstance(expr, BoundLiteral):
        constant = _Const(expr.value)
        return lambda batch: constant
    if isinstance(expr, BoundColumn):
        index = expr.index
        return lambda batch: batch.vector(index)
    if isinstance(expr, BoundArithmetic):
        left = _vector_node(expr.left, width, state)
        right = _vector_node(expr.right, width, state)
        op, fn = expr.op, expr._fn
        return lambda batch: _arith_kernel(
            op, fn, left(batch), right(batch), batch.num_rows
        )
    if isinstance(expr, BoundComparison):
        left = _vector_node(expr.left, width, state)
        right = _vector_node(expr.right, width, state)
        op, fn = expr.op, expr._fn
        return lambda batch: _compare_kernel(
            op, fn, left(batch), right(batch), batch.num_rows
        )
    if isinstance(expr, BoundAnd):
        left = _vector_node(expr.left, width, state)
        right = _vector_node(expr.right, width, state)

        def kernel_and(batch: ColumnBatch):
            n = batch.num_rows
            lt, lf = _bool_masks(left(batch), n)
            rt, rf = _bool_masks(right(batch), n)
            true = lt & rt
            false = lf | rf
            return Vector(true, true | false)

        return kernel_and
    if isinstance(expr, BoundOr):
        left = _vector_node(expr.left, width, state)
        right = _vector_node(expr.right, width, state)

        def kernel_or(batch: ColumnBatch):
            n = batch.num_rows
            lt, lf = _bool_masks(left(batch), n)
            rt, rf = _bool_masks(right(batch), n)
            true = lt | rt
            false = lf & rf
            return Vector(true, true | false)

        return kernel_or
    if isinstance(expr, BoundNot):
        operand = _vector_node(expr.operand, width, state)

        def kernel_not(batch: ColumnBatch):
            true, false = _bool_masks(operand(batch), batch.num_rows)
            return Vector(false, true | false)

        return kernel_not
    if isinstance(expr, BoundNegate):
        operand = _vector_node(expr.operand, width, state)

        def kernel_negate(batch: ColumnBatch):
            value = operand(batch)
            if isinstance(value, _Const):
                if value.value is None:
                    return _Const(None)
                return _Const(-value.value)
            numeric = _numeric_operand(value)
            if numeric is not None:
                data, valid = numeric
                return Vector(-data, valid)
            return Vector([
                None if v is None else -v
                for v in _values_list(value, batch.num_rows)
            ])

        return kernel_negate
    if isinstance(expr, BoundBetween):
        value = _vector_node(expr.operand, width, state)
        low = _vector_node(expr.low, width, state)
        high = _vector_node(expr.high, width, state)
        negated = expr.negated
        return lambda batch: _between_kernel(
            value(batch), low(batch), high(batch), negated, batch.num_rows
        )
    if isinstance(expr, BoundIn) and expr._constant_set is not None:
        operand = _vector_node(expr.operand, width, state)
        constant_set, negated = expr._constant_set, expr.negated
        return lambda batch: _in_kernel(
            operand(batch), constant_set, negated, batch.num_rows
        )
    if isinstance(expr, BoundIsNull):
        operand = _vector_node(expr.operand, width, state)
        negated = expr.negated
        return lambda batch: _is_null_kernel(
            operand(batch), negated, batch.num_rows
        )
    if isinstance(expr, BoundLike) and expr._compiled is not None:
        operand = _vector_node(expr.operand, width, state)
        regex, negated = expr._compiled, expr.negated

        def kernel_like(batch: ColumnBatch):
            value = operand(batch)
            if isinstance(value, _Const):
                if value.value is None:
                    return _Const(None)
                result = regex.match(value.value) is not None
                return _Const(not result if negated else result)
            out = []
            for v in _values_list(value, batch.num_rows):
                if v is None:
                    out.append(None)
                else:
                    result = regex.match(v) is not None
                    out.append(not result if negated else result)
            return Vector(out)

        return kernel_like
    # CASE, CAST, scalar calls, correlated IN, dynamic LIKE: interpret the
    # whole subtree against batch columns.
    return _interpret_subtree(expr, width, state)


def _broadcast(result, n: int) -> Vector:
    if isinstance(result, _Const):
        return Vector([result.value] * n)
    return result


def compile_vector_expression(
    expr: BoundExpr, width: int
) -> tuple[Callable[[ColumnBatch], Vector], int]:
    """Compile ``expr`` to a batch kernel.

    Returns ``(kernel, interpreted)``: the kernel maps a ColumnBatch to a
    Vector of ``batch.num_rows`` results; ``interpreted`` counts subtrees
    that run through the elementwise fallback rather than numpy.
    Compilation is total — every expression gets a kernel.
    """
    state = _VectorCompileState()
    node = _vector_node(expr, width, state)
    return (lambda batch: _broadcast(node(batch), batch.num_rows),
            state.interpreted)


def compile_vector_predicate(
    expr: BoundExpr, width: int
) -> tuple[Callable[[ColumnBatch], np.ndarray], int]:
    """Compile a predicate to a kernel producing a keep-mask (TRUE only;
    NULL and FALSE both drop the row, as in the row path)."""
    state = _VectorCompileState()
    node = _vector_node(expr, width, state)

    def predicate(batch: ColumnBatch) -> np.ndarray:
        n = batch.num_rows
        result = node(batch)
        true, _ = _bool_masks(result, n)
        return true

    return predicate, state.interpreted


def compile_vector_projection(
    expressions: list[BoundExpr], width: int
) -> tuple[list, int]:
    """Compile a SELECT list to per-output plans.

    Each element is ``("col", ordinal)`` for a bare column reference —
    the pipeline moves the (possibly still encoded) entry without
    decoding — or ``("expr", kernel)`` for a computed output.
    """
    state = _VectorCompileState()
    plans: list = []
    for expr in expressions:
        if isinstance(expr, BoundColumn):
            plans.append(("col", expr.index))
        else:
            node = _vector_node(expr, width, state)
            plans.append(
                ("expr",
                 (lambda kernel: lambda batch: _broadcast(
                     kernel(batch), batch.num_rows))(node))
            )
    return plans, state.interpreted

"""Expression compilation: bound expression trees -> Python bytecode.

Section 5 of the paper: "for certain queries, when data is served out of
the memory store the majority of the CPU cycles are wasted in interpreting
these evaluators.  We are working on a compiler to transform these
expression evaluators into JVM bytecode."  This module implements that
compiler for the Python engine: a :class:`~repro.sql.expressions.BoundExpr`
tree is translated to a Python source expression, compiled once with
``compile()``, and evaluated per row with zero tree-walking.

Semantics are identical to interpreted evaluation (SQL three-valued logic
included); the test suite cross-checks compiled against interpreted output
on every expression shape, and the planner falls back to interpretation
for any expression the compiler does not cover.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sql.expressions import (
    BoundAnd,
    BoundArithmetic,
    BoundBetween,
    BoundCase,
    BoundCast,
    BoundColumn,
    BoundComparison,
    BoundExpr,
    BoundIn,
    BoundIsNull,
    BoundLike,
    BoundLiteral,
    BoundNegate,
    BoundNot,
    BoundOr,
    BoundScalarCall,
    like_to_regex,
)


class _Emitter:
    """Builds the source expression plus the closure environment."""

    def __init__(self) -> None:
        self.env: dict[str, Any] = {}
        self._counter = 0

    def bind_constant(self, value: Any) -> str:
        """Install a constant in the environment, returning its name."""
        name = f"_c{self._counter}"
        self._counter += 1
        self.env[name] = value
        return name

    def temp(self) -> str:
        """A fresh temporary name for walrus-bound sub-results."""
        name = f"_t{self._counter}"
        self._counter += 1
        return name




def _compile_node(expr: BoundExpr, emitter: _Emitter) -> str:
    if isinstance(expr, BoundLiteral):
        if expr.value is None or isinstance(expr.value, (int, float, str, bool)):
            return repr(expr.value)
        return emitter.bind_constant(expr.value)

    if isinstance(expr, BoundColumn):
        return f"_row[{expr.index}]"

    if isinstance(expr, BoundArithmetic):
        left = _compile_node(expr.left, emitter)
        right = _compile_node(expr.right, emitter)
        a, b = emitter.temp(), emitter.temp()
        if expr.op in ("/", "%"):
            op = "/" if expr.op == "/" else "%"
            return (
                f"(None if ({a} := {left}) is None "
                f"or ({b} := {right}) is None or {b} == 0 "
                f"else {a} {op} {b})"
            )
        return (
            f"(None if ({a} := {left}) is None "
            f"or ({b} := {right}) is None else {a} {expr.op} {b})"
        )

    if isinstance(expr, BoundComparison):
        left = _compile_node(expr.left, emitter)
        right = _compile_node(expr.right, emitter)
        a, b = emitter.temp(), emitter.temp()
        op = {"=": "==", "<>": "!="}.get(expr.op, expr.op)
        return (
            f"(None if ({a} := {left}) is None "
            f"or ({b} := {right}) is None else {a} {op} {b})"
        )

    if isinstance(expr, BoundAnd):
        left = _compile_node(expr.left, emitter)
        right = _compile_node(expr.right, emitter)
        a, b = emitter.temp(), emitter.temp()
        # SQL Kleene AND with short-circuit: the right side is only
        # evaluated when the left is not False.
        return (
            f"(False if ({a} := {left}) is False else "
            f"(False if ({b} := {right}) is False else "
            f"(None if ({a} is None or {b} is None) else True)))"
        )

    if isinstance(expr, BoundOr):
        left = _compile_node(expr.left, emitter)
        right = _compile_node(expr.right, emitter)
        a, b = emitter.temp(), emitter.temp()
        return (
            f"(True if ({a} := {left}) is True else "
            f"(True if ({b} := {right}) is True else "
            f"(None if ({a} is None or {b} is None) else False)))"
        )

    if isinstance(expr, BoundNot):
        operand = _compile_node(expr.operand, emitter)
        v = emitter.temp()
        return f"(None if ({v} := {operand}) is None else (not {v}))"

    if isinstance(expr, BoundNegate):
        operand = _compile_node(expr.operand, emitter)
        v = emitter.temp()
        return f"(None if ({v} := {operand}) is None else -{v})"

    if isinstance(expr, BoundBetween):
        operand = _compile_node(expr.operand, emitter)
        low = _compile_node(expr.low, emitter)
        high = _compile_node(expr.high, emitter)
        v, lo, hi = emitter.temp(), emitter.temp(), emitter.temp()
        core = (
            f"(None if ({v} := {operand}) is None "
            f"or ({lo} := {low}) is None or ({hi} := {high}) is None "
            f"else {'not ' if expr.negated else ''}({lo} <= {v} <= {hi}))"
        )
        return core

    if isinstance(expr, BoundIn):
        operand = _compile_node(expr.operand, emitter)
        v = emitter.temp()
        maybe_not = "not " if expr.negated else ""
        if expr._constant_set is not None:
            constants = emitter.bind_constant(expr._constant_set)
            return (
                f"(None if ({v} := {operand}) is None "
                f"else {maybe_not}({v} in {constants}))"
            )
        options = [_compile_node(option, emitter) for option in expr.options]
        options_src = "(" + ", ".join(options) + ("," if options else "") + ")"
        return (
            f"(None if ({v} := {operand}) is None "
            f"else {maybe_not}({v} in {options_src}))"
        )

    if isinstance(expr, BoundLike):
        operand = _compile_node(expr.operand, emitter)
        v = emitter.temp()
        maybe_not = "not " if expr.negated else ""
        if expr._compiled is not None:
            regex = emitter.bind_constant(expr._compiled.match)
            return (
                f"(None if ({v} := {operand}) is None "
                f"else {maybe_not}({regex}({v}) is not None))"
            )
        pattern = _compile_node(expr.pattern, emitter)
        builder = emitter.bind_constant(like_to_regex)
        p = emitter.temp()
        return (
            f"(None if ({v} := {operand}) is None "
            f"or ({p} := {pattern}) is None "
            f"else {maybe_not}({builder}({p}).match({v}) is not None))"
        )

    if isinstance(expr, BoundIsNull):
        operand = _compile_node(expr.operand, emitter)
        if expr.negated:
            return f"({operand} is not None)"
        return f"({operand} is None)"

    if isinstance(expr, BoundCase):
        source = "None" if expr.otherwise is None else _compile_node(
            expr.otherwise, emitter
        )
        # Build the chain from the last branch backwards so the first
        # matching WHEN wins.
        for condition, value in reversed(expr.branches):
            condition_src = _compile_node(condition, emitter)
            value_src = _compile_node(value, emitter)
            source = (
                f"({value_src} if ({condition_src}) is True else {source})"
            )
        return source

    if isinstance(expr, BoundCast):
        operand = _compile_node(expr.operand, emitter)
        cast_fn = emitter.bind_constant(expr._cast_fn)
        v = emitter.temp()
        return (
            f"(None if ({v} := {operand}) is None else {cast_fn}({v}))"
        )

    if isinstance(expr, BoundScalarCall):
        args = [_compile_node(arg, emitter) for arg in expr.args]
        fn = emitter.bind_constant(expr._fn)
        args_src = ", ".join(args)
        if expr._null_propagating:
            helper = emitter.bind_constant(_call_null_propagating)
            tuple_src = "(" + args_src + ("," if args else "") + ")"
            return f"{helper}({fn}, {tuple_src})"
        return f"{fn}({args_src})"

    raise NotImplementedError(
        f"no codegen for {type(expr).__name__}"
    )


# --- environment helpers (plain functions: picklable, no tree walking) ----



def _call_null_propagating(fn, args):
    if any(arg is None for arg in args):
        return None
    return fn(*args)


def compile_expression(expr: BoundExpr) -> Optional[Callable[[tuple], Any]]:
    """Compile one bound expression to a Python function of the row.

    Returns None when the tree contains a node the compiler does not
    handle (the caller falls back to interpreted ``expr.eval``).
    """
    emitter = _Emitter()
    try:
        source = _compile_node(expr, emitter)
    except NotImplementedError:
        return None
    fn_source = "def _compiled(_row):\n    return " + source
    namespace: dict[str, Any] = dict(emitter.env)
    exec(  # noqa: S102 - generated from a fixed, audited template
        compile(fn_source, "<codegen:expr>", "exec"), namespace
    )
    return namespace["_compiled"]


def compile_projection(
    expressions: list[BoundExpr],
) -> Optional[Callable[[tuple], tuple]]:
    """Compile a whole SELECT list into one tuple-building function."""
    emitter = _Emitter()
    try:
        parts = [_compile_node(expr, emitter) for expr in expressions]
    except NotImplementedError:
        return None
    inner = ", ".join(parts) + ("," if len(parts) == 1 else "")
    fn_source = f"def _compiled(_row):\n    return ({inner})"
    namespace: dict[str, Any] = dict(emitter.env)
    exec(  # noqa: S102
        compile(fn_source, "<codegen:projection>", "exec"), namespace
    )
    return namespace["_compiled"]


def compile_predicate(expr: BoundExpr) -> Optional[Callable[[tuple], bool]]:
    """Compile a WHERE predicate to a row -> bool function (TRUE only)."""
    compiled = compile_expression(expr)
    if compiled is None:
        return None

    def predicate(row: tuple) -> bool:
        return compiled(row) is True

    return predicate

"""Physical operators: logical nodes lowered to RDD transformations.

Each helper takes child RDDs of row tuples and returns a new RDD.  The
planner (:mod:`repro.sql.planner`) decides *which* helper to use (join
strategies, PDE, map pruning); the helpers only build dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from repro.cluster.worker import approximate_size_bytes
from repro.columnar.table import ColumnarPartition
from repro.costmodel.models import SOURCE_MEMORY
from repro.datatypes import Schema
from repro.engine.dependencies import OneToOneDependency, ShuffleDependency
from repro.engine.memory import DRIVER_WORKER, EXECUTION
from repro.engine.partitioner import HashPartitioner, Partitioner
from repro.engine.rdd import (
    RDD,
    CoGroupedRDD,
    MapPartitionsRDD,
    PrunedRDD,
    ShuffledRDD,
)
from repro.engine.spill import SpillableGroups
from repro.engine.task import current_task_context
from repro.obs.planquality import OperatorStamp, record_operator_rows
from repro.sql.expressions import BoundExpr
from repro.sql.functions import (
    AvgAggregate,
    CountAggregate,
    MaxAggregate,
    MinAggregate,
    SumAggregate,
)
from repro.sql.logical import AggregateSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import EngineContext
    from repro.engine.task import TaskContext
    from repro.sql.catalog import TableEntry


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VectorFilter:
    """One vectorizable conjunct pushed into the columnar scan.

    ``kind`` is one of 'cmp' (with ``op`` in =, <>, <, <=, >, >=), 'between',
    'in', 'isnull', 'notnull'.  Evaluated column-at-a-time with numpy over
    the decoded column — the "better cache behavior" benefit of columnar
    layout (Section 3.2) — before any row tuple is built.
    """

    column: str
    kind: str
    op: str = ""
    values: tuple = ()


def _row_fallback_value(spec: VectorFilter, value) -> bool:
    """Row-level re-check of one vector filter, for blocks where the
    column could not be evaluated vectorized (mixed/object arrays)."""
    if spec.kind == "cmp":
        if value is None:
            return False
        target = spec.values[0]
        try:
            return {
                "=": value == target,
                "<>": value != target,
                "<": value < target,
                "<=": value <= target,
                ">": value > target,
                ">=": value >= target,
            }[spec.op]
        except TypeError:
            return False
    if spec.kind == "between":
        if value is None:
            return False
        low, high = spec.values
        try:
            return low <= value <= high
        except TypeError:
            return False
    if spec.kind == "in":
        return value is not None and value in spec.values
    if spec.kind == "isnull":
        return value is None
    if spec.kind == "notnull":
        return value is not None
    return True


def _filter_mask(block: ColumnarPartition, spec: VectorFilter):
    """Boolean mask for one vector filter over one block, or None when the
    column cannot be evaluated vectorized (e.g. NULLs in an object array).
    """
    values = block.column_by_name(spec.column)
    if isinstance(values, np.ndarray) and values.dtype != object:
        array = values
        notnull = None  # primitive arrays cannot hold NULLs
    else:
        array = np.asarray(values, dtype=object)
        # SQL: a NULL operand makes the predicate non-TRUE, so NULL rows
        # are excluded from every mask kind except isnull.
        notnull = np.fromiter(
            (value is not None for value in values), dtype=bool,
            count=len(array),
        )
    try:
        if spec.kind == "cmp":
            target = spec.values[0]
            mask = {
                "=": lambda: array == target,
                "<>": lambda: array != target,
                "<": lambda: array < target,
                "<=": lambda: array <= target,
                ">": lambda: array > target,
                ">=": lambda: array >= target,
            }[spec.op]()
        elif spec.kind == "between":
            low, high = spec.values
            mask = (array >= low) & (array <= high)
        elif spec.kind == "in":
            if array.dtype == object:
                options = set(spec.values)
                mask = np.fromiter(
                    (value in options for value in values), dtype=bool,
                    count=len(array),
                )
            else:
                mask = np.isin(
                    array, np.asarray(list(spec.values), dtype=array.dtype)
                )
        elif spec.kind == "isnull":
            return (
                ~notnull
                if notnull is not None
                else np.zeros(len(array), dtype=bool)
            )
        elif spec.kind == "notnull":
            return (
                notnull
                if notnull is not None
                else np.ones(len(array), dtype=bool)
            )
        else:
            return None
    except TypeError:
        return None  # incomparable mixed column: fall back to row filter
    mask = np.asarray(mask, dtype=bool)
    if notnull is not None:
        mask = mask & notnull
    return mask


class MemstoreScanRDD(RDD):
    """Scan a cached table's columnar partitions into row tuples.

    Performs late materialization: only the projected columns are decoded
    (the benefit of the columnar layout, Section 3.2), and vectorizable
    predicates run column-at-a-time over the arrays so row tuples are only
    built for surviving rows.  The parent RDD's elements are
    :class:`ColumnarPartition` blocks, one per partition.
    """

    def __init__(
        self,
        parent: RDD,
        table_schema: Schema,
        projected: Optional[list[str]] = None,
        vector_filters: tuple = (),
        scan_key: Optional[str] = None,
        filter_key: Optional[str] = None,
    ):
        super().__init__(
            parent.ctx,
            parent.num_partitions,
            [OneToOneDependency(parent)],
            name="memstore_scan",
        )
        self._parent = parent
        self._projected = projected
        self._table_schema = table_schema
        self._vector_filters = tuple(vector_filters)
        #: Plan-quality stamp keys: the scan is credited with rows read
        #: (pre-filter); ``filter_key`` is set only when the pushed-down
        #: vector filters are the whole predicate, so the surviving rows
        #: are the filter operator's actual output.
        self._scan_key = scan_key
        self._filter_key = filter_key
        #: Filters that could not be evaluated vectorized on some block
        #: must still hold: the caller keeps them in the row-level filter,
        #: so a None mask here is only a lost optimization, never a wrong
        #: result... unless the caller *removed* them.  We therefore apply
        #: the row-level fallback ourselves for failed specs.

    def _row_fallback(self, spec: VectorFilter, value) -> bool:
        return _row_fallback_value(spec, value)

    def compute(self, split: int, task_ctx: "TaskContext") -> list:
        blocks = self._parent.iterator(split, task_ctx)
        rows: list[tuple] = []
        total_bytes = 0
        total_records = 0
        for block in blocks:
            if not isinstance(block, ColumnarPartition):
                raise TypeError(
                    f"memstore partition holds {type(block).__name__}, "
                    f"expected ColumnarPartition"
                )
            total_records += block.num_rows

            # Vectorized predicate pass: one numpy mask per conjunct.
            mask = None
            fallback_specs: list[VectorFilter] = []
            for spec in self._vector_filters:
                spec_mask = _filter_mask(block, spec)
                if spec_mask is None:
                    fallback_specs.append(spec)
                    continue
                mask = spec_mask if mask is None else (mask & spec_mask)

            if mask is not None:
                selected = np.nonzero(np.asarray(mask, dtype=bool))[0]
            else:
                selected = range(block.num_rows)

            if self._projected is None:
                indices = list(range(len(block.schema)))
                total_bytes += block.memory_footprint_bytes()
            else:
                indices = [
                    block.schema.index_of(name) for name in self._projected
                ]
                total_bytes += sum(
                    block.encoded_column(i).compressed_bytes for i in indices
                )
            columns = [block.column(i) for i in indices]
            if fallback_specs:
                fallback_columns = [
                    block.column_by_name(spec.column)
                    for spec in fallback_specs
                ]
            to_python = ColumnarPartition._to_python
            for row_index in selected:
                if fallback_specs and not all(
                    self._row_fallback(spec, column[row_index])
                    for spec, column in zip(fallback_specs, fallback_columns)
                ):
                    continue
                rows.append(
                    tuple(
                        to_python(column[row_index]) for column in columns
                    )
                )
        task_ctx.metrics.source = SOURCE_MEMORY
        task_ctx.metrics.records_in += total_records
        task_ctx.metrics.bytes_in += total_bytes
        if self._scan_key is not None:
            record_operator_rows(self._scan_key, total_records)
        if self._filter_key is not None:
            record_operator_rows(self._filter_key, len(rows))
        return rows


def scan_memstore(
    entry: "TableEntry",
    projected: Optional[list[str]],
    kept_partitions: Optional[list[int]] = None,
    vector_filters: tuple = (),
    scan_op: Optional[OperatorStamp] = None,
    filter_op: Optional[OperatorStamp] = None,
) -> RDD:
    """Build the scan dataflow for a cached table, optionally map-pruned
    and with vectorizable predicates pushed into the columnar scan."""
    base = entry.cached_rdd
    if base is None:
        raise ValueError(f"table {entry.name} has no cached data")
    if kept_partitions is not None and kept_partitions != list(
        range(base.num_partitions)
    ):
        base = PrunedRDD(base, kept_partitions)
    return MemstoreScanRDD(
        base, entry.schema, projected, vector_filters=vector_filters,
        scan_key=scan_op.key if scan_op is not None else None,
        filter_key=filter_op.key if filter_op is not None else None,
    )


# ---------------------------------------------------------------------------
# Batch pipeline (vectorized execution past the scan)
# ---------------------------------------------------------------------------


def _vector_validity(vector, n: int):
    """Positions holding non-NULL values, or None when all are valid."""
    data = vector.data
    if isinstance(data, np.ndarray):
        return vector.valid
    return np.fromiter((v is not None for v in data), dtype=bool, count=n)


class BatchAggregator:
    """Vectorized task-local hash aggregation over ColumnBatches.

    Produces exactly the ``(group_key, accumulators)`` pairs of
    :func:`_partial_aggregate_partition` — downstream merge/finish stages
    are shared with the row path, so the two pipelines differ only in how
    partials are built.  Group identity is resolved batch-at-a-time:
    dictionary-encoded group columns aggregate directly on their integer
    codes (never decoding the column), primitive columns go through
    ``np.unique``, and everything else falls back to a per-row dict probe.
    Accumulator updates use per-group numpy reductions whose accumulation
    order matches the row path's left-to-right updates.
    """

    def __init__(
        self,
        group_kernels: list,
        group_ordinals: list,
        specs: list[AggregateSpec],
        arg_kernels: list,
    ):
        self.group_kernels = group_kernels
        self.group_ordinals = group_ordinals
        self.specs = specs
        self.arg_kernels = arg_kernels
        #: Spillable group state, registered with the accountant's
        #: arbitration path for the running task's worker; ``groups``
        #: aliases its live dict so the update kernels stay unchanged.
        self.state = SpillableGroups(
            [spec.function for spec in specs], "batch_aggregate"
        )
        self.groups: dict[tuple, list] = self.state.groups

    # -- group identity -------------------------------------------------
    def _group_ids(self, batch) -> tuple[np.ndarray, list]:
        """(group id per row, local key list) for one batch."""
        n = batch.num_rows
        if not self.group_kernels:
            return np.zeros(n, dtype=np.int64), [()]
        if len(self.group_kernels) == 1 and self.group_ordinals[0] is not None:
            view = batch.codes(self.group_ordinals[0])
            if view is not None:
                codes, dictionary = view
                uniq, gids = np.unique(codes, return_inverse=True)
                to_python = ColumnarPartition._to_python
                keys = [(to_python(dictionary[code]),) for code in uniq]
                return gids, keys
        vectors = [kernel(batch) for kernel in self.group_kernels]
        if len(vectors) == 1:
            vector = vectors[0]
            data = vector.data
            if (
                isinstance(data, np.ndarray)
                and data.dtype != object
                and vector.valid is None
                and not (
                    np.issubdtype(data.dtype, np.floating)
                    and np.isnan(data).any()
                )
            ):
                uniq, gids = np.unique(data, return_inverse=True)
                keys = [(value,) for value in uniq.tolist()]
                return gids, keys
        columns = [vector.to_python_list() for vector in vectors]
        mapping: dict[tuple, int] = {}
        keys: list[tuple] = []
        gids = np.empty(n, dtype=np.int64)
        for r in range(n):
            key = tuple(column[r] for column in columns)
            gid = mapping.get(key)
            if gid is None:
                gid = len(keys)
                mapping[key] = gid
                keys.append(key)
            gids[r] = gid
        return gids, keys

    # -- accumulator updates --------------------------------------------
    @staticmethod
    def _masked(data: np.ndarray, valid, gids: np.ndarray):
        if valid is None:
            return data, gids
        return data[valid], gids[valid]

    def _numeric_data(self, vector, n: int):
        """(values, group-able validity) when the argument is a numeric
        array the grouped reductions can run on; None otherwise."""
        data = vector.data
        if not isinstance(data, np.ndarray):
            return None
        if data.dtype == np.bool_ or not np.issubdtype(data.dtype, np.number):
            return None
        return data, _vector_validity(vector, n)

    def _update_count(self, j, fn, kernel, batch, gids, group_accs):
        k = len(group_accs)
        n = batch.num_rows
        if fn.count_star or kernel is None:
            counts = np.bincount(gids, minlength=k)
        else:
            vector = kernel(batch)
            valid = _vector_validity(vector, n)
            if valid is None:
                counts = np.bincount(gids, minlength=k)
            else:
                counts = np.bincount(gids[valid], minlength=k)
        for g in range(k):
            count = counts[g]
            if count:
                accs = group_accs[g]
                accs[j] = accs[j] + int(count)

    def _update_sum(self, j, fn, kernel, batch, gids, group_accs):
        k = len(group_accs)
        vector = kernel(batch)
        numeric = self._numeric_data(vector, batch.num_rows)
        if numeric is None:
            self._update_generic(j, fn, vector, batch, gids, group_accs)
            return
        data, valid = numeric
        sub_data, sub_gids = self._masked(data, valid, gids)
        counts = np.bincount(sub_gids, minlength=k)
        if np.issubdtype(sub_data.dtype, np.integer):
            # Exact integer sums; bail to the row loop if a 64-bit
            # accumulator could overflow where Python ints would not.
            if sub_data.size and int(np.abs(sub_data).max()) > (2**62) // max(
                int(counts.max()), 1
            ):
                self._update_generic(j, fn, vector, batch, gids, group_accs)
                return
            sums = np.zeros(k, dtype=np.int64)
            np.add.at(sums, sub_gids, sub_data.astype(np.int64, copy=False))
            convert = int
        else:
            # np.bincount adds weights in input order: the same
            # left-to-right accumulation sequence as the row path.
            sums = np.bincount(sub_gids, weights=sub_data, minlength=k)
            convert = float
        for g in range(k):
            if counts[g]:
                accs = group_accs[g]
                value = convert(sums[g])
                accs[j] = value if accs[j] is None else accs[j] + value

    def _update_avg(self, j, fn, kernel, batch, gids, group_accs):
        k = len(group_accs)
        vector = kernel(batch)
        numeric = self._numeric_data(vector, batch.num_rows)
        if numeric is None:
            self._update_generic(j, fn, vector, batch, gids, group_accs)
            return
        data, valid = numeric
        sub_data, sub_gids = self._masked(data, valid, gids)
        if sub_data.size and np.issubdtype(sub_data.dtype, np.integer) and int(
            np.abs(sub_data).max()
        ) > 2**52:
            # Float64 weights would round large ints differently per batch.
            self._update_generic(j, fn, vector, batch, gids, group_accs)
            return
        sums = np.bincount(sub_gids, weights=sub_data, minlength=k)
        counts = np.bincount(sub_gids, minlength=k)
        for g in range(k):
            if counts[g]:
                accs = group_accs[g]
                total, count = accs[j]
                accs[j] = (total + float(sums[g]), count + int(counts[g]))

    def _update_min_max(self, j, fn, kernel, batch, gids, group_accs):
        k = len(group_accs)
        vector = kernel(batch)
        numeric = self._numeric_data(vector, batch.num_rows)
        if numeric is None:
            self._update_generic(j, fn, vector, batch, gids, group_accs)
            return
        data, valid = numeric
        sub_data, sub_gids = self._masked(data, valid, gids)
        is_float = np.issubdtype(sub_data.dtype, np.floating)
        if is_float and np.isnan(sub_data).any():
            # NaN poisons np.minimum/maximum but not Python comparisons.
            self._update_generic(j, fn, vector, batch, gids, group_accs)
            return
        minimum = isinstance(fn, MinAggregate)
        if is_float:
            fill = np.inf if minimum else -np.inf
            extremes = np.full(k, fill, dtype=np.float64)
            convert = float
        else:
            info = np.iinfo(np.int64)
            fill = info.max if minimum else info.min
            extremes = np.full(k, fill, dtype=np.int64)
            convert = int
        reducer = np.minimum if minimum else np.maximum
        reducer.at(extremes, sub_gids, sub_data)
        counts = np.bincount(sub_gids, minlength=k)
        for g in range(k):
            if counts[g]:
                accs = group_accs[g]
                accs[j] = fn.merge(accs[j], convert(extremes[g]))

    def _update_generic(self, j, fn, vector, batch, gids, group_accs):
        """Row-order fn.update loop: exact semantics for any aggregate."""
        values = vector.to_python_list() if vector is not None else None
        update = fn.update
        for r in range(batch.num_rows):
            accs = group_accs[gids[r]]
            accs[j] = update(
                accs[j], values[r] if values is not None else None
            )

    # -- public API ------------------------------------------------------
    def consume(self, batch) -> None:
        gids, keys = self._group_ids(batch)
        group_accs = []
        spilled_gids: set[int] = set()
        for g, key in enumerate(keys):
            accs = self.state.live_accs(key)
            if accs is None:
                # Key's bucket already spilled: the vectorized updates
                # below land in a discarded sink; the rows themselves
                # are routed raw afterwards and replayed at finish.
                spilled_gids.add(g)
                accs = [spec.function.initial() for spec in self.specs]
            group_accs.append(accs)
        for j, spec in enumerate(self.specs):
            fn = spec.function
            kernel = self.arg_kernels[j]
            if fn.distinct:
                vector = kernel(batch) if kernel is not None else None
                self._update_generic(j, fn, vector, batch, gids, group_accs)
            elif isinstance(fn, CountAggregate):
                self._update_count(j, fn, kernel, batch, gids, group_accs)
            elif isinstance(fn, SumAggregate):
                self._update_sum(j, fn, kernel, batch, gids, group_accs)
            elif isinstance(fn, AvgAggregate):
                self._update_avg(j, fn, kernel, batch, gids, group_accs)
            elif isinstance(fn, (MinAggregate, MaxAggregate)):
                self._update_min_max(j, fn, kernel, batch, gids, group_accs)
            else:
                vector = kernel(batch) if kernel is not None else None
                self._update_generic(j, fn, vector, batch, gids, group_accs)
        if spilled_gids:
            self._route_spilled_rows(batch, gids, keys, spilled_gids)
        # Charge this batch's accumulator growth (new groups only) to
        # the running task's execution pool; the reservation may itself
        # arbitrate, spilling buckets of the state just built.
        self.state.charge_pending()

    def _route_spilled_rows(
        self, batch, gids, keys, spilled_gids: set[int]
    ) -> None:
        """Append rows belonging to spilled buckets as raw
        ``(key, argument values)`` records, in arrival order."""
        columns = [
            kernel(batch).to_python_list() if kernel is not None else None
            for kernel in self.arg_kernels
        ]
        append_raw = self.state.append_raw
        for r in range(batch.num_rows):
            g = int(gids[r])
            if g in spilled_gids:
                append_raw(
                    keys[g],
                    [
                        column[r] if column is not None else None
                        for column in columns
                    ],
                )

    def memory_footprint_bytes(self) -> int:
        """Exact heap bytes of the accumulated (live) group state."""
        return approximate_size_bytes(self.groups)

    def finish(self) -> list:
        if (
            not self.group_kernels
            and not self.groups
            and not self.state.spilled
        ):
            # Global aggregation over an empty partition still yields one
            # group (COUNT(*) over zero rows is 0, not zero rows).
            self.state.live_accs(())
        return self.state.finish_groups()


class BatchPipelineRDD(RDD):
    """A fused columnar pipeline over cached blocks.

    scan -> [vector filters] -> [residual predicate kernel] ->
    chain of filter/project kernels -> late materialization (row tuples)
    or a :class:`BatchAggregator` (partial ``(key, accs)`` pairs).

    Columns stay (possibly compressed) arrays throughout; Python row
    tuples only exist past the pipeline's exit.  One compute() call
    processes each ColumnarPartition block as one batch.
    """

    def __init__(
        self,
        parent: RDD,
        table_schema: Schema,
        column_indices: list[int],
        projected: Optional[list[str]],
        vector_filters: tuple = (),
        residual_predicate: Optional[Callable] = None,
        chain: tuple = (),
        aggregate_factory: Optional[Callable[[], BatchAggregator]] = None,
        name: str = "batch_scan",
        fragment_scope: Optional[tuple] = None,
        op_keys: Optional[dict] = None,
    ):
        super().__init__(
            parent.ctx,
            parent.num_partitions,
            [OneToOneDependency(parent)],
            name=name,
        )
        self._parent = parent
        self._table_schema = table_schema
        self._column_indices = list(column_indices)
        self._projected = projected
        self._vector_filters = tuple(vector_filters)
        self._residual = residual_predicate
        self._chain = tuple(chain)
        self._aggregate_factory = aggregate_factory
        #: Plan-quality stamp keys for the fused operators: "scan",
        #: "filter" (the whole scan predicate), "chain" (one per chained
        #: kernel) and "aggregate" — runtime row counts are credited to
        #: these so batch and row mode report the same operators.
        self._op_keys = dict(op_keys or {})
        #: (table, version, kept_partitions_or_None) when the sql cache's
        #: fragment layer is on: decoded post-selection batches are
        #: published there, so concurrent queries over the same table
        #: decode each block once (shared scans).
        self._fragment_scope = fragment_scope

    def _scan_selection(self, block: ColumnarPartition):
        """Row positions surviving the pushed-down vector filters, or
        None when every row survives trivially (no filters)."""
        mask = None
        fallback_specs: list[VectorFilter] = []
        for spec in self._vector_filters:
            spec_mask = _filter_mask(block, spec)
            if spec_mask is None:
                fallback_specs.append(spec)
                continue
            mask = spec_mask if mask is None else (mask & spec_mask)
        if mask is None and not fallback_specs:
            return None
        if mask is not None:
            selection = np.nonzero(mask)[0]
        else:
            selection = np.arange(block.num_rows)
        if fallback_specs:
            columns = [
                block.column_by_name(spec.column) for spec in fallback_specs
            ]
            kept = [
                index
                for index in selection
                if all(
                    _row_fallback_value(spec, column[index])
                    for spec, column in zip(fallback_specs, columns)
                )
            ]
            selection = np.asarray(kept, dtype=np.int64)
        return selection

    def compute(self, split: int, task_ctx: "TaskContext") -> list:
        from repro.columnar.batch import ColumnBatch

        counters = self.ctx.tracer.metrics
        aggregator = (
            self._aggregate_factory() if self._aggregate_factory else None
        )
        rows: list[tuple] = []
        total_records = 0
        total_bytes = 0
        num_batches = 0
        filter_key = self._op_keys.get("filter")
        chain_keys = self._op_keys.get("chain") or (None,) * len(self._chain)
        filter_rows_out = 0
        chain_rows_out = [0] * len(self._chain)
        cache = (
            getattr(self.ctx, "sql_cache", None)
            if self._fragment_scope is not None
            else None
        )
        for ordinal, block in enumerate(
            self._parent.iterator(split, task_ctx)
        ):
            if not isinstance(block, ColumnarPartition):
                raise TypeError(
                    f"memstore partition holds {type(block).__name__}, "
                    f"expected ColumnarPartition"
                )
            total_records += block.num_rows
            if self._projected is None:
                total_bytes += block.memory_footprint_bytes()
            else:
                total_bytes += sum(
                    block.encoded_column(
                        block.schema.index_of(name)
                    ).compressed_bytes
                    for name in self._projected
                )
            batch = None
            fragment_key = None
            if cache is not None:
                fragment_key = cache.fragment_key(
                    self._fragment_scope,
                    split,
                    ordinal,
                    self._column_indices,
                    self._vector_filters,
                )
                batch = cache.fragment_lookup(fragment_key)
            if batch is None:
                # batch.batches counts real decodes only: a fragment hit
                # (shared scan) reuses another query's decoded batch.
                num_batches += 1
                selection = self._scan_selection(block)
                batch = ColumnBatch.from_block(
                    block, self._column_indices, selection
                )
                if fragment_key is not None:
                    cache.fragment_store(
                        fragment_key, batch, task_ctx.worker.worker_id
                    )
            if self._residual is not None:
                keep = self._residual(batch)
                batch = batch.take(np.nonzero(keep)[0])
                counters.inc("batch.kernel.filter")
            # Post-selection (and post-residual) survivors are the
            # filter operator's actual output for this block.
            filter_rows_out += batch.num_rows
            for index, (kind, payload) in enumerate(self._chain):
                if kind == "filter":
                    keep = payload(batch)
                    batch = batch.take(np.nonzero(keep)[0])
                    counters.inc("batch.kernel.filter")
                else:  # project
                    entries = [
                        batch.entries[plan]
                        if plan_kind == "col"
                        else plan(batch)
                        for plan_kind, plan in payload
                    ]
                    batch = ColumnBatch(entries, batch.num_rows)
                    counters.inc("batch.kernel.project")
                chain_rows_out[index] += batch.num_rows
            if aggregator is not None:
                aggregator.consume(batch)
                counters.inc("batch.kernel.aggregate")
            else:
                rows.extend(batch.materialize_rows())
        counters.inc("batch.batches", num_batches)
        counters.inc("batch.rows", total_records)
        self.ctx.tracer.instant(
            "batch.pipeline",
            "task",
            lane=task_ctx.worker.worker_id,
            stage_id=task_ctx.stage_id,
            partition=task_ctx.partition,
            batches=num_batches,
            rows=total_records,
            output_rows=len(rows) if aggregator is None else None,
        )
        task_ctx.metrics.source = SOURCE_MEMORY
        task_ctx.metrics.records_in += total_records
        task_ctx.metrics.bytes_in += total_bytes
        task_ctx.metrics.batch_rows += total_records
        scan_key = self._op_keys.get("scan")
        if scan_key is not None:
            record_operator_rows(scan_key, total_records)
        if filter_key is not None:
            record_operator_rows(filter_key, filter_rows_out)
        for key, count in zip(chain_keys, chain_rows_out):
            if key is not None:
                record_operator_rows(key, count)
        if aggregator is not None:
            out = aggregator.finish()
            aggregate_key = self._op_keys.get("aggregate")
            if aggregate_key is not None:
                record_operator_rows(aggregate_key, len(out))
            return out
        return rows


def scan_batch_pipeline(
    entry: "TableEntry",
    projected: Optional[list[str]],
    kept_partitions: Optional[list[int]],
    column_indices: list[int],
    vector_filters: tuple = (),
    residual_predicate: Optional[Callable] = None,
    chain: tuple = (),
    aggregate_factory: Optional[Callable[[], BatchAggregator]] = None,
    name: str = "batch_scan",
    op_keys: Optional[dict] = None,
) -> RDD:
    """Build the fused batch dataflow for a cached table (same pruning
    contract as :func:`scan_memstore`)."""
    base = entry.cached_rdd
    if base is None:
        raise ValueError(f"table {entry.name} has no cached data")
    cache = getattr(base.ctx, "sql_cache", None)
    fragment_scope = None
    if cache is not None and cache.config.enable_fragments:
        fragment_scope = (
            entry.name.lower(),
            cache.table_version(entry.name),
            None,
        )
    if kept_partitions is not None and kept_partitions != list(
        range(base.num_partitions)
    ):
        if fragment_scope is not None:
            # Key fragments on the *original* partition ids, so two
            # queries with different pruning share surviving blocks.
            fragment_scope = (
                fragment_scope[0],
                fragment_scope[1],
                tuple(kept_partitions),
            )
        base = PrunedRDD(base, kept_partitions)
    return BatchPipelineRDD(
        base,
        entry.schema,
        column_indices,
        projected,
        vector_filters=vector_filters,
        residual_predicate=residual_predicate,
        chain=chain,
        aggregate_factory=aggregate_factory,
        name=name,
        fragment_scope=fragment_scope,
        op_keys=op_keys,
    )


# ---------------------------------------------------------------------------
# Row-level operators
# ---------------------------------------------------------------------------


def _count_into(op: Optional[OperatorStamp]):
    """Per-partition pass-through that credits the partition's rows to
    ``op``'s plan-quality stamp; None when no stamp was requested."""
    if op is None:
        return None
    key = op.key

    def count_partition(part: list) -> list:
        record_operator_rows(key, len(part))
        return part

    return count_partition


def filter_rows(
    child: RDD,
    condition: BoundExpr,
    use_codegen: bool = True,
    op: Optional[OperatorStamp] = None,
) -> RDD:
    """Filter rows where the predicate is exactly TRUE.

    With ``use_codegen`` the predicate is compiled to Python bytecode once
    (Section 5's expression-evaluator compiler) instead of interpreting
    the expression tree per row; semantics are identical and unsupported
    shapes fall back to interpretation.
    """
    predicate = None
    if use_codegen:
        from repro.sql.codegen import compile_predicate

        predicate = compile_predicate(condition)
    if predicate is None:
        predicate = lambda row: condition.eval(row) is True  # noqa: E731
    if op is None:
        return child.filter(predicate).set_name("filter")
    key = op.key

    def run(part: list) -> list:
        out = [row for row in part if predicate(row)]
        record_operator_rows(key, len(out))
        return out

    return child.map_partitions(
        run, preserves_partitioning=True
    ).set_name("filter")


def project_rows(
    child: RDD,
    expressions: list[BoundExpr],
    use_codegen: bool = True,
    op: Optional[OperatorStamp] = None,
) -> RDD:
    """Evaluate the SELECT list per row, compiled when possible."""
    run = None
    if use_codegen:
        from repro.sql.codegen import compile_projection

        run = compile_projection(expressions)
    if run is None:
        def run(row: tuple) -> tuple:
            return tuple(expr.eval(row) for expr in expressions)

    if op is None:
        return child.map(run).set_name("project")
    key = op.key

    def run_partition(part: list) -> list:
        out = [run(row) for row in part]
        record_operator_rows(key, len(out))
        return out

    return child.map_partitions(run_partition).set_name("project")


def limit_rows(
    child: RDD, count: int, op: Optional[OperatorStamp] = None
) -> RDD:
    """LIMIT pushed into individual partitions (Section 2.4), then a final
    single-partition pass takes the global first ``count``."""

    def take_local(part: list) -> list:
        return part[:count]

    local = child.map_partitions(take_local).set_name("limit_local")
    merged = local.coalesce(1)
    if op is None:
        return merged.map_partitions(take_local).set_name("limit")
    key = op.key

    def take_final(part: list) -> list:
        out = part[:count]
        record_operator_rows(key, len(out))
        return out

    return merged.map_partitions(take_final).set_name("limit")


def distinct_rows(
    child: RDD,
    num_partitions: Optional[int] = None,
    op: Optional[OperatorStamp] = None,
) -> RDD:
    out = child.distinct(num_partitions)
    counter = _count_into(op)
    if counter is not None:
        out = out.map_partitions(counter, preserves_partitioning=True)
    return out.set_name("distinct")


class SortKey:
    """Composite sort key honoring per-column direction and SQL NULL order
    (NULLs first ascending, last descending, as in Hive)."""

    __slots__ = ("values", "ascendings")

    def __init__(self, values: tuple, ascendings: tuple):
        self.values = values
        self.ascendings = ascendings

    def __lt__(self, other: "SortKey") -> bool:
        for mine, theirs, ascending in zip(
            self.values, other.values, self.ascendings
        ):
            if mine is None and theirs is None:
                continue
            if mine is None:
                return ascending
            if theirs is None:
                return not ascending
            if mine == theirs:
                continue
            if ascending:
                return mine < theirs
            return mine > theirs
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SortKey) and self.values == other.values

    def __le__(self, other: "SortKey") -> bool:
        return self == other or self < other


def sort_rows(
    child: RDD,
    keys: list[tuple[BoundExpr, bool]],
    num_partitions: Optional[int] = None,
    op: Optional[OperatorStamp] = None,
) -> RDD:
    ascendings = tuple(asc for __, asc in keys)
    expressions = [expr for expr, __ in keys]

    def key_of(row: tuple) -> SortKey:
        return SortKey(
            tuple(expr.eval(row) for expr in expressions), ascendings
        )

    out = child.sort_by(key_of, True, num_partitions)
    counter = _count_into(op)
    if counter is not None:
        out = out.map_partitions(counter, preserves_partitioning=True)
    return out.set_name("sort")


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _partial_aggregate_partition(
    part: list,
    group_exprs: list[BoundExpr],
    specs: list[AggregateSpec],
) -> list:
    """Task-local aggregation: one pass producing (group_key, accs) pairs.

    State lives in a :class:`SpillableGroups` registered with the
    accountant, charged incrementally as groups appear — so an over-cap
    reservation mid-partition can spill buckets to simulated disk and
    the pass completes in bounded memory, with output identical to the
    in-memory path."""
    state = SpillableGroups(
        [spec.function for spec in specs], "hash_aggregate"
    )
    if not group_exprs:
        # Global aggregation: an empty input still yields one group so
        # COUNT(*) over zero rows returns 0, not zero rows.
        state.live_accs(())
        state.charge_pending()
    for row in part:
        key = tuple(expr.eval(row) for expr in group_exprs)
        state.update_row(
            key,
            [
                spec.argument.eval(row) if spec.argument is not None else None
                for spec in specs
            ],
        )
    return state.finish_groups()


def _merge_accumulators(
    specs: list[AggregateSpec],
) -> Callable[[list, list], list]:
    def merge(left: list, right: list) -> list:
        return [
            spec.function.merge(l, r)
            for spec, l, r in zip(specs, left, right)
        ]

    return merge


def partial_aggregate_rdd(
    child: RDD,
    group_exprs: list[BoundExpr],
    specs: list[AggregateSpec],
    op: Optional[OperatorStamp] = None,
) -> RDD:
    """Phase-1 task-local aggregation producing (group key, accs) pairs."""
    key = op.key if op is not None else None

    def run(part: list) -> list:
        out = _partial_aggregate_partition(part, group_exprs, specs)
        if key is not None:
            record_operator_rows(key, len(out))
        return out

    return child.map_partitions(run).set_name("partial_aggregate")


def aggregate_rows(
    child: RDD,
    group_exprs: list[BoundExpr],
    specs: list[AggregateSpec],
    num_partitions: Optional[int] = None,
    stats_collectors: tuple = (),
    coalesce_groups: Optional[list[list[int]]] = None,
    fine_grained_partitions: Optional[int] = None,
    partials: Optional[RDD] = None,
    partial_op: Optional[OperatorStamp] = None,
    final_op: Optional[OperatorStamp] = None,
) -> RDD:
    """Two-phase hash aggregation.

    Phase 1 aggregates within each input partition ("task-local
    aggregations", Section 6.2.2); phase 2 shuffles (group key, partials)
    and merges.  With ``fine_grained_partitions`` set, the shuffle uses
    many fine buckets which PDE then coalesces via ``coalesce_groups``
    (the skew mitigation of Section 3.1.2).  A caller that already built
    the ``(key, accs)`` partials (the vectorized batch pipeline) passes
    them via ``partials`` and skips the row-at-a-time phase 1.
    """
    if partials is None:
        partials = partial_aggregate_rdd(
            child, group_exprs, specs, op=partial_op
        )

    merge = _merge_accumulators(specs)
    reduce_partitions = fine_grained_partitions or num_partitions
    merged = partials.combine_by_key(
        create_combiner=lambda accs: accs,
        merge_value=merge,
        merge_combiners=merge,
        num_partitions=reduce_partitions,
        stats_collectors=stats_collectors,
    ).set_name("merge_aggregate")

    if coalesce_groups is not None:
        merged = merged.coalesce_grouped(coalesce_groups).set_name(
            "coalesced_aggregate"
        )

    def finish(pair: tuple) -> tuple:
        key, accs = pair
        finished = tuple(
            spec.function.finish(acc) for spec, acc in zip(specs, accs)
        )
        return tuple(key) + finished

    if final_op is None:
        return merged.map(finish).set_name("final_aggregate")
    final_key = final_op.key

    def finish_partition(part: list) -> list:
        out = [finish(pair) for pair in part]
        record_operator_rows(final_key, len(out))
        return out

    return merged.map_partitions(finish_partition).set_name(
        "final_aggregate"
    )


def global_aggregate_rows(
    child: RDD,
    specs: list[AggregateSpec],
    partials: Optional[RDD] = None,
    partial_op: Optional[OperatorStamp] = None,
    final_op: Optional[OperatorStamp] = None,
) -> RDD:
    """Aggregation with no GROUP BY: all partials merge on one reducer."""
    return aggregate_rows(child, [], specs, num_partitions=1,
                          partials=partials, partial_op=partial_op,
                          final_op=final_op)


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


def _key_function(keys: list[BoundExpr]) -> Callable[[tuple], Any]:
    if len(keys) == 1:
        key = keys[0]
        return lambda row: key.eval(row)
    return lambda row: tuple(key.eval(row) for key in keys)


def _emit_joined(
    join_type: str,
    left_width: int,
    right_width: int,
    residual: Optional[BoundExpr],
) -> Callable[[tuple], list]:
    left_nulls = (None,) * left_width
    right_nulls = (None,) * right_width

    def emit(pair: tuple) -> list:
        __, (left_rows, right_rows) = pair
        out: list[tuple] = []
        if left_rows and right_rows:
            for left_row in left_rows:
                matched = False
                for right_row in right_rows:
                    combined = tuple(left_row) + tuple(right_row)
                    if residual is None or residual.eval(combined) is True:
                        out.append(combined)
                        matched = True
                if not matched and join_type in ("left", "full"):
                    out.append(tuple(left_row) + right_nulls)
            if join_type in ("right", "full"):
                for right_row in right_rows:
                    matched = any(
                        residual is None
                        or residual.eval(tuple(lr) + tuple(right_row)) is True
                        for lr in left_rows
                    )
                    if not matched:
                        out.append(left_nulls + tuple(right_row))
        elif left_rows and join_type in ("left", "full"):
            out.extend(tuple(row) + right_nulls for row in left_rows)
        elif right_rows and join_type in ("right", "full"):
            out.extend(left_nulls + tuple(row) for row in right_rows)
        return out

    return emit


def _counted_emit(
    emit: Callable[[Any], list], op: Optional[OperatorStamp]
) -> Callable[[Any], list]:
    """Wrap a flat-map emit so each call credits its output rows to the
    join's plan-quality stamp."""
    if op is None:
        return emit
    key = op.key

    def emit_counted(item) -> list:
        out = emit(item)
        record_operator_rows(key, len(out))
        return out

    return emit_counted


def shuffle_join(
    ctx: "EngineContext",
    left: RDD,
    right: RDD,
    left_keys: list[BoundExpr],
    right_keys: list[BoundExpr],
    join_type: str,
    left_width: int,
    right_width: int,
    residual: Optional[BoundExpr],
    partitioner: Partitioner,
    pre_shuffled_left: Optional[RDD] = None,
    pre_shuffled_right: Optional[RDD] = None,
    op: Optional[OperatorStamp] = None,
) -> RDD:
    """Repartition both sides by key and join corresponding partitions.

    ``pre_shuffled_*`` carry ShuffledRDDs whose map side PDE already
    materialized; cogroup sees their partitioner matches and uses a narrow
    dependency, so the pre-shuffle work is reused, not repeated.
    """
    keyed_left = pre_shuffled_left
    if keyed_left is None:
        keyed_left = left.key_by(_key_function(left_keys))
    keyed_right = pre_shuffled_right
    if keyed_right is None:
        keyed_right = right.key_by(_key_function(right_keys))
    grouped = CoGroupedRDD(ctx, [keyed_left, keyed_right], partitioner)
    emit = _counted_emit(
        _emit_joined(join_type, left_width, right_width, residual), op
    )
    return grouped.flat_map(emit).set_name(f"{join_type}_join")


def copartitioned_join(
    ctx: "EngineContext",
    left: RDD,
    right: RDD,
    left_keys: list[BoundExpr],
    right_keys: list[BoundExpr],
    join_type: str,
    left_width: int,
    right_width: int,
    residual: Optional[BoundExpr],
    partitioner: Partitioner,
    op: Optional[OperatorStamp] = None,
) -> RDD:
    """Join two tables co-partitioned on the join key (Section 3.4): both
    keyed RDDs inherit the stored partitioning, so cogroup is all-narrow
    and no shuffle happens."""
    keyed_left = MapPartitionsRDD(
        left,
        lambda __, part, fn=_key_function(left_keys): [
            (fn(row), row) for row in part
        ],
        name="copartition_key_left",
    )
    keyed_left.partitioner = partitioner
    keyed_right = MapPartitionsRDD(
        right,
        lambda __, part, fn=_key_function(right_keys): [
            (fn(row), row) for row in part
        ],
        name="copartition_key_right",
    )
    keyed_right.partitioner = partitioner
    grouped = CoGroupedRDD(ctx, [keyed_left, keyed_right], partitioner)
    emit = _counted_emit(
        _emit_joined(join_type, left_width, right_width, residual), op
    )
    return grouped.flat_map(emit).set_name("copartitioned_join")


def _charge_build_side(ctx: "EngineContext", value: Any):
    """Broadcast a join build structure, briefly double-charging it as
    ``join_build`` on the driver's execution pool so the peak-consumers
    view attributes build-side memory to joins (the live charge then
    rides the broadcast until the query releases its accounting)."""
    accountant = ctx.memory
    size = accountant.reserve(
        DRIVER_WORKER, EXECUTION, "join_build", approximate_size_bytes(value)
    )
    broadcast = ctx.broadcast(value)
    accountant.release(DRIVER_WORKER, EXECUTION, "join_build", size)
    return broadcast


def broadcast_join(
    ctx: "EngineContext",
    stream_side: RDD,
    build_rows: list[tuple],
    stream_keys: list[BoundExpr],
    build_keys: list[BoundExpr],
    join_type: str,
    stream_is_left: bool,
    stream_width: int,
    build_width: int,
    residual: Optional[BoundExpr],
    op: Optional[OperatorStamp] = None,
) -> RDD:
    """Map join (Section 3.1.1): hash the small side once, broadcast it,
    and join each partition of the large side with only map tasks."""
    build_key_fn = _key_function(build_keys)
    table: dict[Any, list[tuple]] = {}
    for row in build_rows:
        table.setdefault(build_key_fn(row), []).append(row)
    broadcast = _charge_build_side(ctx, table)

    stream_key_fn = _key_function(stream_keys)
    build_nulls = (None,) * build_width
    outer_stream = (
        (join_type == "left" and stream_is_left)
        or (join_type == "right" and not stream_is_left)
    )

    def emit(row: tuple) -> list:
        matches = broadcast.value.get(stream_key_fn(row), ())
        out: list[tuple] = []
        for build_row in matches:
            if stream_is_left:
                combined = tuple(row) + tuple(build_row)
            else:
                combined = tuple(build_row) + tuple(row)
            if residual is None or residual.eval(combined) is True:
                out.append(combined)
        if not out and outer_stream:
            if stream_is_left:
                out.append(tuple(row) + build_nulls)
            else:
                out.append(build_nulls + tuple(row))
        return out

    return stream_side.flat_map(_counted_emit(emit, op)).set_name(
        "broadcast_join"
    )


def cross_join(
    ctx: "EngineContext",
    left: RDD,
    right_rows: list[tuple],
    residual: Optional[BoundExpr],
    op: Optional[OperatorStamp] = None,
) -> RDD:
    """Broadcast nested-loop join for key-less joins."""
    broadcast = _charge_build_side(ctx, right_rows)

    def emit(row: tuple) -> list:
        out = []
        for right_row in broadcast.value:
            combined = tuple(row) + tuple(right_row)
            if residual is None or residual.eval(combined) is True:
                out.append(combined)
        return out

    return left.flat_map(_counted_emit(emit, op)).set_name("cross_join")


def pre_shuffle_side(
    ctx: "EngineContext",
    side: RDD,
    keys: list[BoundExpr],
    partitioner: Partitioner,
    stats_collectors: tuple = (),
) -> tuple[RDD, ShuffleDependency]:
    """PDE: run the map (pre-shuffle) stage of one join side *now*.

    Returns a ShuffledRDD whose map outputs are already materialized plus
    its dependency, whose statistics the optimizer reads before deciding
    the join strategy.
    """
    keyed = side.key_by(_key_function(keys))
    shuffled = ShuffledRDD(
        keyed, partitioner, stats_collectors=stats_collectors
    )
    ctx.materialize_dependency(shuffled.shuffle_dep)
    return shuffled, shuffled.shuffle_dep


def repartition_rows(
    child: RDD,
    keys: list[BoundExpr],
    partitioner: Partitioner,
    op: Optional[OperatorStamp] = None,
) -> RDD:
    """DISTRIBUTE BY: hash rows to partitions by key expressions, keeping
    rows (not pairs) as output."""
    key_fn = _key_function(keys)
    keyed = child.map(lambda row: (key_fn(row), row))
    shuffled = keyed.partition_by(partitioner)
    values = shuffled.values()
    counter = _count_into(op)
    if counter is not None:
        values = values.map_partitions(counter, preserves_partitioning=True)
    values = values.set_name("distribute_by")
    values.partitioner = partitioner
    return values


def semi_join_probe(
    key_fn: Callable[[tuple], Any],
    value_set: frozenset,
    has_null: bool,
    negated: bool,
) -> Callable[[tuple], bool]:
    """Row predicate for ``key [NOT] IN (subquery values)``.

    SQL three-valued semantics: a NULL key is never TRUE; NOT IN over a
    set containing NULL is never TRUE for any row.
    """

    def keep(row: tuple) -> bool:
        value = key_fn(row)
        if value is None:
            return False
        if negated:
            if has_null:
                return False
            return value not in value_set
        return value in value_set

    return keep


def _counted_filter(
    child: RDD, keep: Callable[[tuple], bool], op: Optional[OperatorStamp],
    name: str,
) -> RDD:
    """``child.filter(keep)`` that also credits surviving rows to ``op``."""
    if op is None:
        return child.filter(keep).set_name(name)
    key = op.key

    def run(part: list) -> list:
        out = [row for row in part if keep(row)]
        record_operator_rows(key, len(out))
        return out

    return child.map_partitions(
        run, preserves_partitioning=True
    ).set_name(name)


def semi_join_filter(
    ctx: "EngineContext",
    child: RDD,
    key: BoundExpr,
    values: list,
    negated: bool,
    op: Optional[OperatorStamp] = None,
) -> RDD:
    """Filter ``child`` by membership of ``key`` in the collected subquery
    result (broadcast to all tasks)."""
    has_null = any(value is None for value in values)
    try:
        value_set = frozenset(v for v in values if v is not None)
    except TypeError:
        # Unhashable subquery values: linear probe.
        value_list = [v for v in values if v is not None]

        def keep_linear(row: tuple) -> bool:
            value = key.eval(row)
            if value is None:
                return False
            found = value in value_list
            if negated:
                return not found and not has_null
            return found

        return _counted_filter(child, keep_linear, op, "semi_join")
    broadcast = _charge_build_side(ctx, value_set)
    keep = semi_join_probe(
        lambda row: key.eval(row), broadcast.value, has_null, negated
    )
    return _counted_filter(child, keep, op, "semi_join")


def values_rdd(ctx: "EngineContext", rows: list[tuple]) -> RDD:
    return ctx.parallelize(rows, num_partitions=1).set_name("values")


def union_rdds(
    ctx: "EngineContext",
    children: list[RDD],
    op: Optional[OperatorStamp] = None,
) -> RDD:
    out = ctx.union(children)
    counter = _count_into(op)
    if counter is not None:
        out = out.map_partitions(counter)
    return out.set_name("union_all")


def default_partitioner(
    ctx: "EngineContext", num_partitions: Optional[int] = None
) -> HashPartitioner:
    return HashPartitioner(num_partitions or ctx.default_parallelism)

"""Semantic analysis: AST -> resolved, typed logical plan.

Responsibilities:

* name resolution with alias scoping (``t.col``, subquery aliases, join
  scopes, ambiguity detection);
* expression binding and typing (:mod:`repro.sql.expressions`);
* aggregate extraction and rewriting — select/having expressions over
  aggregates are rebound against the Aggregate node's output;
* equi-join key extraction from ON conditions;
* ORDER BY / GROUP BY positional and alias references, hidden sort columns;
* plan shaping: Filter -> Aggregate -> Having -> Project -> Sort -> Limit ->
  Repartition (DISTRIBUTE BY).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.datatypes import (
    DataType,
    Field,
    STRING,
    Schema,
    infer_type,
)
from repro.errors import AnalysisError
from repro.sql import ast
from repro.sql.catalog import Catalog
from repro.sql.expressions import (
    BoundAnd,
    BoundArithmetic,
    BoundBetween,
    BoundCase,
    BoundCast,
    BoundColumn,
    BoundComparison,
    BoundExpr,
    BoundIn,
    BoundIsNull,
    BoundLike,
    BoundLiteral,
    BoundNegate,
    BoundNot,
    BoundOr,
    BoundScalarCall,
    expr_signature,
)
from repro.sql.functions import (
    AGGREGATE_NAMES,
    FunctionRegistry,
    make_aggregate,
)
from repro.sql import logical
from repro.datatypes import type_by_name


@dataclass(frozen=True)
class ScopeColumn:
    qualifier: Optional[str]
    name: str
    data_type: DataType


class Scope:
    """Maps (qualifier, name) to row ordinals for one operator's input."""

    def __init__(self, columns: list[ScopeColumn]):
        self.columns = columns

    @classmethod
    def from_schema(cls, schema: Schema, qualifier: Optional[str]) -> "Scope":
        return cls(
            [
                ScopeColumn(qualifier, field.name, field.data_type)
                for field in schema.fields
            ]
        )

    def concat(self, other: "Scope") -> "Scope":
        return Scope(self.columns + other.columns)

    def resolve(self, name: str, qualifier: Optional[str]) -> tuple[int, DataType]:
        matches = []
        for index, column in enumerate(self.columns):
            if column.name.lower() != name.lower():
                continue
            if qualifier is not None and (
                column.qualifier is None
                or column.qualifier.lower() != qualifier.lower()
            ):
                continue
            matches.append((index, column.data_type))
        if not matches:
            shown = f"{qualifier}.{name}" if qualifier else name
            available = [
                (f"{c.qualifier}." if c.qualifier else "") + c.name
                for c in self.columns
            ]
            raise AnalysisError(
                f"unknown column {shown!r}; available: {available}"
            )
        if len(matches) > 1:
            shown = f"{qualifier}.{name}" if qualifier else name
            raise AnalysisError(f"ambiguous column reference {shown!r}")
        return matches[0]

    def columns_for(self, qualifier: Optional[str]) -> list[int]:
        """Ordinals selected by ``*`` or ``qualifier.*``."""
        if qualifier is None:
            return list(range(len(self.columns)))
        out = [
            index
            for index, column in enumerate(self.columns)
            if column.qualifier is not None
            and column.qualifier.lower() == qualifier.lower()
        ]
        if not out:
            raise AnalysisError(f"unknown table alias {qualifier!r} in '*'")
        return out

    def __len__(self) -> int:
        return len(self.columns)


def _contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.FunctionCall):
        if expr.name.lower() in AGGREGATE_NAMES:
            return True
        return any(_contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.Between):
        return any(
            _contains_aggregate(e) for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, ast.InList):
        return _contains_aggregate(expr.operand) or any(
            _contains_aggregate(o) for o in expr.options
        )
    if isinstance(expr, ast.Like):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.IsNull):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.CaseWhen):
        parts = list(expr.branches)
        if _contains_aggregate(expr.operand) if expr.operand else False:
            return True
        for condition, value in parts:
            if _contains_aggregate(condition) or _contains_aggregate(value):
                return True
        return expr.otherwise is not None and _contains_aggregate(expr.otherwise)
    if isinstance(expr, ast.Cast):
        return _contains_aggregate(expr.operand)
    return False


def _collect_aggregates(expr: ast.Expr, out: list[ast.FunctionCall]) -> None:
    if isinstance(expr, ast.FunctionCall):
        if expr.name.lower() in AGGREGATE_NAMES:
            if expr not in out:
                out.append(expr)
            return  # no nested aggregates
        for arg in expr.args:
            _collect_aggregates(arg, out)
        return
    if isinstance(expr, ast.BinaryOp):
        _collect_aggregates(expr.left, out)
        _collect_aggregates(expr.right, out)
    elif isinstance(expr, ast.UnaryOp):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.Between):
        for inner in (expr.operand, expr.low, expr.high):
            _collect_aggregates(inner, out)
    elif isinstance(expr, ast.InList):
        _collect_aggregates(expr.operand, out)
        for option in expr.options:
            _collect_aggregates(option, out)
    elif isinstance(expr, (ast.Like, ast.IsNull, ast.Cast)):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.CaseWhen):
        if expr.operand is not None:
            _collect_aggregates(expr.operand, out)
        for condition, value in expr.branches:
            _collect_aggregates(condition, out)
            _collect_aggregates(value, out)
        if expr.otherwise is not None:
            _collect_aggregates(expr.otherwise, out)


class Analyzer:
    """Binds one SELECT statement into a logical plan."""

    def __init__(self, catalog: Catalog, registry: FunctionRegistry):
        self.catalog = catalog
        self.registry = registry

    # ------------------------------------------------------------------
    # Expression binding (pre-aggregation scopes)
    # ------------------------------------------------------------------
    def bind(self, expr: ast.Expr, scope: Scope) -> BoundExpr:
        if isinstance(expr, ast.Literal):
            if expr.value is None:
                return BoundLiteral(None, STRING)
            return BoundLiteral(expr.value, infer_type(expr.value))
        if isinstance(expr, ast.ColumnRef):
            index, data_type = scope.resolve(expr.name, expr.qualifier)
            return BoundColumn(index, data_type, str(expr))
        if isinstance(expr, ast.Star):
            raise AnalysisError("'*' is only valid in SELECT or COUNT(*)")
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "and":
                return BoundAnd(self.bind(expr.left, scope), self.bind(expr.right, scope))
            if expr.op == "or":
                return BoundOr(self.bind(expr.left, scope), self.bind(expr.right, scope))
            left = self.bind(expr.left, scope)
            right = self.bind(expr.right, scope)
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                return BoundComparison(expr.op, left, right)
            return BoundArithmetic(expr.op, left, right)
        if isinstance(expr, ast.UnaryOp):
            operand = self.bind(expr.operand, scope)
            if expr.op == "not":
                return BoundNot(operand)
            return BoundNegate(operand)
        if isinstance(expr, ast.Between):
            return BoundBetween(
                self.bind(expr.operand, scope),
                self.bind(expr.low, scope),
                self.bind(expr.high, scope),
                negated=expr.negated,
            )
        if isinstance(expr, ast.InList):
            return BoundIn(
                self.bind(expr.operand, scope),
                [self.bind(option, scope) for option in expr.options],
                negated=expr.negated,
            )
        if isinstance(expr, ast.Like):
            return BoundLike(
                self.bind(expr.operand, scope),
                self.bind(expr.pattern, scope),
                negated=expr.negated,
            )
        if isinstance(expr, ast.IsNull):
            return BoundIsNull(self.bind(expr.operand, scope), expr.negated)
        if isinstance(expr, ast.CaseWhen):
            return self._bind_case(expr, scope)
        if isinstance(expr, ast.Cast):
            return self._bind_cast(expr, scope)
        if isinstance(expr, ast.FunctionCall):
            if expr.name.lower() in AGGREGATE_NAMES:
                raise AnalysisError(
                    f"aggregate {expr.name.upper()} is not allowed here"
                )
            return self._bind_call(expr, scope)
        if isinstance(expr, ast.InSubquery):
            raise AnalysisError(
                "IN (SELECT ...) is only supported as a top-level WHERE "
                "conjunct"
            )
        raise AnalysisError(f"cannot bind expression {expr!r}")

    def _bind_case(self, expr: ast.CaseWhen, scope: Scope) -> BoundExpr:
        branches: list[tuple[BoundExpr, BoundExpr]] = []
        if expr.operand is not None:
            operand = self.bind(expr.operand, scope)
            for condition, value in expr.branches:
                bound_condition = BoundComparison(
                    "=", operand, self.bind(condition, scope)
                )
                branches.append((bound_condition, self.bind(value, scope)))
        else:
            for condition, value in expr.branches:
                branches.append(
                    (self.bind(condition, scope), self.bind(value, scope))
                )
        otherwise = (
            self.bind(expr.otherwise, scope)
            if expr.otherwise is not None
            else None
        )
        data_type = branches[0][1].data_type if branches else (
            otherwise.data_type if otherwise else STRING
        )
        return BoundCase(branches, otherwise, data_type)

    def _bind_cast(self, expr: ast.Cast, scope: Scope) -> BoundExpr:
        from datetime import date as _date

        target = type_by_name(expr.type_name)
        operand = self.bind(expr.operand, scope)
        casts = {
            "int": int,
            "bigint": int,
            "double": float,
            "string": str,
            "boolean": bool,
            "date": lambda v: v if isinstance(v, _date) else _date.fromisoformat(str(v)),
        }
        cast_fn = casts.get(target.name, lambda v: v)
        return BoundCast(operand, target, cast_fn)

    def _bind_call(self, expr: ast.FunctionCall, scope: Scope) -> BoundExpr:
        spec = self.registry.lookup(expr.name)
        if spec is None:
            raise AnalysisError(
                f"unknown function {expr.name!r}; register UDFs via "
                f"SharkContext.register_udf"
            )
        args = [self.bind(arg, scope) for arg in expr.args]
        if not spec.min_args <= len(args) <= spec.max_args:
            raise AnalysisError(
                f"{expr.name.upper()} expects between {spec.min_args} and "
                f"{spec.max_args} arguments, got {len(args)}"
            )
        data_type = spec.resolve_type([arg.data_type for arg in args])
        return BoundScalarCall(
            expr.name, spec.fn, args, data_type,
            null_propagating=spec.null_propagating,
        )

    # ------------------------------------------------------------------
    # Post-aggregation binding
    # ------------------------------------------------------------------
    def bind_post_aggregate(
        self,
        expr: ast.Expr,
        group_asts: list[ast.Expr],
        agg_asts: list[ast.FunctionCall],
        agg_scope: Scope,
        input_scope: Optional[Scope] = None,
        group_signatures: Optional[list[tuple]] = None,
    ) -> BoundExpr:
        """Bind an expression against an Aggregate node's output.

        ``agg_scope`` lays out group columns first, then aggregate results.
        Subtrees matching a GROUP BY expression — syntactically, or
        semantically via bound-expression signatures (so ``sourceIP``
        matches ``GROUP BY UV.sourceIP``) — or an aggregate call become
        column references into that layout.
        """
        for index, group_ast in enumerate(group_asts):
            if expr == group_ast:
                column = agg_scope.columns[index]
                return BoundColumn(index, column.data_type, column.name)
        if (
            input_scope is not None
            and group_signatures
            and not _contains_aggregate(expr)
        ):
            try:
                candidate = self.bind(expr, input_scope)
            except AnalysisError:
                candidate = None
            if candidate is not None:
                signature = expr_signature(candidate)
                for index, group_signature in enumerate(group_signatures):
                    if signature == group_signature:
                        column = agg_scope.columns[index]
                        return BoundColumn(
                            index, column.data_type, column.name
                        )
        if isinstance(expr, ast.FunctionCall) and expr.name.lower() in AGGREGATE_NAMES:
            for offset, agg_ast in enumerate(agg_asts):
                if expr == agg_ast:
                    index = len(group_asts) + offset
                    column = agg_scope.columns[index]
                    return BoundColumn(index, column.data_type, column.name)
            raise AnalysisError(f"unresolved aggregate {expr}")

        rebind = lambda inner: self.bind_post_aggregate(  # noqa: E731
            inner, group_asts, agg_asts, agg_scope, input_scope,
            group_signatures,
        )
        if isinstance(expr, ast.Literal):
            return self.bind(expr, agg_scope)
        if isinstance(expr, ast.ColumnRef):
            raise AnalysisError(
                f"column {expr} must appear in GROUP BY or inside an aggregate"
            )
        if isinstance(expr, ast.BinaryOp):
            left = rebind(expr.left)
            right = rebind(expr.right)
            if expr.op == "and":
                return BoundAnd(left, right)
            if expr.op == "or":
                return BoundOr(left, right)
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                return BoundComparison(expr.op, left, right)
            return BoundArithmetic(expr.op, left, right)
        if isinstance(expr, ast.UnaryOp):
            operand = rebind(expr.operand)
            return BoundNot(operand) if expr.op == "not" else BoundNegate(operand)
        if isinstance(expr, ast.Between):
            return BoundBetween(
                rebind(expr.operand), rebind(expr.low), rebind(expr.high),
                negated=expr.negated,
            )
        if isinstance(expr, ast.InList):
            return BoundIn(
                rebind(expr.operand),
                [rebind(option) for option in expr.options],
                negated=expr.negated,
            )
        if isinstance(expr, ast.Like):
            return BoundLike(
                rebind(expr.operand), rebind(expr.pattern), negated=expr.negated
            )
        if isinstance(expr, ast.IsNull):
            return BoundIsNull(rebind(expr.operand), expr.negated)
        if isinstance(expr, ast.Cast):
            target = type_by_name(expr.type_name)
            operand = rebind(expr.operand)
            casts = {"int": int, "bigint": int, "double": float, "string": str,
                     "boolean": bool}
            return BoundCast(operand, target, casts.get(target.name, lambda v: v))
        if isinstance(expr, ast.CaseWhen):
            branches = []
            if expr.operand is not None:
                operand = rebind(expr.operand)
                for condition, value in expr.branches:
                    branches.append(
                        (BoundComparison("=", operand, rebind(condition)),
                         rebind(value))
                    )
            else:
                for condition, value in expr.branches:
                    branches.append((rebind(condition), rebind(value)))
            otherwise = rebind(expr.otherwise) if expr.otherwise else None
            data_type = branches[0][1].data_type if branches else STRING
            return BoundCase(branches, otherwise, data_type)
        if isinstance(expr, ast.FunctionCall):
            spec = self.registry.lookup(expr.name)
            if spec is None:
                raise AnalysisError(f"unknown function {expr.name!r}")
            args = [rebind(arg) for arg in expr.args]
            data_type = spec.resolve_type([arg.data_type for arg in args])
            return BoundScalarCall(
                expr.name, spec.fn, args, data_type,
                null_propagating=spec.null_propagating,
            )
        raise AnalysisError(f"cannot bind post-aggregate expression {expr!r}")

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def analyze_relation(
        self, relation: ast.Relation
    ) -> tuple[logical.LogicalPlan, Scope]:
        if isinstance(relation, ast.TableRef):
            entry = self.catalog.get(relation.name)
            plan = logical.Scan(entry)
            qualifier = relation.alias or relation.name
            return plan, Scope.from_schema(entry.schema, qualifier)
        if isinstance(relation, ast.SubqueryRef):
            plan = self.analyze_select(relation.query)
            return plan, Scope.from_schema(plan.schema, relation.alias)
        if isinstance(relation, ast.JoinRef):
            return self._analyze_join(relation)
        raise AnalysisError(f"unsupported relation {relation!r}")

    def _analyze_join(
        self, relation: ast.JoinRef
    ) -> tuple[logical.LogicalPlan, Scope]:
        left_plan, left_scope = self.analyze_relation(relation.left)
        right_plan, right_scope = self.analyze_relation(relation.right)
        combined = left_scope.concat(right_scope)

        left_keys: list[BoundExpr] = []
        right_keys: list[BoundExpr] = []
        residual: Optional[BoundExpr] = None

        if relation.condition is not None:
            conjuncts = _split_conjuncts(relation.condition)
            residual_asts: list[ast.Expr] = []
            for conjunct in conjuncts:
                pair = self._try_equi_key(
                    conjunct, left_scope, right_scope
                )
                if pair is not None:
                    left_keys.append(pair[0])
                    right_keys.append(pair[1])
                else:
                    residual_asts.append(conjunct)
            if residual_asts:
                residual = self.bind(_join_conjuncts(residual_asts), combined)

        join_type = relation.join_type
        if not left_keys and relation.condition is None:
            join_type = "cross"

        schema = Schema(
            [
                Field(column.name, column.data_type)
                for column in combined.columns
            ]
            if _names_unique(combined)
            else _dedupe_fields(combined)
        )
        plan = logical.Join(
            left=left_plan,
            right=right_plan,
            join_type=join_type,
            left_keys=left_keys,
            right_keys=right_keys,
            residual=residual,
            schema=schema,
        )
        return plan, combined

    def _try_equi_key(
        self,
        conjunct: ast.Expr,
        left_scope: Scope,
        right_scope: Scope,
    ) -> Optional[tuple[BoundExpr, BoundExpr]]:
        """If the conjunct is ``expr(left) = expr(right)``, bind each side
        against its own scope and return the key pair."""
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        for first, second in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            try:
                left_key = self.bind(first, left_scope)
                right_key = self.bind(second, right_scope)
                return left_key, right_key
            except AnalysisError:
                continue
        return None

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def analyze_select(self, select: ast.SelectStatement) -> logical.LogicalPlan:
        plan = self._analyze_single_select(select)
        if select.union_all:
            branches = [plan]
            for branch_ast in select.union_all:
                branch = self.analyze_select(branch_ast)
                if len(branch.schema) != len(plan.schema):
                    raise AnalysisError(
                        "UNION ALL branches must have the same column count"
                    )
                branches.append(branch)
            plan = logical.UnionAll(branches)
        return plan

    def _analyze_single_select(
        self, select: ast.SelectStatement
    ) -> logical.LogicalPlan:
        if select.relation is None:
            # SELECT without FROM: single-row constant query.
            plan, scope = self._constant_relation()
        else:
            plan, scope = self.analyze_relation(select.relation)

        if select.where is not None:
            conjuncts = _split_conjuncts(select.where)
            subquery_conjuncts = [
                c for c in conjuncts if isinstance(c, ast.InSubquery)
            ]
            plain = [
                c for c in conjuncts if not isinstance(c, ast.InSubquery)
            ]
            for conjunct in plain:
                if _contains_in_subquery(conjunct):
                    raise AnalysisError(
                        "IN (SELECT ...) is only supported as a top-level "
                        "WHERE conjunct"
                    )
            if plain:
                condition = _join_conjuncts(plain)
                if _contains_aggregate(condition):
                    raise AnalysisError(
                        "aggregates are not allowed in WHERE"
                    )
                plan = logical.Filter(plan, self.bind(condition, scope))
            for conjunct in subquery_conjuncts:
                if _contains_aggregate(conjunct.operand):
                    raise AnalysisError(
                        "aggregates are not allowed in WHERE"
                    )
                key = self.bind(conjunct.operand, scope)
                subplan = self.analyze_select(conjunct.query)
                if len(subplan.schema) != 1:
                    raise AnalysisError(
                        "an IN subquery must select exactly one column, "
                        f"got {len(subplan.schema)}"
                    )
                plan = logical.SemiJoinFilter(
                    plan, key, subplan, negated=conjunct.negated
                )

        # Expand stars and default aliases.
        items = self._expand_items(select.items, scope)

        group_asts = self._resolve_group_refs(select.group_by, items)
        has_aggregates = bool(group_asts) or any(
            _contains_aggregate(item.expr) for item in items
        ) or (select.having is not None)

        if has_aggregates:
            plan, output_exprs, output_schema, agg_state = self._plan_aggregate(
                plan, scope, items, group_asts, select.having
            )
        else:
            if select.having is not None:
                raise AnalysisError("HAVING requires GROUP BY or aggregates")
            output_exprs = [self.bind(item.expr, scope) for item in items]
            output_schema = Schema(
                Field(name, expr.data_type)
                for name, expr in zip(
                    self._output_names(items), output_exprs
                )
            )
            agg_state = None

        # ORDER BY: resolve against output aliases/positions, else bind the
        # expression and append it as a hidden projection column.
        sort_keys: list[tuple[BoundExpr, bool]] = []
        hidden: list[BoundExpr] = []
        if select.order_by:
            for order in select.order_by:
                ordinal = self._match_output(order.expr, items, output_schema)
                if ordinal is not None:
                    key: BoundExpr = BoundColumn(
                        ordinal,
                        output_schema.fields[ordinal].data_type,
                        output_schema.names[ordinal],
                    )
                else:
                    if agg_state is not None:
                        bound = self.bind_post_aggregate(
                            order.expr, agg_state[0], agg_state[1],
                            agg_state[2], agg_state[3], agg_state[4],
                        )
                    else:
                        bound = self.bind(order.expr, scope)
                    index = len(output_schema) + len(hidden)
                    hidden.append(bound)
                    key = BoundColumn(index, bound.data_type, f"_sort{index}")
                sort_keys.append((key, order.ascending))

        project_exprs = output_exprs + hidden
        project_schema = Schema(
            list(output_schema.fields)
            + [
                Field(f"_sort{len(output_schema) + i}", expr.data_type)
                for i, expr in enumerate(hidden)
            ]
        )
        plan = logical.Project(plan, project_exprs, project_schema)

        if select.distinct:
            if hidden:
                raise AnalysisError(
                    "ORDER BY expressions outside the select list cannot be "
                    "combined with DISTINCT"
                )
            plan = logical.Distinct(plan)

        if sort_keys:
            plan = logical.Sort(plan, sort_keys)
        if hidden:
            strip = [
                BoundColumn(i, field.data_type, field.name)
                for i, field in enumerate(output_schema.fields)
            ]
            plan = logical.Project(plan, strip, output_schema)
        if select.limit is not None:
            plan = logical.Limit(plan, select.limit)
        if select.distribute_by:
            out_scope = Scope.from_schema(plan.schema, None)
            keys = [self.bind(expr, out_scope) for expr in select.distribute_by]
            plan = logical.Repartition(plan, keys)
        return plan

    def _constant_relation(self) -> tuple[logical.LogicalPlan, Scope]:
        schema = Schema([Field("_dummy", STRING)])
        plan = logical.Values([("x",)], schema)
        return plan, Scope.from_schema(schema, None)

    def _expand_items(
        self, items: list[ast.SelectItem], scope: Scope
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for index in scope.columns_for(item.expr.qualifier):
                    column = scope.columns[index]
                    expanded.append(
                        ast.SelectItem(
                            ast.ColumnRef(column.name, column.qualifier),
                            alias=column.name,
                        )
                    )
            else:
                expanded.append(item)
        return expanded

    def _output_names(self, items: list[ast.SelectItem]) -> list[str]:
        names: list[str] = []
        used: set[str] = set()
        for index, item in enumerate(items):
            if item.alias:
                name = item.alias
            elif isinstance(item.expr, ast.ColumnRef):
                name = item.expr.name
            else:
                name = f"_c{index}"
            base = name
            suffix = 1
            while name.lower() in used:
                name = f"{base}_{suffix}"
                suffix += 1
            used.add(name.lower())
            names.append(name)
        return names

    def _resolve_group_refs(
        self, group_by: list[ast.Expr], items: list[ast.SelectItem]
    ) -> list[ast.Expr]:
        """Resolve positional (GROUP BY 1) and alias references."""
        resolved: list[ast.Expr] = []
        aliases = {
            (item.alias or "").lower(): item.expr
            for item in items
            if item.alias
        }
        for expr in group_by:
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(items):
                    raise AnalysisError(
                        f"GROUP BY position {position} out of range"
                    )
                resolved.append(items[position - 1].expr)
            elif (
                isinstance(expr, ast.ColumnRef)
                and expr.qualifier is None
                and expr.name.lower() in aliases
                and not isinstance(aliases[expr.name.lower()], ast.ColumnRef)
            ):
                resolved.append(aliases[expr.name.lower()])
            else:
                resolved.append(expr)
        return resolved

    def _match_output(
        self,
        expr: ast.Expr,
        items: list[ast.SelectItem],
        output_schema: Schema,
    ) -> Optional[int]:
        """ORDER BY resolution against the select list: positions, aliases,
        and structurally identical expressions."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value
            if 1 <= position <= len(items):
                return position - 1
            raise AnalysisError(f"ORDER BY position {position} out of range")
        if isinstance(expr, ast.ColumnRef) and expr.qualifier is None:
            for index, item in enumerate(items):
                alias = item.alias or (
                    item.expr.name
                    if isinstance(item.expr, ast.ColumnRef)
                    else None
                )
                if alias and alias.lower() == expr.name.lower():
                    return index
        for index, item in enumerate(items):
            if item.expr == expr:
                return index
        return None

    def _plan_aggregate(
        self,
        plan: logical.LogicalPlan,
        scope: Scope,
        items: list[ast.SelectItem],
        group_asts: list[ast.Expr],
        having: Optional[ast.Expr],
    ):
        # Collect every aggregate call in select + having.
        agg_asts: list[ast.FunctionCall] = []
        for item in items:
            _collect_aggregates(item.expr, agg_asts)
        if having is not None:
            _collect_aggregates(having, agg_asts)

        group_bound = [self.bind(expr, scope) for expr in group_asts]
        specs: list[logical.AggregateSpec] = []
        for offset, agg_ast in enumerate(agg_asts):
            count_star = len(agg_ast.args) == 1 and isinstance(
                agg_ast.args[0], ast.Star
            )
            if count_star and agg_ast.name.lower() != "count":
                raise AnalysisError(
                    f"'*' argument is only valid in COUNT(*), not "
                    f"{agg_ast.name.upper()}"
                )
            argument = (
                None
                if count_star or not agg_ast.args
                else self.bind(agg_ast.args[0], scope)
            )
            if len(agg_ast.args) > 1:
                raise AnalysisError(
                    f"{agg_ast.name.upper()} takes one argument"
                )
            function = make_aggregate(
                agg_ast.name, agg_ast.distinct, count_star
            )
            specs.append(
                logical.AggregateSpec(
                    function=function,
                    argument=argument,
                    output_name=f"_agg{offset}",
                )
            )

        agg_fields = [
            Field(f"_g{i}", expr.data_type) for i, expr in enumerate(group_bound)
        ] + [
            Field(
                spec.output_name,
                spec.function.result_type(
                    spec.argument.data_type if spec.argument else None
                ),
            )
            for spec in specs
        ]
        agg_schema = Schema(agg_fields)
        plan = logical.Aggregate(plan, group_bound, specs, agg_schema)
        agg_scope = Scope.from_schema(agg_schema, None)
        group_signatures = [expr_signature(expr) for expr in group_bound]

        if having is not None:
            condition = self.bind_post_aggregate(
                having, group_asts, agg_asts, agg_scope, scope,
                group_signatures,
            )
            plan = logical.Filter(plan, condition)

        output_exprs = [
            self.bind_post_aggregate(
                item.expr, group_asts, agg_asts, agg_scope, scope,
                group_signatures,
            )
            for item in items
        ]
        output_schema = Schema(
            Field(name, expr.data_type)
            for name, expr in zip(self._output_names(items), output_exprs)
        )
        return plan, output_exprs, output_schema, (
            group_asts, agg_asts, agg_scope, scope, group_signatures,
        )


def _contains_in_subquery(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.InSubquery):
        return True
    if isinstance(expr, ast.BinaryOp):
        return _contains_in_subquery(expr.left) or _contains_in_subquery(
            expr.right
        )
    if isinstance(expr, ast.UnaryOp):
        return _contains_in_subquery(expr.operand)
    return False


def _split_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _join_conjuncts(conjuncts: list[ast.Expr]) -> ast.Expr:
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.BinaryOp("and", result, conjunct)
    return result


def _names_unique(scope: Scope) -> bool:
    names = [column.name.lower() for column in scope.columns]
    return len(names) == len(set(names))


def _dedupe_fields(scope: Scope) -> list[Field]:
    fields: list[Field] = []
    used: set[str] = set()
    for column in scope.columns:
        name = column.name
        if name.lower() in used and column.qualifier:
            name = f"{column.qualifier}.{column.name}"
        base = name
        suffix = 1
        while name.lower() in used:
            name = f"{base}_{suffix}"
            suffix += 1
        used.add(name.lower())
        fields.append(Field(name, column.data_type))
    return fields

"""Master recovery: a reliable log of catalog-mutating operations.

Paper, footnote 4: "Support for master recovery could also be added by
reliably logging the RDD lineage graph and the submitted jobs, because
this state is small, but we have not yet implemented this."  This module
implements that sketch for the repro system:

* every catalog-mutating operation — DDL statements and bulk loads — is
  appended to a journal file in the *reliable* distributed store (the
  same place HDFS data lives, so it survives the master);
* after a master loss, a fresh session replays the journal: DDL re-runs,
  loads re-ingest, and cached tables are rebuilt by recomputation — the
  exact recovery story lineage gives worker data, applied to the master.

What is recovered: the catalog, external table data, cached tables (with
identical rows), co-partitioning metadata.  What is not: registered UDFs
(Python callables are code, not state — re-register them, as the paper's
design also implies) and in-flight queries.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.session import SqlSession
    from repro.storage import DistributedFileStore

#: Journal location inside the reliable store.
JOURNAL_PATH = "/journal/master.log"


class MasterJournal:
    """Append-only log of statements and loads, stored reliably."""

    def __init__(self, store: "DistributedFileStore"):
        self.store = store
        if not store.exists(JOURNAL_PATH):
            store.write_file(JOURNAL_PATH, [], format="binary")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        self.store.append_block(
            JOURNAL_PATH, pickle.dumps(record, protocol=4)
        )

    def log_statement(self, text: str) -> None:
        """Log one successfully executed DDL/DML statement."""
        self._append({"kind": "statement", "text": text})

    def log_load(self, table: str, rows: list[tuple]) -> None:
        """Log one bulk load (the rows are the recovery source)."""
        self._append({"kind": "load", "table": table, "rows": rows})

    # ------------------------------------------------------------------
    # Reading / replay
    # ------------------------------------------------------------------
    def records(self) -> Iterator[dict[str, Any]]:
        stored = self.store.file(JOURNAL_PATH)
        for index in range(stored.num_blocks):
            payload = self.store.read_block(JOURNAL_PATH, index)
            record = pickle.loads(payload)
            if not isinstance(record, dict) or "kind" not in record:
                raise StorageError(
                    f"corrupt journal record at block {index}"
                )
            yield record

    def __len__(self) -> int:
        return self.store.file(JOURNAL_PATH).num_blocks

    def replay(self, session: "SqlSession") -> int:
        """Re-apply every journaled operation to a fresh session.

        Journaling is suppressed during replay (the log already holds
        these operations).  Returns the number of records applied.
        """
        applied = 0
        session_journal = session.journal
        session.journal = None  # suppress re-journaling
        try:
            for record in self.records():
                if record["kind"] == "statement":
                    session.execute(record["text"])
                elif record["kind"] == "load":
                    session.load_rows(record["table"], record["rows"])
                else:
                    raise StorageError(
                        f"unknown journal record kind {record['kind']!r}"
                    )
                applied += 1
        finally:
            session.journal = session_journal
        return applied

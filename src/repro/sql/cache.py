"""The query caching stack: plan, result, and fragment caches.

Shark's interactivity claim rests on amortizing work across the query
stream, not just within one query (paper §3.1-§3.2).  This module layers
three caches over the SQL session:

* **Plan cache** — parsed SQL is *normalized* (literals parameterized,
  identifiers case-folded, commutative predicates canonically ordered
  via :func:`repro.sql.optimizer.canonical_commutative_swap`) and the
  analyzed+optimized logical plan is cached keyed on
  ``(normalized_sql, params, catalog_ddl_version)``.  A hit skips
  parse → analyze → optimize entirely (the raw text memo short-circuits
  the parser).  Physical planning still runs per execution so adaptive
  decisions (PDE, map pruning) see live statistics.
* **Result cache** — final result sets keyed on the normalized query
  plus the *version vector* of every referenced table: one
  ``(alias, table, version)`` entry per FROM-clause occurrence (a
  self-join ``t a, t b`` contributes two entries).  The catalog bumps a
  monotonic per-table version on every journaled DDL/load/insert, so a
  stale entry's key can never be rebuilt — and an invalidation listener
  frees its memory eagerly.
* **Fragment cache** — scan-side fragments: the post-pruning,
  selection-applied :class:`~repro.columnar.batch.ColumnBatch` a
  vectorized scan decodes per block, keyed on
  ``(table, version, partition, block, columns, vector_filters)``.
  When the lifecycle manager interleaves N admitted queries over the
  same cached table, late arrivals attach to the in-flight scan's
  decoded batches (shared scans) instead of re-decoding per query —
  ``LazyColumn`` memoization makes the per-column decode happen exactly
  once.

Every cached byte is charged to the ``sql_cache`` owner in the
:class:`~repro.engine.memory.MemoryAccountant` (storage pool), and a
per-worker spill consumer lets PR 7's arbitration evict fragments
before any execution state has to spill.  All layers default *off*;
``SqlSession.enable_sql_cache()`` turns them on.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.engine.memory import DRIVER_WORKER, STORAGE
from repro.sql import ast
from repro.sql.optimizer import canonical_commutative_swap

__all__ = [
    "SqlCacheConfig",
    "SqlCache",
    "NormalizedQuery",
    "normalize_select",
]

#: Ledger attribution label for every cached byte (result rows on the
#: driver ledger, fragments on their worker's storage pool).
CACHE_OWNER = "sql_cache"


class UncacheableQuery(Exception):
    """Raised by the normalizer on AST shapes it does not cover; the
    query simply bypasses every cache layer."""


@dataclass(frozen=True)
class NormalizedQuery:
    """One SELECT's cache identity: canonical text, extracted literal
    parameters, and the per-alias table references (one entry per
    FROM-clause occurrence, subqueries included)."""

    text: str
    params: tuple
    #: ``(alias_lower, table_lower)`` per occurrence, traversal order.
    tables: tuple


@dataclass
class SqlCacheConfig:
    """Knobs for the three cache layers (all sizes driver-side caps;
    fragment bytes are additionally subject to memory arbitration)."""

    enable_plan: bool = True
    enable_result: bool = True
    enable_fragments: bool = True
    max_plan_entries: int = 128
    max_result_entries: int = 256
    max_result_bytes: int = 16 * 1024 * 1024
    max_fragment_bytes: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.max_plan_entries < 1:
            raise ValueError("max_plan_entries must be >= 1")
        if self.max_result_entries < 1:
            raise ValueError("max_result_entries must be >= 1")


# ---------------------------------------------------------------------------
# SQL normalization (literal parameterization + canonicalization)
# ---------------------------------------------------------------------------


def _norm_expr(expr: ast.Expr, params: list) -> str:
    if isinstance(expr, ast.Literal):
        params.append(expr.value)
        return "?"
    if isinstance(expr, ast.ColumnRef):
        if expr.qualifier:
            return f"{expr.qualifier.lower()}.{expr.name.lower()}"
        return expr.name.lower()
    if isinstance(expr, ast.Star):
        return f"{expr.qualifier.lower()}.*" if expr.qualifier else "*"
    if isinstance(expr, ast.BinaryOp):
        op = expr.op.lower()
        if op == "<>":
            op = "!="
        left_params: list = []
        right_params: list = []
        left = _norm_expr(expr.left, left_params)
        right = _norm_expr(expr.right, right_params)
        if canonical_commutative_swap(op, left, right):
            left, right = right, left
            left_params, right_params = right_params, left_params
        params.extend(left_params)
        params.extend(right_params)
        return f"({left} {op} {right})"
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.op.lower()} {_norm_expr(expr.operand, params)})"
    if isinstance(expr, ast.FunctionCall):
        inner = ", ".join(_norm_expr(arg, params) for arg in expr.args)
        prefix = "distinct " if expr.distinct else ""
        return f"{expr.name.lower()}({prefix}{inner})"
    if isinstance(expr, ast.CaseWhen):
        parts = ["case"]
        if expr.operand is not None:
            parts.append(_norm_expr(expr.operand, params))
        for condition, value in expr.branches:
            parts.append(
                f"when {_norm_expr(condition, params)} "
                f"then {_norm_expr(value, params)}"
            )
        if expr.otherwise is not None:
            parts.append(f"else {_norm_expr(expr.otherwise, params)}")
        parts.append("end")
        return " ".join(parts)
    if isinstance(expr, ast.Cast):
        operand = _norm_expr(expr.operand, params)
        return f"cast({operand} as {expr.type_name.lower()})"
    if isinstance(expr, ast.Between):
        op = "not between" if expr.negated else "between"
        operand = _norm_expr(expr.operand, params)
        low = _norm_expr(expr.low, params)
        high = _norm_expr(expr.high, params)
        return f"({operand} {op} {low} and {high})"
    if isinstance(expr, ast.InList):
        op = "not in" if expr.negated else "in"
        operand = _norm_expr(expr.operand, params)
        inner = ", ".join(_norm_expr(o, params) for o in expr.options)
        return f"({operand} {op} ({inner}))"
    if isinstance(expr, ast.InSubquery):
        op = "not in" if expr.negated else "in"
        operand = _norm_expr(expr.operand, params)
        return f"({operand} {op} ({_norm_select(expr.query, params)}))"
    if isinstance(expr, ast.Like):
        op = "not like" if expr.negated else "like"
        operand = _norm_expr(expr.operand, params)
        return f"({operand} {op} {_norm_expr(expr.pattern, params)})"
    if isinstance(expr, ast.IsNull):
        op = "is not null" if expr.negated else "is null"
        return f"({_norm_expr(expr.operand, params)} {op})"
    raise UncacheableQuery(f"unnormalizable expression {type(expr).__name__}")


def _norm_relation(relation: ast.Relation, params: list) -> str:
    if isinstance(relation, ast.TableRef):
        name = relation.name.lower()
        alias = (relation.alias or relation.name).lower()
        return f"{name} {alias}" if alias != name else name
    if isinstance(relation, ast.SubqueryRef):
        inner = _norm_select(relation.query, params)
        return f"({inner}) {relation.alias.lower()}"
    if isinstance(relation, ast.JoinRef):
        left = _norm_relation(relation.left, params)
        right = _norm_relation(relation.right, params)
        text = f"({left} {relation.join_type.lower()} join {right}"
        if relation.condition is not None:
            text += f" on {_norm_expr(relation.condition, params)}"
        return text + ")"
    raise UncacheableQuery(f"unnormalizable relation {type(relation).__name__}")


def _norm_select(select: ast.SelectStatement, params: list) -> str:
    parts = ["select"]
    if select.distinct:
        parts.append("distinct")
    items = []
    for item in select.items:
        text = _norm_expr(item.expr, params)
        if item.alias:
            text += f" as {item.alias.lower()}"
        items.append(text)
    parts.append(", ".join(items))
    if select.relation is not None:
        parts.append(f"from {_norm_relation(select.relation, params)}")
    if select.where is not None:
        parts.append(f"where {_norm_expr(select.where, params)}")
    if select.group_by:
        keys = ", ".join(_norm_expr(e, params) for e in select.group_by)
        parts.append(f"group by {keys}")
    if select.having is not None:
        parts.append(f"having {_norm_expr(select.having, params)}")
    if select.order_by:
        keys = ", ".join(
            _norm_expr(item.expr, params)
            + ("" if item.ascending else " desc")
            for item in select.order_by
        )
        parts.append(f"order by {keys}")
    if select.limit is not None:
        # LIMIT shapes the result; keep it in the text, not the params.
        parts.append(f"limit {select.limit}")
    if select.distribute_by:
        keys = ", ".join(
            _norm_expr(e, params) for e in select.distribute_by
        )
        parts.append(f"distribute by {keys}")
    for branch in select.union_all:
        parts.append(f"union all {_norm_select(branch, params)}")
    return " ".join(parts)


def _walk_exprs(expr: Optional[ast.Expr]) -> Iterator[ast.Expr]:
    if expr is None:
        return
    yield expr
    if isinstance(expr, ast.BinaryOp):
        yield from _walk_exprs(expr.left)
        yield from _walk_exprs(expr.right)
    elif isinstance(expr, ast.UnaryOp):
        yield from _walk_exprs(expr.operand)
    elif isinstance(expr, ast.FunctionCall):
        for arg in expr.args:
            yield from _walk_exprs(arg)
    elif isinstance(expr, ast.CaseWhen):
        yield from _walk_exprs(expr.operand)
        for condition, value in expr.branches:
            yield from _walk_exprs(condition)
            yield from _walk_exprs(value)
        yield from _walk_exprs(expr.otherwise)
    elif isinstance(expr, ast.Cast):
        yield from _walk_exprs(expr.operand)
    elif isinstance(expr, ast.Between):
        yield from _walk_exprs(expr.operand)
        yield from _walk_exprs(expr.low)
        yield from _walk_exprs(expr.high)
    elif isinstance(expr, (ast.InList, ast.Like)):
        yield from _walk_exprs(expr.operand)
        if isinstance(expr, ast.InList):
            for option in expr.options:
                yield from _walk_exprs(option)
        else:
            yield from _walk_exprs(expr.pattern)
    elif isinstance(expr, ast.InSubquery):
        yield from _walk_exprs(expr.operand)
    elif isinstance(expr, ast.IsNull):
        yield from _walk_exprs(expr.operand)


def _collect_tables(select: ast.SelectStatement, out: list) -> None:
    """Every referenced table, one ``(alias, table)`` entry *per
    occurrence* — a self-join or a FROM-clause subquery over the same
    table must contribute one version entry per alias, or two queries
    differing only in how often they scan the table could collide."""

    def relation(rel: Optional[ast.Relation]) -> None:
        if rel is None:
            return
        if isinstance(rel, ast.TableRef):
            name = rel.name.lower()
            out.append(((rel.alias or rel.name).lower(), name))
        elif isinstance(rel, ast.SubqueryRef):
            _collect_tables(rel.query, out)
        elif isinstance(rel, ast.JoinRef):
            relation(rel.left)
            relation(rel.right)

    relation(select.relation)
    roots = [item.expr for item in select.items]
    roots.append(select.where)
    roots.extend(select.group_by)
    roots.append(select.having)
    roots.extend(item.expr for item in select.order_by)
    for root in roots:
        for expr in _walk_exprs(root):
            if isinstance(expr, ast.InSubquery):
                _collect_tables(expr.query, out)
    for branch in select.union_all:
        _collect_tables(branch, out)


def normalize_select(select: ast.SelectStatement) -> NormalizedQuery:
    """Canonical cache identity for one SELECT statement.

    Raises :class:`UncacheableQuery` on AST shapes the normalizer does
    not cover (the query then bypasses the cache stack entirely).
    """
    params: list = []
    text = _norm_select(select, params)
    tables: list = []
    _collect_tables(select, tables)
    return NormalizedQuery(text, tuple(params), tuple(tables))


# ---------------------------------------------------------------------------
# Cache entries
# ---------------------------------------------------------------------------


@dataclass
class _PlanEntry:
    plan: Any
    schema: Any
    #: Tables the plan references (eager invalidation on DDL).
    tables: frozenset


@dataclass
class _ResultEntry:
    rows: list
    schema: Any
    nbytes: int
    tables: frozenset


@dataclass
class _FragmentEntry:
    batch: Any
    nbytes: int
    worker_id: int
    #: CancelToken of the producing query (None outside the lifecycle);
    #: a hit under a *different* token is a shared-scan attach.
    producer_token: Any = field(default=None, repr=False)


class _FragmentSpillConsumer:
    """Arbitration adapter: under memory pressure the accountant asks
    registered consumers to shed state — evicting cached fragments is
    pure release (nothing is written), so cache entries go before any
    execution operator has to spill."""

    __slots__ = ("_cache", "_worker_id", "owner")

    def __init__(self, cache: "SqlCache", worker_id: int):
        self._cache = cache
        self._worker_id = worker_id
        self.owner = CACHE_OWNER

    def spill(self, nbytes: int) -> tuple[int, int, int]:
        released = self._cache.evict_worker_fragments(
            self._worker_id, nbytes
        )
        return released, 0, 0


def _rows_nbytes(rows: list) -> int:
    """Driver-heap estimate for a materialized result set."""
    total = sys.getsizeof(rows)
    for row in rows:
        total += sys.getsizeof(row)
        for value in row:
            total += sys.getsizeof(value)
    return total


# ---------------------------------------------------------------------------
# The cache stack
# ---------------------------------------------------------------------------


class SqlCache:
    """Three-layer query cache bound to one session's catalog and
    engine context (see the module docstring for the layer contract)."""

    def __init__(self, ctx, catalog, config: Optional[SqlCacheConfig] = None):
        self._ctx = ctx
        self.catalog = catalog
        self.config = config if config is not None else SqlCacheConfig()
        #: Raw SQL text -> NormalizedQuery (None = known-uncacheable);
        #: a memo hit skips the parser entirely.
        self._text_memo: dict[str, Optional[NormalizedQuery]] = {}
        self._plans: OrderedDict = OrderedDict()
        self._results: OrderedDict = OrderedDict()
        self._fragments: OrderedDict = OrderedDict()
        self._result_bytes = 0
        self._fragment_bytes = 0
        # Lifetime tallies (summary_lines is self-contained; the metric
        # registry mirrors these).
        self.plan_hits = 0
        self.plan_misses = 0
        self.result_hits = 0
        self.result_misses = 0
        self.fragment_hits = 0
        self.fragment_misses = 0
        self.shared_attached = 0
        self.invalidations = 0
        self.evictions = 0
        catalog.add_listener(self._on_table_change)
        for worker in ctx.cluster.workers:
            ctx.memory.register_spill_consumer(
                worker.worker_id, _FragmentSpillConsumer(self, worker.worker_id)
            )

    # ------------------------------------------------------------------
    # Text memo
    # ------------------------------------------------------------------
    _MISSING = object()

    def memo_for(self, text: str):
        """The memoized :class:`NormalizedQuery` for ``text``, ``None``
        when the text is known-uncacheable, or ``SqlCache._MISSING``
        when the text has never been normalized."""
        return self._text_memo.get(text, SqlCache._MISSING)

    def memoize(self, text: str, select: ast.SelectStatement):
        """Normalize ``select`` and memoize it under its raw text.
        Returns the NormalizedQuery, or None when uncacheable."""
        try:
            normalized = normalize_select(select)
        except UncacheableQuery:
            normalized = None
        self._text_memo[text] = normalized
        if len(self._text_memo) > 4 * self.config.max_plan_entries:
            # The memo is bounded by the plan cache's horizon; drop the
            # oldest half when it overgrows (plain dicts iterate in
            # insertion order).
            for stale in list(self._text_memo)[
                : len(self._text_memo) // 2
            ]:
                del self._text_memo[stale]
        return normalized

    # ------------------------------------------------------------------
    # Versions
    # ------------------------------------------------------------------
    def version_vector(
        self, normalized: NormalizedQuery
    ) -> Optional[tuple]:
        """``(alias, table, version)`` per referenced-table occurrence,
        or None when any table is unknown (bypass: the normal path will
        produce the proper analyzer error)."""
        vector = []
        for alias, table in normalized.tables:
            if not self.catalog.exists(table):
                return None
            vector.append((alias, table, self.catalog.version(table)))
        return tuple(vector)

    def table_version(self, name: str) -> int:
        return self.catalog.version(name)

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    def plan_lookup(self, normalized: NormalizedQuery):
        """The cached (optimized plan, schema) pair, or None."""
        metrics = self._ctx.tracer.metrics
        if not self.config.enable_plan:
            return None
        key = (normalized.text, normalized.params, self.catalog.ddl_version)
        entry = self._plans.get(key)
        if entry is None:
            self.plan_misses += 1
            metrics.inc("sqlcache.plan.misses")
            return None
        self._plans.move_to_end(key)
        self.plan_hits += 1
        metrics.inc("sqlcache.plan.hits")
        return entry.plan, entry.schema

    def plan_store(
        self, normalized: NormalizedQuery, plan, schema
    ) -> None:
        if not self.config.enable_plan:
            return
        key = (normalized.text, normalized.params, self.catalog.ddl_version)
        tables = frozenset(table for __, table in normalized.tables)
        self._plans[key] = _PlanEntry(plan, schema, tables)
        self._plans.move_to_end(key)
        while len(self._plans) > self.config.max_plan_entries:
            self._plans.popitem(last=False)
        self._update_gauges()

    # ------------------------------------------------------------------
    # Result cache
    # ------------------------------------------------------------------
    def result_lookup(self, normalized: NormalizedQuery):
        """The cached (rows, schema) for the current version vector, or
        None.  Rows are returned as a fresh list (callers own it)."""
        metrics = self._ctx.tracer.metrics
        if not self.config.enable_result:
            return None
        vector = self.version_vector(normalized)
        if vector is None:
            return None
        key = (normalized.text, normalized.params, vector)
        entry = self._results.get(key)
        if entry is None:
            self.result_misses += 1
            metrics.inc("sqlcache.result.misses")
            return None
        self._results.move_to_end(key)
        self.result_hits += 1
        metrics.inc("sqlcache.result.hits")
        return list(entry.rows), entry.schema

    def result_store(
        self, normalized: NormalizedQuery, rows: list, schema
    ) -> None:
        if not self.config.enable_result:
            return
        vector = self.version_vector(normalized)
        if vector is None:
            return
        key = (normalized.text, normalized.params, vector)
        if key in self._results:
            return
        nbytes = _rows_nbytes(rows)
        if nbytes > self.config.max_result_bytes:
            return
        self._ctx.memory.reserve(DRIVER_WORKER, STORAGE, CACHE_OWNER, nbytes)
        self._result_bytes += nbytes
        tables = frozenset(table for __, table in normalized.tables)
        self._results[key] = _ResultEntry(list(rows), schema, nbytes, tables)
        while (
            len(self._results) > self.config.max_result_entries
            or self._result_bytes > self.config.max_result_bytes
        ):
            stale_key, stale = self._results.popitem(last=False)
            self._drop_result(stale)
        self._update_gauges()

    def _drop_result(self, entry: _ResultEntry, evicted: bool = True) -> None:
        metrics = self._ctx.tracer.metrics
        self._ctx.memory.release(
            DRIVER_WORKER, STORAGE, CACHE_OWNER, entry.nbytes
        )
        self._result_bytes -= entry.nbytes
        if evicted:
            self.evictions += 1
            metrics.inc("sqlcache.evictions")
            metrics.inc("sqlcache.evicted.bytes", entry.nbytes)

    # ------------------------------------------------------------------
    # Fragment cache (scan-side decoded batches)
    # ------------------------------------------------------------------
    def fragment_key(
        self,
        scope: tuple,
        split: int,
        ordinal: int,
        column_indices,
        vector_filters,
    ) -> tuple:
        """``scope`` is the scan-time binding from the physical layer:
        ``(table, version, kept_partitions_or_None)``.  The key maps the
        pruned split index back to the original partition id, so two
        queries with different pruning still share surviving blocks."""
        table, version, kept = scope
        partition = kept[split] if kept is not None else split
        return (
            table,
            version,
            partition,
            ordinal,
            tuple(column_indices),
            tuple(vector_filters),
        )

    def fragment_lookup(self, key: tuple):
        """The cached post-selection ColumnBatch, or None."""
        metrics = self._ctx.tracer.metrics
        entry = self._fragments.get(key)
        if entry is None:
            self.fragment_misses += 1
            metrics.inc("sqlcache.fragment.misses")
            return None
        self._fragments.move_to_end(key)
        self.fragment_hits += 1
        metrics.inc("sqlcache.fragment.hits")
        lifecycle = self._ctx.lifecycle
        if lifecycle is not None and lifecycle.in_query():
            token = lifecycle.current_token()
            if token is not entry.producer_token:
                # A different admitted query attached to this scan's
                # decoded batches: the shared-scan path.
                self.shared_attached += 1
                metrics.inc("sqlcache.shared.attached")
        return entry.batch

    def fragment_store(self, key: tuple, batch, worker_id: int) -> None:
        if key in self._fragments:
            return
        nbytes = batch.memory_footprint_bytes()
        self._ctx.memory.reserve(worker_id, STORAGE, CACHE_OWNER, nbytes)
        self._fragment_bytes += nbytes
        lifecycle = self._ctx.lifecycle
        token = (
            lifecycle.current_token()
            if lifecycle is not None and lifecycle.in_query()
            else None
        )
        self._fragments[key] = _FragmentEntry(
            batch, nbytes, worker_id, producer_token=token
        )
        while self._fragment_bytes > self.config.max_fragment_bytes:
            if len(self._fragments) <= 1:
                break
            stale_key, stale = self._fragments.popitem(last=False)
            self._drop_fragment(stale)
        self._update_gauges()

    def _drop_fragment(
        self, entry: _FragmentEntry, evicted: bool = True
    ) -> None:
        metrics = self._ctx.tracer.metrics
        self._ctx.memory.release(
            entry.worker_id, STORAGE, CACHE_OWNER, entry.nbytes
        )
        self._fragment_bytes -= entry.nbytes
        if evicted:
            self.evictions += 1
            metrics.inc("sqlcache.evictions")
            metrics.inc("sqlcache.evicted.bytes", entry.nbytes)

    def evict_worker_fragments(self, worker_id: int, nbytes: int) -> int:
        """LRU-evict this worker's fragments until ``nbytes`` are freed
        (the arbitration spill-consumer entry point).  Returns the bytes
        released."""
        released = 0
        for key in list(self._fragments):
            if released >= nbytes:
                break
            entry = self._fragments[key]
            if entry.worker_id != worker_id:
                continue
            del self._fragments[key]
            self._drop_fragment(entry)
            released += entry.nbytes
        if released:
            self._update_gauges()
        return released

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def _on_table_change(self, table: str, version: int, ddl: bool) -> None:
        """Catalog listener: ``table``'s version moved (load/insert) or
        its DDL identity changed (create/drop/cache/uncache).  Stale
        keys can never be rebuilt — this eagerly frees their memory."""
        metrics = self._ctx.tracer.metrics
        dropped = 0
        for key in [
            key
            for key, entry in self._results.items()
            if table in entry.tables
        ]:
            self._drop_result(self._results.pop(key), evicted=False)
            dropped += 1
        for key in [key for key in self._fragments if key[0] == table]:
            self._drop_fragment(self._fragments.pop(key), evicted=False)
            dropped += 1
        if ddl:
            for key in [
                key
                for key, entry in self._plans.items()
                if table in entry.tables
            ]:
                del self._plans[key]
                dropped += 1
        if dropped:
            self.invalidations += dropped
            metrics.inc("sqlcache.invalidations", dropped)
        self._update_gauges()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _update_gauges(self) -> None:
        metrics = self._ctx.tracer.metrics
        metrics.set_gauge(
            "sqlcache.bytes", self._result_bytes + self._fragment_bytes
        )
        metrics.set_gauge(
            "sqlcache.entries",
            len(self._plans) + len(self._results) + len(self._fragments),
        )

    @property
    def bytes_cached(self) -> int:
        return self._result_bytes + self._fragment_bytes

    def summary_lines(self) -> list[str]:
        """The ``== sql cache ==`` section for EXPLAIN ANALYZE and the
        shell's ``.cache`` dot-command."""

        def ratio(hits: int, misses: int) -> str:
            total = hits + misses
            if not total:
                return "no lookups"
            return f"{hits}/{total} hits ({100.0 * hits / total:.0f}%)"

        return [
            f"plan cache: {len(self._plans)} entries, "
            f"{ratio(self.plan_hits, self.plan_misses)}",
            f"result cache: {len(self._results)} entries, "
            f"{self._result_bytes} B, "
            f"{ratio(self.result_hits, self.result_misses)}",
            f"fragment cache: {len(self._fragments)} entries, "
            f"{self._fragment_bytes} B, "
            f"{ratio(self.fragment_hits, self.fragment_misses)}, "
            f"{self.shared_attached} shared-scan attach(es)",
            f"invalidated {self.invalidations}, evicted {self.evictions}, "
            f"{self.bytes_cached} B charged to '{CACHE_OWNER}'",
        ]

"""Abstract syntax tree produced by the parser.

Pure data: no name resolution or typing here (the analyzer does that).
Expression nodes share the :class:`Expr` base; statement nodes share
:class:`Statement`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class Expr:
    """Base class for expression AST nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference (``t.col`` or ``col``)."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``t.*`` in a select list or COUNT(*)."""

    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op.upper()} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # 'not' | '-'
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op.upper()} {self.operand})"


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str
    args: tuple[Expr, ...]
    distinct: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name.upper()}({prefix}{inner})"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """CASE [operand] WHEN c THEN v ... [ELSE d] END."""

    operand: Optional[Expr]
    branches: tuple[tuple[Expr, Expr], ...]
    otherwise: Optional[Expr]

    def __str__(self) -> str:
        parts = ["CASE"]
        if self.operand is not None:
            parts.append(str(self.operand))
        for condition, value in self.branches:
            parts.append(f"WHEN {condition} THEN {value}")
        if self.otherwise is not None:
            parts.append(f"ELSE {self.otherwise}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class Cast(Expr):
    operand: Expr
    type_name: str

    def __str__(self) -> str:
        return f"CAST({self.operand} AS {self.type_name.upper()})"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def __str__(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand} {op} {self.low} AND {self.high})"


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    options: tuple[Expr, ...]
    negated: bool = False

    def __str__(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        inner = ", ".join(str(o) for o in self.options)
        return f"({self.operand} {op} ({inner}))"


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)`` — uncorrelated subqueries only."""

    operand: Expr
    query: "SelectStatement"
    negated: bool = False

    def __str__(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {op} (<subquery>))"


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False

    def __str__(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand} {op} {self.pattern})"


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def __str__(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {op})"


# ---------------------------------------------------------------------------
# Relations (FROM clause)
# ---------------------------------------------------------------------------


class Relation:
    """Base class for FROM-clause items."""


@dataclass(frozen=True)
class TableRef(Relation):
    name: str
    alias: Optional[str] = None


@dataclass(frozen=True)
class SubqueryRef(Relation):
    query: "SelectStatement"
    alias: str


@dataclass(frozen=True)
class JoinRef(Relation):
    left: Relation
    right: Relation
    join_type: str  # 'inner' | 'left' | 'right' | 'full'
    condition: Optional[Expr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for statement AST nodes."""


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass
class SelectStatement(Statement):
    items: list[SelectItem]
    relation: Optional[Relation] = None
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
    #: UNION ALL branches appended after this select.
    union_all: list["SelectStatement"] = field(default_factory=list)
    #: DISTRIBUTE BY columns (Shark co-partitioning, Section 3.4).
    distribute_by: list[Expr] = field(default_factory=list)


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str


@dataclass
class CreateTable(Statement):
    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    properties: dict[str, str] = field(default_factory=dict)
    as_select: Optional[SelectStatement] = None
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass
class InsertInto(Statement):
    table: str
    select: Optional[SelectStatement] = None
    values: list[list[Expr]] = field(default_factory=list)


@dataclass(frozen=True)
class Explain(Statement):
    statement: Statement
    #: EXPLAIN ANALYZE: execute the statement and annotate the plan with
    #: per-stage runtime metrics.
    analyze: bool = False


@dataclass(frozen=True)
class CacheTable(Statement):
    name: str
    uncache: bool = False

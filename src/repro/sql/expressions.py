"""Bound (resolved, typed) expressions evaluated over rows.

The analyzer converts AST expressions into this tree: column references
become ordinal indices into the operator's input row, functions are
resolved against the builtin/UDF registries, and types are checked.  SQL
three-valued logic is honoured: comparisons and arithmetic involving NULL
yield NULL, AND/OR follow Kleene logic, and WHERE keeps only rows whose
predicate is exactly TRUE.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional, Sequence

from repro.datatypes import (
    BOOLEAN,
    DOUBLE,
    DataType,
    promote,
)
from repro.errors import TypeMismatchError


class BoundExpr:
    """Base class: a typed expression evaluable against a row tuple."""

    def __init__(self, data_type: DataType, name: str):
        self.data_type = data_type
        self.name = name

    def eval(self, row: tuple) -> Any:
        raise NotImplementedError

    def children(self) -> Sequence["BoundExpr"]:
        return ()

    def references(self) -> set[int]:
        """Input ordinals this expression reads (for column pruning)."""
        refs: set[int] = set()
        stack: list[BoundExpr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, BoundColumn):
                refs.add(node.index)
            stack.extend(node.children())
        return refs

    @property
    def is_deterministic_literal(self) -> bool:
        return isinstance(self, BoundLiteral)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class BoundLiteral(BoundExpr):
    def __init__(self, value: Any, data_type: DataType):
        super().__init__(data_type, repr(value))
        self.value = value

    def eval(self, row: tuple) -> Any:
        return self.value


class BoundColumn(BoundExpr):
    """A reference to ordinal ``index`` of the input row."""

    def __init__(self, index: int, data_type: DataType, name: str):
        super().__init__(data_type, name)
        self.index = index

    def eval(self, row: tuple) -> Any:
        return row[self.index]


class BoundArithmetic(BoundExpr):
    _OPS: dict[str, Callable[[Any, Any], Any]] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "%": lambda a, b: a % b,
    }

    def __init__(self, op: str, left: BoundExpr, right: BoundExpr):
        if op == "/":
            data_type = DOUBLE
        elif op == "+" and not _is_numeric_like(left) and not _is_numeric_like(right):
            # String concatenation via '+' is rejected; use CONCAT.
            raise TypeMismatchError(
                f"cannot apply '+' to {left.data_type} and {right.data_type}"
            )
        else:
            data_type = promote(left.data_type, right.data_type)
        super().__init__(data_type, f"({left.name} {op} {right.name})")
        self.op = op
        self.left = left
        self.right = right
        self._fn = self._OPS.get(op)

    def eval(self, row: tuple) -> Any:
        left = self.left.eval(row)
        right = self.right.eval(row)
        if left is None or right is None:
            return None
        if self.op in ("/", "%") and right == 0:
            return None  # SQL: division/modulo by zero yields NULL (Hive).
        if self.op == "/":
            return left / right
        return self._fn(left, right)

    def children(self) -> Sequence[BoundExpr]:
        return (self.left, self.right)


def _is_numeric_like(expr: BoundExpr) -> bool:
    from repro.datatypes import is_numeric

    return is_numeric(expr.data_type)


class BoundComparison(BoundExpr):
    _OPS: dict[str, Callable[[Any, Any], bool]] = {
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __init__(self, op: str, left: BoundExpr, right: BoundExpr):
        super().__init__(BOOLEAN, f"({left.name} {op} {right.name})")
        self.op = op
        self.left = left
        self.right = right
        self._fn = self._OPS[op]

    def eval(self, row: tuple) -> Optional[bool]:
        left = self.left.eval(row)
        right = self.right.eval(row)
        if left is None or right is None:
            return None
        return self._fn(left, right)

    def children(self) -> Sequence[BoundExpr]:
        return (self.left, self.right)


class BoundAnd(BoundExpr):
    def __init__(self, left: BoundExpr, right: BoundExpr):
        super().__init__(BOOLEAN, f"({left.name} AND {right.name})")
        self.left = left
        self.right = right

    def eval(self, row: tuple) -> Optional[bool]:
        left = self.left.eval(row)
        if left is False:
            return False
        right = self.right.eval(row)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True

    def children(self) -> Sequence[BoundExpr]:
        return (self.left, self.right)


class BoundOr(BoundExpr):
    def __init__(self, left: BoundExpr, right: BoundExpr):
        super().__init__(BOOLEAN, f"({left.name} OR {right.name})")
        self.left = left
        self.right = right

    def eval(self, row: tuple) -> Optional[bool]:
        left = self.left.eval(row)
        if left is True:
            return True
        right = self.right.eval(row)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    def children(self) -> Sequence[BoundExpr]:
        return (self.left, self.right)


class BoundNot(BoundExpr):
    def __init__(self, operand: BoundExpr):
        super().__init__(BOOLEAN, f"(NOT {operand.name})")
        self.operand = operand

    def eval(self, row: tuple) -> Optional[bool]:
        value = self.operand.eval(row)
        if value is None:
            return None
        return not value

    def children(self) -> Sequence[BoundExpr]:
        return (self.operand,)


class BoundNegate(BoundExpr):
    def __init__(self, operand: BoundExpr):
        super().__init__(operand.data_type, f"(-{operand.name})")
        self.operand = operand

    def eval(self, row: tuple) -> Any:
        value = self.operand.eval(row)
        return None if value is None else -value

    def children(self) -> Sequence[BoundExpr]:
        return (self.operand,)


class BoundBetween(BoundExpr):
    def __init__(
        self, operand: BoundExpr, low: BoundExpr, high: BoundExpr,
        negated: bool = False,
    ):
        name = f"({operand.name} BETWEEN {low.name} AND {high.name})"
        super().__init__(BOOLEAN, name)
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def eval(self, row: tuple) -> Optional[bool]:
        value = self.operand.eval(row)
        low = self.low.eval(row)
        high = self.high.eval(row)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if self.negated else result

    def children(self) -> Sequence[BoundExpr]:
        return (self.operand, self.low, self.high)


class BoundIn(BoundExpr):
    def __init__(
        self, operand: BoundExpr, options: list[BoundExpr],
        negated: bool = False,
    ):
        inner = ", ".join(option.name for option in options)
        super().__init__(BOOLEAN, f"({operand.name} IN ({inner}))")
        self.operand = operand
        self.options = list(options)
        self.negated = negated
        # Fast path: constant option list becomes one set lookup.
        if all(isinstance(option, BoundLiteral) for option in options):
            self._constant_set: Optional[frozenset] = frozenset(
                option.value for option in options
            )
        else:
            self._constant_set = None

    def eval(self, row: tuple) -> Optional[bool]:
        value = self.operand.eval(row)
        if value is None:
            return None
        if self._constant_set is not None:
            result = value in self._constant_set
        else:
            result = any(option.eval(row) == value for option in self.options)
        return not result if self.negated else result

    def children(self) -> Sequence[BoundExpr]:
        return (self.operand, *self.options)


def like_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern (%, _) to an anchored regex."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


class BoundLike(BoundExpr):
    def __init__(
        self, operand: BoundExpr, pattern: BoundExpr, negated: bool = False
    ):
        super().__init__(BOOLEAN, f"({operand.name} LIKE {pattern.name})")
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        if isinstance(pattern, BoundLiteral) and isinstance(pattern.value, str):
            self._compiled: Optional[re.Pattern] = like_to_regex(pattern.value)
        else:
            self._compiled = None

    def eval(self, row: tuple) -> Optional[bool]:
        value = self.operand.eval(row)
        if value is None:
            return None
        if self._compiled is not None:
            regex = self._compiled
        else:
            pattern = self.pattern.eval(row)
            if pattern is None:
                return None
            regex = like_to_regex(pattern)
        result = regex.match(value) is not None
        return not result if self.negated else result

    def children(self) -> Sequence[BoundExpr]:
        return (self.operand, self.pattern)


class BoundIsNull(BoundExpr):
    def __init__(self, operand: BoundExpr, negated: bool = False):
        suffix = "IS NOT NULL" if negated else "IS NULL"
        super().__init__(BOOLEAN, f"({operand.name} {suffix})")
        self.operand = operand
        self.negated = negated

    def eval(self, row: tuple) -> bool:
        result = self.operand.eval(row) is None
        return not result if self.negated else result

    def children(self) -> Sequence[BoundExpr]:
        return (self.operand,)


class BoundCase(BoundExpr):
    def __init__(
        self,
        branches: list[tuple[BoundExpr, BoundExpr]],
        otherwise: Optional[BoundExpr],
        data_type: DataType,
    ):
        super().__init__(data_type, "CASE")
        self.branches = list(branches)
        self.otherwise = otherwise

    def eval(self, row: tuple) -> Any:
        for condition, value in self.branches:
            if condition.eval(row) is True:
                return value.eval(row)
        if self.otherwise is not None:
            return self.otherwise.eval(row)
        return None

    def children(self) -> Sequence[BoundExpr]:
        kids: list[BoundExpr] = []
        for condition, value in self.branches:
            kids.extend((condition, value))
        if self.otherwise is not None:
            kids.append(self.otherwise)
        return kids


class BoundCast(BoundExpr):
    def __init__(self, operand: BoundExpr, target: DataType,
                 cast_fn: Callable[[Any], Any]):
        super().__init__(target, f"CAST({operand.name} AS {target})")
        self.operand = operand
        self._cast_fn = cast_fn

    def eval(self, row: tuple) -> Any:
        value = self.operand.eval(row)
        if value is None:
            return None
        return self._cast_fn(value)

    def children(self) -> Sequence[BoundExpr]:
        return (self.operand,)


class BoundScalarCall(BoundExpr):
    """A builtin scalar function or user-defined function call."""

    def __init__(
        self,
        name: str,
        fn: Callable[..., Any],
        args: list[BoundExpr],
        data_type: DataType,
        null_propagating: bool = True,
    ):
        arg_names = ", ".join(arg.name for arg in args)
        super().__init__(data_type, f"{name}({arg_names})")
        self.function_name = name
        self._fn = fn
        self.args = list(args)
        self._null_propagating = null_propagating

    def eval(self, row: tuple) -> Any:
        values = [arg.eval(row) for arg in self.args]
        if self._null_propagating and any(value is None for value in values):
            return None
        return self._fn(*values)

    def children(self) -> Sequence[BoundExpr]:
        return self.args


def expr_signature(expr: BoundExpr) -> tuple:
    """A structural identity for a bound expression.

    Two expressions with equal signatures compute the same value over the
    same input row, regardless of how they were spelled (``sourceIP`` vs
    ``UV.sourceIP``).  Used to match SELECT expressions against GROUP BY
    expressions semantically.
    """
    extra: tuple = ()
    if isinstance(expr, BoundColumn):
        return ("col", expr.index)
    if isinstance(expr, BoundLiteral):
        return ("lit", expr.value)
    if isinstance(expr, (BoundComparison, BoundArithmetic)):
        extra = (expr.op,)
    elif isinstance(expr, BoundScalarCall):
        extra = (expr.function_name,)
    elif isinstance(expr, (BoundBetween, BoundIn, BoundLike, BoundIsNull)):
        extra = (expr.negated,)
    elif isinstance(expr, BoundCast):
        extra = (expr.data_type.name,)
    children = tuple(expr_signature(child) for child in expr.children())
    return (type(expr).__name__, extra, children)


def rewrite_columns(expr: BoundExpr, mapping: dict[int, int]) -> BoundExpr:
    """Return a copy of ``expr`` with column ordinals remapped.

    Used by pushdown rules that move a predicate across a projection or to
    one side of a join: the predicate's input layout changes, so its
    column indices must be rebased.
    """
    import copy

    clone = copy.deepcopy(expr)
    stack: list[BoundExpr] = [clone]
    while stack:
        node = stack.pop()
        if isinstance(node, BoundColumn):
            node.index = mapping[node.index]
        for child in node.children():
            stack.append(child)
    return clone

"""The physical planner: logical plan -> RDD dataflow, with run-time
optimization.

This is where the paper's Section 3 machinery comes together:

* **map pruning** (3.5): Filter-over-Scan consults per-partition column
  statistics and never launches tasks for partitions that cannot match;
* **join selection** (3.1.1): static size estimates pick broadcast joins
  when a side is known-small; when sizes are unknown (fresh data, UDFs),
  PDE pre-runs the likely-small side's map stage, reads the observed size,
  and switches to a map join if it is small — reusing the materialized
  pre-shuffle either way;
* **co-partitioned joins** (3.4): both sides stored DISTRIBUTE BY the join
  key -> all-narrow cogroup, no shuffle;
* **degree-of-parallelism + skew** (3.1.2): aggregations shuffle into
  fine-grained buckets; PDE reads bucket sizes and greedily bin-packs them
  into balanced coalesced reduce partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.datatypes import Schema
from repro.engine.partitioner import HashPartitioner, Partitioner
from repro.engine.rdd import RDD, ShuffledRDD
from repro.errors import UnsupportedFeatureError
from repro.pde import (
    JoinDecision,
    choose_num_reducers,
    decide_join_strategy,
    pack_partitions,
)
from repro.obs.planquality import (
    SOURCE_CATALOG,
    SOURCE_GUESS,
    SOURCE_NONE,
    SOURCE_PRUNING,
    OperatorStamp,
    estimate_filtered_rows,
    record_operator_rows,
)
from repro.pde.decisions import (
    DEFAULT_BROADCAST_THRESHOLD,
    DEFAULT_TARGET_PARTITION_BYTES,
)
from repro.sql import logical
from repro.sql import physical
from repro.sql.catalog import TableEntry
from repro.sql.expressions import (
    BoundBetween,
    BoundColumn,
    BoundComparison,
    BoundExpr,
    BoundIn,
    BoundLiteral,
)
from repro.sql.optimizer import split_conjuncts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import EngineContext
    from repro.storage import DistributedFileStore


@dataclass
class PlannerConfig:
    """Knobs controlling run-time optimization (each is an ablation axis)."""

    enable_pde: bool = True
    enable_map_pruning: bool = True
    enable_copartition_join: bool = True
    #: Also use static size estimates for join selection; turning this off
    #: while keeping PDE reproduces the "adaptive only" bar of Figure 8.
    enable_static_join_estimates: bool = True
    broadcast_threshold_bytes: int = DEFAULT_BROADCAST_THRESHOLD
    target_partition_bytes: int = DEFAULT_TARGET_PARTITION_BYTES
    #: Fixed reducer count (overrides PDE parallelism choice when set).
    num_reducers: Optional[int] = None
    #: Fine-grained shuffle buckets = this factor x default parallelism.
    pde_fine_grained_factor: int = 4
    #: Bin-pack fine partitions into balanced coalesced partitions; off =
    #: "just run many reduce tasks" (the Section 3.1.2 comparison).
    pde_skew_binpack: bool = True
    #: Partitioner override for DISTRIBUTE BY (co-partitioning with an
    #: existing table requires using its exact partitioner).
    repartition_override: Optional[Partitioner] = None
    #: Compile filter/projection expressions to Python bytecode instead of
    #: interpreting the expression tree per row (Section 5's "bytecode
    #: compilation of expression evaluators", implemented).
    enable_codegen: bool = True
    #: Push simple predicates into the columnar scan and evaluate them
    #: column-at-a-time over the arrays (the cache-behavior benefit of the
    #: columnar layout, Section 3.2); rows are only materialized for
    #: survivors.
    enable_vectorized_scan: bool = True
    #: Run scan->filter->project->partial-aggregate chains over cached
    #: tables batch-at-a-time (ColumnBatch kernels, late materialization)
    #: instead of the row-at-a-time operators.  Results are identical;
    #: this knob exists as an ablation axis and for differential testing.
    vectorize: bool = True


@dataclass
class ExecutionReport:
    """What the planner decided at run time, for tests and EXPLAIN."""

    notes: list[str] = field(default_factory=list)
    scanned_partitions: int = 0
    pruned_partitions: int = 0
    join_decisions: list[JoinDecision] = field(default_factory=list)
    #: (operator label, execution mode) per lowered operator: "vectorized"
    #: for batch-pipeline kernels (with an interpreted-subtree count when
    #: some expressions fell back to the elementwise evaluator), "row" for
    #: the tuple-at-a-time operators.  EXPLAIN ANALYZE renders these.
    operator_modes: list[tuple[str, str]] = field(default_factory=list)
    #: One :class:`OperatorStamp` per ``mode()`` call, carrying the
    #: planner's cardinality estimate and its statistics source; runtime
    #: row counts join back on ``stamp.key`` (repro.obs.planquality).
    operator_stamps: list[OperatorStamp] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.notes.append(message)

    def mode(
        self,
        operator: str,
        mode: str,
        est_rows: Optional[int] = None,
        est_source: str = SOURCE_NONE,
        detail: str = "",
    ) -> OperatorStamp:
        self.operator_modes.append((operator, mode))
        stamp = OperatorStamp(
            operator=operator,
            mode=mode,
            op_id=len(self.operator_stamps),
            est_rows=est_rows,
            est_source=est_source,
            detail=detail,
        )
        self.operator_stamps.append(stamp)
        return stamp

    def describe(self) -> str:
        lines = list(self.notes)
        if self.scanned_partitions or self.pruned_partitions:
            lines.append(
                f"map pruning: scanned {self.scanned_partitions}, "
                f"pruned {self.pruned_partitions}"
            )
        return "\n".join(lines)


@dataclass
class PlannedQuery:
    rdd: RDD
    schema: Schema
    report: ExecutionReport
    output_partitioner: Optional[Partitioner] = None
    distribute_column: Optional[str] = None


class PhysicalPlanner:
    """Plans one optimized logical plan into an RDD dataflow."""

    def __init__(
        self,
        ctx: "EngineContext",
        store: "DistributedFileStore",
        config: Optional[PlannerConfig] = None,
    ):
        self.ctx = ctx
        self.store = store
        self.config = config or PlannerConfig()
        self.report = ExecutionReport()

    def _record_join_decision(
        self, decision: JoinDecision, mechanism: str
    ) -> None:
        """Log one run-time join selection to the report and the tracer."""
        self.report.join_decisions.append(decision)
        tracer = self.ctx.tracer
        tracer.metrics.inc("pde.join_decisions")
        tracer.instant(
            "pde.decision",
            "pde",
            decision="join_strategy",
            mechanism=mechanism,
            strategy=decision.strategy,
            reason=decision.reason,
            left_bytes=decision.left_bytes,
            right_bytes=decision.right_bytes,
        )

    def plan(self, node: logical.LogicalPlan) -> PlannedQuery:
        rdd = self._plan(node)
        planned = PlannedQuery(
            rdd=rdd, schema=node.schema, report=self.report
        )
        if isinstance(node, logical.Repartition):
            planned.output_partitioner = self._repartition_partitioner()
            if len(node.expressions) == 1 and isinstance(
                node.expressions[0], BoundColumn
            ):
                planned.distribute_column = node.schema.names[
                    node.expressions[0].index
                ]
        return planned

    # ------------------------------------------------------------------
    # Recursive lowering
    # ------------------------------------------------------------------
    def _plan(self, node: logical.LogicalPlan, no_prune: bool = False) -> RDD:
        if isinstance(node, logical.Values):
            return physical.values_rdd(self.ctx, node.rows)
        if self.config.vectorize and isinstance(
            node, (logical.Scan, logical.Filter, logical.Project)
        ):
            batch = self._try_batch_pipeline(node, no_prune)
            if batch is not None:
                return batch
        if isinstance(node, logical.Scan):
            return self._plan_scan(node, condition=None, no_prune=no_prune)
        if isinstance(node, logical.Filter):
            if isinstance(node.child, logical.Scan):
                return self._plan_scan(
                    node.child, condition=node.condition, no_prune=no_prune
                )
            child = self._plan(node.child)
            est, source = self._estimate_rows(node)
            op = self.report.mode(
                "filter", "row", est, source, detail=node.condition.name
            )
            return physical.filter_rows(
                child, node.condition, self.config.enable_codegen, op=op
            )
        if isinstance(node, logical.Project):
            child = self._plan(node.child, no_prune=no_prune)
            est, source = self._estimate_rows(node)
            op = self.report.mode("project", "row", est, source)
            return physical.project_rows(
                child, node.expressions, self.config.enable_codegen, op=op
            )
        if isinstance(node, logical.Aggregate):
            return self._plan_aggregate(node)
        if isinstance(node, logical.Join):
            return self._plan_join(node)
        if isinstance(node, logical.Sort):
            child = self._plan(node.child)
            est, source = self._estimate_rows(node)
            op = self.report.mode("sort", "row", est, source)
            return physical.sort_rows(child, node.keys, op=op)
        if isinstance(node, logical.Limit):
            child = self._plan(node.child)
            est, source = self._estimate_rows(node)
            op = self.report.mode("limit", "row", est, source)
            return physical.limit_rows(child, node.count, op=op)
        if isinstance(node, logical.Distinct):
            child = self._plan(node.child)
            est, source = self._estimate_rows(node)
            op = self.report.mode("distinct", "row", est, source)
            return physical.distinct_rows(child, op=op)
        if isinstance(node, logical.UnionAll):
            children = [self._plan(child) for child in node.inputs]
            est, source = self._estimate_rows(node)
            op = self.report.mode("union_all", "row", est, source)
            return physical.union_rdds(self.ctx, children, op=op)
        if isinstance(node, logical.Repartition):
            child = self._plan(node.child)
            est, source = self._estimate_rows(node)
            op = self.report.mode("distribute_by", "row", est, source)
            return physical.repartition_rows(
                child, node.expressions, self._repartition_partitioner(),
                op=op,
            )
        if isinstance(node, logical.SemiJoinFilter):
            return self._plan_semi_join_filter(node)
        raise UnsupportedFeatureError(
            f"no physical strategy for {type(node).__name__}"
        )

    def _plan_semi_join_filter(self, node: logical.SemiJoinFilter) -> RDD:
        """Broadcast semi-join: collect the subquery's (small) result into
        a set, broadcast it, probe per outer row."""
        child = self._plan(node.child)
        values = [row[0] for row in self._plan(node.subquery).collect()]
        self.report.note(
            f"IN-subquery materialized {len(values)} values for a "
            f"broadcast semi-join"
        )
        est, source = self._estimate_rows(node)
        op = self.report.mode(
            "semi_join", "row", est, source, detail=node.key.name
        )
        return physical.semi_join_filter(
            self.ctx, child, node.key, values, node.negated, op=op
        )

    def _repartition_partitioner(self) -> Partitioner:
        if self.config.repartition_override is not None:
            return self.config.repartition_override
        return HashPartitioner(self.ctx.default_parallelism)

    # ------------------------------------------------------------------
    # Scans and map pruning
    # ------------------------------------------------------------------
    def _plan_scan(
        self,
        scan: logical.Scan,
        condition: Optional[BoundExpr],
        no_prune: bool = False,
    ) -> RDD:
        entry = scan.table
        if entry.is_cached and entry.cached_rdd is None:
            # Cached table created but never loaded: empty.
            rdd = physical.values_rdd(self.ctx, [])
            self.report.mode(f"scan({entry.name})", "row", 0, SOURCE_CATALOG)
            if condition is not None:
                op = self.report.mode(
                    "filter", "row", 0, SOURCE_CATALOG,
                    detail=condition.name,
                )
                rdd = physical.filter_rows(
                    rdd, condition, self.config.enable_codegen, op=op
                )
            return rdd
        original = condition
        if entry.is_cached:
            kept, vector_filters, condition = self._scan_prep(
                scan, condition, no_prune
            )
            base_est, base_source = self._scan_estimate(entry, kept)
            scan_op = self.report.mode(
                f"scan({entry.name})", "row", base_est, base_source
            )
            filter_op = self._stamp_filter(original, base_est, "row")
            rdd = physical.scan_memstore(
                entry, scan.projected_columns, kept,
                vector_filters=vector_filters,
                scan_op=scan_op,
                # Without a residual the pushed-down vector filters are
                # the whole predicate: the scan credits the filter's
                # actual rows itself.
                filter_op=None if condition is not None else filter_op,
            )
        else:
            from repro.storage import HdfsRDD

            base_est, base_source = (
                (entry.row_count, SOURCE_CATALOG)
                if entry.row_count is not None
                else (None, SOURCE_NONE)
            )
            self.report.mode(
                f"scan({entry.name})", "row", base_est, base_source
            )
            filter_op = self._stamp_filter(original, base_est, "row")
            rdd = HdfsRDD(self.ctx, self.store, entry.path, entry.schema)
            if scan.projected_columns is not None:
                indices = [
                    entry.schema.index_of(name)
                    for name in scan.projected_columns
                ]
                rdd = rdd.map(
                    lambda row, idx=tuple(indices): tuple(row[i] for i in idx)
                ).set_name("project_scan")
        if condition is not None:
            rdd = physical.filter_rows(
                rdd, condition, self.config.enable_codegen, op=filter_op
            )
        return rdd

    def _stamp_filter(
        self,
        condition: Optional[BoundExpr],
        base_est: Optional[int],
        mode: str,
    ) -> Optional[OperatorStamp]:
        """One filter stamp covering a scan's *entire* predicate (vector
        and residual conjuncts alike), so both execution modes report the
        same operator with the same estimate."""
        if condition is None:
            return None
        if base_est is not None:
            est: Optional[int] = estimate_filtered_rows(base_est, condition)
            source = SOURCE_GUESS
        else:
            est, source = None, SOURCE_NONE
        return self.report.mode(
            "filter", mode, est, source, detail=condition.name
        )

    def _scan_estimate(
        self, entry: TableEntry, kept: Optional[list[int]]
    ) -> tuple[Optional[int], str]:
        """Base row estimate for a cached scan: per-partition statistics
        summed over the kept partitions when map pruning narrowed the
        scan, the catalog row count otherwise."""
        if kept is not None and entry.partition_stats:
            total = 0
            known = True
            for index in kept:
                stats = entry.partition_stats[index]
                rows = None
                for name in stats.column_names:
                    column = stats.column(name)
                    if column is not None:
                        rows = column.row_count
                        break
                if rows is None:
                    known = False
                    break
                total += rows
            if known:
                return total, SOURCE_PRUNING
        if entry.row_count is not None:
            return entry.row_count, SOURCE_CATALOG
        return None, SOURCE_NONE

    def _scan_prep(
        self,
        scan: logical.Scan,
        condition: Optional[BoundExpr],
        no_prune: bool,
    ) -> tuple[Optional[list[int]], tuple, Optional[BoundExpr]]:
        """Map pruning + vector-filter extraction for a cached scan.

        Shared by the row scan and the batch pipeline so both modes prune
        and push down identically.  Returns (kept partitions or None,
        vector filter specs, residual condition or None).
        """
        entry = scan.table
        kept = None
        total = (
            entry.cached_rdd.num_partitions
            if entry.cached_rdd is not None
            else 0
        )
        if (
            condition is not None
            and self.config.enable_map_pruning
            and not no_prune
            and entry.partition_stats
        ):
            kept = self._prune_partitions(scan, condition)
            self.report.scanned_partitions += len(kept)
            self.report.pruned_partitions += total - len(kept)
            if len(kept) < total:
                self.report.note(
                    f"map pruning on {entry.name}: scanning "
                    f"{len(kept)}/{total} partitions"
                )
            if kept == list(range(total)):
                kept = None
        vector_filters: tuple = ()
        if condition is not None and self.config.enable_vectorized_scan:
            vector_filters, condition = _extract_vector_filters(
                condition, scan.schema.names
            )
            if vector_filters:
                self.report.note(
                    f"vectorized scan filters on {entry.name}: "
                    f"{len(vector_filters)} conjuncts pushed into the "
                    f"columnar scan"
                )
        return kept, vector_filters, condition

    # ------------------------------------------------------------------
    # Batch pipeline (vectorize=on)
    # ------------------------------------------------------------------
    def _match_batch_chain(self, node: logical.LogicalPlan):
        """Match a Project/Filter chain over a cached-table scan.

        Returns (scan, scan-level condition, bottom-up chain ops) when the
        whole subtree can run as one fused batch pipeline; None otherwise
        (uncached table, unloaded table, or a non-chain operator).
        """
        ops: list[tuple[str, object]] = []
        current = node
        while True:
            if isinstance(current, logical.Scan):
                scan, scan_condition = current, None
                break
            if isinstance(current, logical.Filter) and isinstance(
                current.child, logical.Scan
            ):
                scan, scan_condition = current.child, current.condition
                break
            if isinstance(current, logical.Project):
                ops.append(("project", current.expressions))
                current = current.child
                continue
            if isinstance(current, logical.Filter):
                ops.append(("filter", current.condition))
                current = current.child
                continue
            return None
        entry = scan.table
        if not entry.is_cached or entry.cached_rdd is None:
            return None
        ops.reverse()
        return scan, scan_condition, ops

    def _try_batch_pipeline(
        self, node: logical.LogicalPlan, no_prune: bool
    ) -> Optional[RDD]:
        match = self._match_batch_chain(node)
        if match is None:
            return None
        scan, scan_condition, ops = match
        return self._build_batch_pipeline(
            scan, scan_condition, ops, no_prune, aggregate=None
        )

    @staticmethod
    def _mode_detail(interpreted: int) -> str:
        if interpreted:
            return f"vectorized ({interpreted} interpreted)"
        return "vectorized"

    def _build_batch_pipeline(
        self,
        scan: logical.Scan,
        scan_condition: Optional[BoundExpr],
        ops: list,
        no_prune: bool,
        aggregate: Optional[tuple] = None,
        aggregate_est: Optional[tuple] = None,
    ) -> RDD:
        """Lower a matched chain to one :class:`BatchPipelineRDD`."""
        from repro.sql.codegen import (
            compile_vector_expression,
            compile_vector_predicate,
            compile_vector_projection,
        )

        entry = scan.table
        kept, vector_filters, residual = self._scan_prep(
            scan, scan_condition, no_prune
        )
        width = len(scan.schema)
        base_est, base_source = self._scan_estimate(entry, kept)
        scan_op = self.report.mode(
            f"scan({entry.name})", "vectorized", base_est, base_source
        )
        residual_kernel = None
        residual_interpreted = 0
        if residual is not None:
            residual_kernel, residual_interpreted = compile_vector_predicate(
                residual, width
            )
        filter_op = self._stamp_filter(
            scan_condition,
            base_est,
            self._mode_detail(residual_interpreted)
            if residual is not None
            else "vectorized",
        )
        # Running estimate through the fused chain, with its source.
        running = filter_op.est_rows if filter_op is not None else base_est
        running_source = (
            filter_op.est_source if filter_op is not None else base_source
        )
        chain: list[tuple[str, object]] = []
        chain_ops: list[OperatorStamp] = []
        for kind, payload in ops:
            if kind == "filter":
                kernel, interpreted = compile_vector_predicate(
                    payload, width
                )
                chain.append(("filter", kernel))
                if running is not None:
                    running = estimate_filtered_rows(running, payload)
                    running_source = SOURCE_GUESS
                chain_ops.append(
                    self.report.mode(
                        "filter", self._mode_detail(interpreted),
                        running,
                        running_source if running is not None
                        else SOURCE_NONE,
                        detail=payload.name,
                    )
                )
            else:
                plans, interpreted = compile_vector_projection(
                    payload, width
                )
                chain.append(("project", plans))
                width = len(payload)
                chain_ops.append(
                    self.report.mode(
                        "project", self._mode_detail(interpreted),
                        running, running_source,
                    )
                )
        aggregate_factory = None
        aggregate_op = None
        name = f"batch_scan({entry.name})"
        if aggregate is not None:
            group_exprs, specs = aggregate
            group_kernels = []
            group_ordinals = []
            interpreted = 0
            for expr in group_exprs:
                kernel, count = compile_vector_expression(expr, width)
                interpreted += count
                group_kernels.append(kernel)
                group_ordinals.append(
                    expr.index if isinstance(expr, BoundColumn) else None
                )
            arg_kernels = []
            for spec in specs:
                if spec.argument is None:
                    arg_kernels.append(None)
                else:
                    kernel, count = compile_vector_expression(
                        spec.argument, width
                    )
                    interpreted += count
                    arg_kernels.append(kernel)

            def aggregate_factory() -> physical.BatchAggregator:
                return physical.BatchAggregator(
                    group_kernels, group_ordinals, specs, arg_kernels
                )

            name = "batch_partial_aggregate"
            map_parts = (
                len(kept)
                if kept is not None
                else entry.cached_rdd.num_partitions
            )
            groups_est, groups_source = aggregate_est or (None, SOURCE_NONE)
            partial_est = None
            partial_source = SOURCE_NONE
            if groups_est is not None:
                # Each map task emits at most one partial per group.
                partial_est = groups_est * max(map_parts, 1)
                partial_source = groups_source
                if running is not None:
                    partial_est = min(partial_est, max(running, 1))
            aggregate_op = self.report.mode(
                "aggregate.partial", self._mode_detail(interpreted),
                partial_est, partial_source,
            )
        op_keys: dict = {"scan": scan_op.key}
        if filter_op is not None:
            op_keys["filter"] = filter_op.key
        op_keys["chain"] = tuple(op.key for op in chain_ops)
        if aggregate_op is not None:
            op_keys["aggregate"] = aggregate_op.key
        self.ctx.tracer.metrics.inc("batch.pipelines")
        return physical.scan_batch_pipeline(
            entry,
            scan.projected_columns,
            kept,
            column_indices=[
                entry.schema.index_of(column) for column in scan.schema.names
            ],
            vector_filters=vector_filters,
            residual_predicate=residual_kernel,
            chain=chain,
            aggregate_factory=aggregate_factory,
            name=name,
            op_keys=op_keys,
        )

    def _prune_partitions(
        self, scan: logical.Scan, condition: BoundExpr
    ) -> list[int]:
        """Partitions whose statistics may satisfy the condition."""
        entry = scan.table
        names = scan.schema.names  # ordinal -> column name
        conjuncts = split_conjuncts(condition)
        kept: list[int] = []
        for index, stats in enumerate(entry.partition_stats):
            if all(
                _conjunct_may_match(conjunct, stats, names)
                for conjunct in conjuncts
            ):
                kept.append(index)
        return kept

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _plan_aggregate(self, node: logical.Aggregate) -> RDD:
        partials: Optional[RDD] = None
        child: Optional[RDD] = None
        partial_op: Optional[OperatorStamp] = None
        groups_est, groups_source = self._estimate_groups(node)
        child_est, __ = self._estimate_rows(node.child)
        if self.config.vectorize:
            match = self._match_batch_chain(node.child)
            if match is not None:
                # Fuse the partial aggregation into the batch pipeline:
                # the scan..project chain and the task-local hash
                # aggregation run as one vectorized stage emitting
                # (group key, accumulators) pairs.
                scan, scan_condition, ops = match
                partials = self._build_batch_pipeline(
                    scan,
                    scan_condition,
                    ops,
                    no_prune=False,
                    aggregate=(node.group_expressions, node.aggregates),
                    aggregate_est=(groups_est, groups_source),
                )
        if partials is None:
            child = self._plan(node.child)
            partial_est = None
            partial_source = SOURCE_NONE
            if groups_est is not None:
                partial_est = groups_est * max(child.num_partitions, 1)
                partial_source = groups_source
                if child_est is not None:
                    partial_est = min(partial_est, max(child_est, 1))
            partial_op = self.report.mode(
                "aggregate.partial", "row", partial_est, partial_source
            )
        final_op = self.report.mode(
            "aggregate.final", "row", groups_est, groups_source
        )
        if not node.group_expressions:
            return physical.global_aggregate_rows(
                child, node.aggregates, partials=partials,
                partial_op=partial_op, final_op=final_op,
            )

        if self.config.num_reducers is not None:
            return physical.aggregate_rows(
                child,
                node.group_expressions,
                node.aggregates,
                num_partitions=self.config.num_reducers,
                partials=partials,
                partial_op=partial_op,
                final_op=final_op,
            )
        if not self.config.enable_pde:
            return physical.aggregate_rows(
                child,
                node.group_expressions,
                node.aggregates,
                num_partitions=self.ctx.default_parallelism,
                partials=partials,
                partial_op=partial_op,
                final_op=final_op,
            )

        # PDE path (Section 3.1.2): shuffle into fine-grained buckets, read
        # observed bucket sizes, then pick the reduce parallelism and
        # optionally bin-pack buckets into balanced coalesced partitions.
        fine = self.ctx.default_parallelism * self.config.pde_fine_grained_factor
        if partials is None:
            partials = physical.partial_aggregate_rdd(
                child, node.group_expressions, node.aggregates,
                op=partial_op,
            )
        merge = physical._merge_accumulators(node.aggregates)
        merged = partials.combine_by_key(
            create_combiner=lambda accs: accs,
            merge_value=merge,
            merge_combiners=merge,
            num_partitions=fine,
        ).set_name("merge_aggregate")

        if isinstance(merged, ShuffledRDD):
            stats = self.ctx.materialize_dependency(merged.shuffle_dep)
            sizes = stats.reduce_input_sizes()
            total = sum(sizes)
            reducers = choose_num_reducers(
                total,
                self.config.target_partition_bytes,
                max_reducers=fine,
            )
            tracer = self.ctx.tracer
            tracer.metrics.inc("pde.reducer_decisions")
            tracer.instant(
                "pde.decision",
                "pde",
                decision="num_reducers",
                fine_buckets=fine,
                reducers=reducers,
                observed_bytes=total,
            )
            if reducers < fine:
                if self.config.pde_skew_binpack:
                    groups = pack_partitions(sizes, reducers)
                    self.report.note(
                        f"PDE: coalesced {fine} fine buckets into "
                        f"{len(groups)} bin-packed reduce partitions "
                        f"({total} observed bytes)"
                    )
                else:
                    groups = [[] for _ in range(reducers)]
                    for bucket in range(fine):
                        groups[bucket % reducers].append(bucket)
                    self.report.note(
                        f"PDE: coalesced {fine} fine buckets into "
                        f"{reducers} round-robin reduce partitions"
                    )
                merged = merged.coalesce_grouped(groups).set_name(
                    "coalesced_aggregate"
                )
            else:
                self.report.note(
                    f"PDE: kept {fine} fine-grained reduce partitions "
                    f"({total} observed bytes)"
                )

        def finish(pair: tuple) -> tuple:
            key, accs = pair
            finished = tuple(
                spec.function.finish(acc)
                for spec, acc in zip(node.aggregates, accs)
            )
            return tuple(key) + finished

        final_key = final_op.key

        def finish_partition(part: list) -> list:
            out = [finish(pair) for pair in part]
            record_operator_rows(final_key, len(out))
            return out

        return merged.map_partitions(finish_partition).set_name(
            "final_aggregate"
        )

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _plan_join(self, node: logical.Join) -> RDD:
        left_width = len(node.left.schema)
        right_width = len(node.right.schema)
        join_est, join_source = self._estimate_rows(node)
        join_op = self.report.mode(
            "join", "row", join_est, join_source, detail=node.join_type
        )

        if not node.left_keys:
            left = self._plan(node.left)
            right_rows = self._collect(self._plan(node.right))
            self.report.note("cross join: broadcasting right side")
            return physical.cross_join(
                self.ctx, left, right_rows, node.residual, op=join_op
            )

        # 1. Co-partitioned join (Section 3.4).
        if self.config.enable_copartition_join and node.join_type == "inner":
            planned = self._try_copartitioned(
                node, left_width, right_width, join_op
            )
            if planned is not None:
                return planned

        # 2. Static size estimates.
        left_est = self._estimate_bytes(node.left)
        right_est = self._estimate_bytes(node.right)
        left_broadcastable = node.join_type in ("inner", "right")
        right_broadcastable = node.join_type in ("inner", "left")

        if self.config.enable_static_join_estimates and (
            left_est is not None or right_est is not None
        ):
            decision = decide_join_strategy(
                left_est,
                right_est,
                self.config.broadcast_threshold_bytes,
                left_broadcastable,
                right_broadcastable,
            )
            if decision.strategy != "shuffle":
                self._record_join_decision(decision, "static")
                self.report.note(f"static join selection: {decision.reason}")
                return self._broadcast(node, decision.strategy,
                                       left_width, right_width, join_op)
            if left_est is not None and right_est is not None:
                # Both sides known and big: commit to a shuffle join.
                self._record_join_decision(decision, "static")
                self.report.note(f"static join selection: {decision.reason}")
                return self._shuffle_join(
                    node, left_width, right_width, join_op=join_op
                )

        # 3. Sizes unknown (fresh data / UDF filters): PDE (Section 3.1.1).
        if self.config.enable_pde and (
            left_broadcastable or right_broadcastable
        ):
            return self._pde_join(
                node, left_width, right_width,
                left_est, right_est,
                left_broadcastable, right_broadcastable,
                join_op,
            )

        decision = JoinDecision("shuffle", "fallback: no PDE, no estimates")
        self._record_join_decision(decision, "fallback")
        return self._shuffle_join(
            node, left_width, right_width, join_op=join_op
        )

    def _try_copartitioned(
        self,
        node: logical.Join,
        left_width: int,
        right_width: int,
        join_op: OperatorStamp,
    ) -> Optional[RDD]:
        if len(node.left_keys) != 1 or len(node.right_keys) != 1:
            return None
        left_info = _copartition_info(node.left, node.left_keys[0])
        right_info = _copartition_info(node.right, node.right_keys[0])
        if left_info is None or right_info is None:
            return None
        left_part, right_part = left_info.partitioner, right_info.partitioner
        if left_part != right_part:
            return None
        left = self._plan(node.left, no_prune=True)
        right = self._plan(node.right, no_prune=True)
        self.report.note(
            f"co-partitioned join on {left_info.table_name}."
            f"{left_info.column} = {right_info.table_name}."
            f"{right_info.column}: no shuffle"
        )
        self._record_join_decision(
            JoinDecision("copartitioned", "tables co-partitioned on join key"),
            "copartitioned",
        )
        return physical.copartitioned_join(
            self.ctx,
            left,
            right,
            node.left_keys,
            node.right_keys,
            node.join_type,
            left_width,
            right_width,
            node.residual,
            left_part,
            op=join_op,
        )

    def _broadcast(
        self,
        node: logical.Join,
        strategy: str,
        left_width: int,
        right_width: int,
        join_op: Optional[OperatorStamp] = None,
    ) -> RDD:
        if strategy == "broadcast_right":
            stream = self._plan(node.left)
            build_rows = self._collect(self._plan(node.right))
            return physical.broadcast_join(
                self.ctx, stream, build_rows,
                node.left_keys, node.right_keys,
                node.join_type, True, left_width, right_width, node.residual,
                op=join_op,
            )
        stream = self._plan(node.right)
        build_rows = self._collect(self._plan(node.left))
        return physical.broadcast_join(
            self.ctx, stream, build_rows,
            node.right_keys, node.left_keys,
            node.join_type, False, right_width, left_width, node.residual,
            op=join_op,
        )

    def _shuffle_join(
        self,
        node: logical.Join,
        left_width: int,
        right_width: int,
        pre_shuffled_left: Optional[RDD] = None,
        pre_shuffled_right: Optional[RDD] = None,
        partitioner: Optional[Partitioner] = None,
        join_op: Optional[OperatorStamp] = None,
    ) -> RDD:
        partitioner = partitioner or physical.default_partitioner(self.ctx)
        left = None if pre_shuffled_left is not None else self._plan(node.left)
        right = (
            None if pre_shuffled_right is not None else self._plan(node.right)
        )
        return physical.shuffle_join(
            self.ctx,
            left,
            right,
            node.left_keys,
            node.right_keys,
            node.join_type,
            left_width,
            right_width,
            node.residual,
            partitioner,
            pre_shuffled_left=pre_shuffled_left,
            pre_shuffled_right=pre_shuffled_right,
            op=join_op,
        )

    def _pde_join(
        self,
        node: logical.Join,
        left_width: int,
        right_width: int,
        left_est: Optional[int],
        right_est: Optional[int],
        left_broadcastable: bool,
        right_broadcastable: bool,
        join_op: Optional[OperatorStamp] = None,
    ) -> RDD:
        """Pre-shuffle the likely-small side, observe, then decide.

        "If the optimizer has a prior belief that a particular join input
        will be small, it will schedule that task before other join inputs
        and decide to perform a map-join if it observes that the task's
        output is small" — avoiding the pre-shuffle of the large table.
        """
        left_prior = self._prior_bytes(node.left)
        right_prior = self._prior_bytes(node.right)
        probe_left = left_broadcastable and (
            not right_broadcastable
            or (left_prior or 0) <= (right_prior or 0)
        )

        partitioner = physical.default_partitioner(self.ctx)
        if probe_left:
            side_plan, keys = node.left, node.left_keys
        else:
            side_plan, keys = node.right, node.right_keys
        side_rdd = self._plan(side_plan)
        pre_shuffled, dep = physical.pre_shuffle_side(
            self.ctx, side_rdd, keys, partitioner
        )
        observed = self.ctx.shuffle_manager.stats(dep.shuffle_id)
        observed_bytes = observed.total_output_bytes()

        if probe_left:
            decision = decide_join_strategy(
                observed_bytes, right_est,
                self.config.broadcast_threshold_bytes,
                left_broadcastable, right_broadcastable,
            )
        else:
            decision = decide_join_strategy(
                left_est, observed_bytes,
                self.config.broadcast_threshold_bytes,
                left_broadcastable, right_broadcastable,
            )
        self._record_join_decision(decision, "pde")
        self.report.note(
            f"PDE join selection: pre-shuffled "
            f"{'left' if probe_left else 'right'} side, observed "
            f"{observed_bytes} bytes -> {decision.strategy}"
        )

        wanted = "broadcast_left" if probe_left else "broadcast_right"
        if decision.strategy == wanted:
            # Collect the pre-shuffled (key, row) pairs — the map outputs
            # are already materialized, so this is a cheap narrow read.
            build_rows = [row for __, row in self._collect(pre_shuffled)]
            if probe_left:
                stream = self._plan(node.right)
                return physical.broadcast_join(
                    self.ctx, stream, build_rows,
                    node.right_keys, node.left_keys,
                    node.join_type, False, right_width, left_width,
                    node.residual,
                    op=join_op,
                )
            stream = self._plan(node.left)
            return physical.broadcast_join(
                self.ctx, stream, build_rows,
                node.left_keys, node.right_keys,
                node.join_type, True, left_width, right_width,
                node.residual,
                op=join_op,
            )

        # Shuffle join, reusing the already-shuffled side.
        if probe_left:
            return self._shuffle_join(
                node, left_width, right_width,
                pre_shuffled_left=pre_shuffled, partitioner=partitioner,
                join_op=join_op,
            )
        return self._shuffle_join(
            node, left_width, right_width,
            pre_shuffled_right=pre_shuffled, partitioner=partitioner,
            join_op=join_op,
        )

    # ------------------------------------------------------------------
    # Cardinality estimation (plan-quality stamps)
    # ------------------------------------------------------------------
    def _estimate_rows(
        self, node: logical.LogicalPlan
    ) -> tuple[Optional[int], str]:
        """Estimated output rows for a logical subtree, with the
        statistics source behind it.  (None, "none") when unknown.

        These estimates feed the plan-quality stamps, not execution
        decisions: they are deliberately simple (catalog row counts plus
        System R selectivity constants), and the est-vs-actual audit
        exists precisely to show where they miss.
        """
        if isinstance(node, logical.Values):
            return len(node.rows), SOURCE_CATALOG
        if isinstance(node, logical.Scan):
            if node.table.row_count is not None:
                return node.table.row_count, SOURCE_CATALOG
            return None, SOURCE_NONE
        if isinstance(node, logical.Filter):
            base, __ = self._estimate_rows(node.child)
            if base is None:
                return None, SOURCE_NONE
            return estimate_filtered_rows(base, node.condition), SOURCE_GUESS
        if isinstance(node, (logical.Project, logical.Sort,
                             logical.Repartition)):
            return self._estimate_rows(node.child)
        if isinstance(node, logical.Limit):
            base, source = self._estimate_rows(node.child)
            if base is None:
                return node.count, SOURCE_GUESS
            return min(node.count, base), source
        if isinstance(node, logical.Distinct):
            base, __ = self._estimate_rows(node.child)
            if base is None:
                return None, SOURCE_NONE
            return max(1, base // 10), SOURCE_GUESS
        if isinstance(node, logical.Aggregate):
            return self._estimate_groups(node)
        if isinstance(node, logical.Join):
            left, __ = self._estimate_rows(node.left)
            right, __ = self._estimate_rows(node.right)
            if left is None or right is None:
                return None, SOURCE_NONE
            if not node.left_keys:
                return left * right, SOURCE_GUESS
            # Keyed joins: assume roughly foreign-key shape (each row of
            # the larger side matches ~once).
            return max(left, right, 1), SOURCE_GUESS
        if isinstance(node, logical.UnionAll):
            total = 0
            for child in node.inputs:
                rows, __ = self._estimate_rows(child)
                if rows is None:
                    return None, SOURCE_NONE
                total += rows
            return total, SOURCE_GUESS
        if isinstance(node, logical.SemiJoinFilter):
            base, __ = self._estimate_rows(node.child)
            if base is None:
                return None, SOURCE_NONE
            return max(1, base // 2), SOURCE_GUESS
        return None, SOURCE_NONE

    def _estimate_groups(
        self, node: logical.Aggregate
    ) -> tuple[Optional[int], str]:
        """Estimated group count for an aggregation."""
        if not node.group_expressions:
            return 1, SOURCE_CATALOG
        ndv = self._group_ndv(node)
        if ndv is not None:
            return ndv, SOURCE_CATALOG
        child_rows, __ = self._estimate_rows(node.child)
        if child_rows is None:
            return None, SOURCE_NONE
        return max(1, child_rows // 10), SOURCE_GUESS

    def _group_ndv(self, node: logical.Aggregate) -> Optional[int]:
        """Exact distinct-value count for a single-column group key over
        a cached scan, from the partition statistics' small distinct
        sets; None when the key is computed, multi-column, or any
        partition overflowed :data:`~repro.columnar.stats.DISTINCT_LIMIT`.
        """
        if len(node.group_expressions) != 1:
            return None
        key = node.group_expressions[0]
        if not isinstance(key, BoundColumn):
            return None
        index = key.index
        current = node.child
        while True:
            if isinstance(current, logical.Filter):
                current = current.child
                continue
            if isinstance(current, logical.Project):
                expr = current.expressions[index]
                if not isinstance(expr, BoundColumn):
                    return None
                index = expr.index
                current = current.child
                continue
            if isinstance(current, logical.Scan):
                entry = current.table
                if not entry.partition_stats:
                    return None
                column = current.schema.names[index]
                values: set = set()
                for stats in entry.partition_stats:
                    column_stats = stats.column(column)
                    if (
                        column_stats is None
                        or column_stats.distinct_values is None
                    ):
                        return None
                    values |= column_stats.distinct_values
                return len(values) or None
            return None

    # ------------------------------------------------------------------
    # Size estimation
    # ------------------------------------------------------------------
    def _estimate_bytes(self, node: logical.LogicalPlan) -> Optional[int]:
        """Static size estimate; None when unknown (e.g. UDF filters)."""
        if isinstance(node, logical.Scan):
            return node.table.size_bytes
        if isinstance(node, logical.Project):
            return self._estimate_bytes(node.child)
        if isinstance(node, logical.Values):
            return 64 * len(node.rows)
        return None

    def _prior_bytes(self, node: logical.LogicalPlan) -> Optional[int]:
        """Upper-bound prior: the size of the underlying base table, used
        only to order PDE probes (filters can only shrink a side)."""
        if isinstance(node, logical.Scan):
            return node.table.size_bytes
        if isinstance(node, (logical.Project, logical.Filter, logical.Limit)):
            return self._prior_bytes(node.child)
        return None

    def _collect(self, rdd: RDD) -> list:
        return rdd.collect()


# ---------------------------------------------------------------------------
# Vectorized scan-filter extraction
# ---------------------------------------------------------------------------


def _extract_vector_filters(
    condition: BoundExpr, names: list[str]
) -> tuple[tuple, Optional[BoundExpr]]:
    """Split a scan predicate into (vectorizable specs, residual expr).

    Vectorizable conjuncts — column-vs-literal comparisons, BETWEEN, IN,
    IS [NOT] NULL — are evaluated column-at-a-time inside the scan; the
    residual (UDFs, ORs, column-vs-column) stays as a row-level filter.
    """
    from repro.sql.expressions import BoundIsNull
    from repro.sql.optimizer import join_conjuncts
    from repro.sql.physical import VectorFilter

    specs: list[VectorFilter] = []
    residual: list[BoundExpr] = []
    for conjunct in split_conjuncts(condition):
        spec = None
        if isinstance(conjunct, BoundComparison):
            column, literal, op = _normalize_comparison(conjunct)
            if column is not None and op is not None and literal is not None:
                spec = VectorFilter(
                    column=names[column], kind="cmp", op=op,
                    values=(literal,),
                )
        elif isinstance(conjunct, BoundBetween) and not conjunct.negated:
            if (
                isinstance(conjunct.operand, BoundColumn)
                and isinstance(conjunct.low, BoundLiteral)
                and isinstance(conjunct.high, BoundLiteral)
            ):
                spec = VectorFilter(
                    column=names[conjunct.operand.index],
                    kind="between",
                    values=(conjunct.low.value, conjunct.high.value),
                )
        elif isinstance(conjunct, BoundIn) and not conjunct.negated:
            if isinstance(conjunct.operand, BoundColumn) and all(
                isinstance(option, BoundLiteral)
                for option in conjunct.options
            ):
                values = tuple(
                    option.value for option in conjunct.options
                )
                if all(value is not None for value in values):
                    spec = VectorFilter(
                        column=names[conjunct.operand.index],
                        kind="in",
                        values=values,
                    )
        elif isinstance(conjunct, BoundIsNull):
            if isinstance(conjunct.operand, BoundColumn):
                spec = VectorFilter(
                    column=names[conjunct.operand.index],
                    kind="notnull" if conjunct.negated else "isnull",
                )
        if spec is not None:
            specs.append(spec)
        else:
            residual.append(conjunct)
    return tuple(specs), join_conjuncts(residual)


# ---------------------------------------------------------------------------
# Map-pruning predicate analysis
# ---------------------------------------------------------------------------


def _conjunct_may_match(conjunct, stats, names: list[str]) -> bool:
    """Can any row of a partition with these statistics satisfy the
    conjunct?  Conservative: unrecognized shapes return True."""
    if isinstance(conjunct, BoundComparison):
        column, literal, op = _normalize_comparison(conjunct)
        if column is None:
            return True
        column_stats = stats.column(names[column])
        if column_stats is None:
            return True
        if op == "=":
            return column_stats.may_contain(literal)
        if op == "<>":
            # Prunable only when the partition is single-valued on this
            # column and that value is the excluded one (e.g. a per-
            # datacenter partition holding exactly one country).
            if column_stats.distinct_values == {literal}:
                return False
            return True
        if op == ">":
            return column_stats.may_overlap(low=literal, low_inclusive=False)
        if op == ">=":
            return column_stats.may_overlap(low=literal)
        if op == "<":
            return column_stats.may_overlap(high=literal, high_inclusive=False)
        if op == "<=":
            return column_stats.may_overlap(high=literal)
        return True
    if isinstance(conjunct, BoundBetween) and not conjunct.negated:
        if isinstance(conjunct.operand, BoundColumn) and isinstance(
            conjunct.low, BoundLiteral
        ) and isinstance(conjunct.high, BoundLiteral):
            column_stats = stats.column(names[conjunct.operand.index])
            if column_stats is None:
                return True
            return column_stats.may_overlap(
                low=conjunct.low.value, high=conjunct.high.value
            )
        return True
    if isinstance(conjunct, BoundIn) and not conjunct.negated:
        if isinstance(conjunct.operand, BoundColumn) and all(
            isinstance(option, BoundLiteral) for option in conjunct.options
        ):
            column_stats = stats.column(names[conjunct.operand.index])
            if column_stats is None:
                return True
            return any(
                column_stats.may_contain(option.value)
                for option in conjunct.options
            )
        return True
    return True


def _normalize_comparison(conjunct: BoundComparison):
    """Extract (column_ordinal, literal, op) with the column on the left."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    if isinstance(conjunct.left, BoundColumn) and isinstance(
        conjunct.right, BoundLiteral
    ):
        return conjunct.left.index, conjunct.right.value, conjunct.op
    if isinstance(conjunct.right, BoundColumn) and isinstance(
        conjunct.left, BoundLiteral
    ):
        if conjunct.op not in flipped:
            return None, None, None
        return conjunct.right.index, conjunct.left.value, flipped[conjunct.op]
    return None, None, None


# ---------------------------------------------------------------------------
# Co-partitioning detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _CopartitionInfo:
    table_name: str
    column: str
    partitioner: Partitioner


def _copartition_info(
    node: logical.LogicalPlan, key: BoundExpr
) -> Optional[_CopartitionInfo]:
    """Does this join side read a cached, DISTRIBUTE BY'd table with the
    join key being exactly the distribution column (passed through
    projections untouched)?"""
    if not isinstance(key, BoundColumn):
        return None
    index = key.index
    current = node
    while True:
        if isinstance(current, logical.Filter):
            current = current.child
            continue
        if isinstance(current, logical.Project):
            expr = current.expressions[index]
            if not isinstance(expr, BoundColumn):
                return None
            index = expr.index
            current = current.child
            continue
        if isinstance(current, logical.Scan):
            entry: TableEntry = current.table
            if not entry.is_cached or entry.partitioner is None:
                return None
            column = current.schema.names[index]
            if (
                entry.distribute_column is None
                or column.lower() != entry.distribute_column.lower()
            ):
                return None
            return _CopartitionInfo(
                table_name=entry.name,
                column=column,
                partitioner=entry.partitioner,
            )
        return None

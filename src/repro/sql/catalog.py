"""The metastore: table metadata, storage handles, co-partitioning links.

Plays the role of the "Metastore (System Catalog)" box in the paper's
architecture diagram (Figure 2).  A table is either *external* (rows
encoded in the distributed file store, scanned from "disk") or *cached*
(``shark.cache`` — an RDD of columnar partitions pinned in worker memory,
with per-partition statistics held here for map pruning).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.datatypes import Schema
from repro.errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.columnar.stats import PartitionStats
    from repro.engine.partitioner import Partitioner
    from repro.engine.rdd import RDD

EXTERNAL = "external"
CACHED = "cached"


@dataclass
class TableEntry:
    """Everything the system knows about one table."""

    name: str
    schema: Schema
    kind: str = EXTERNAL
    #: DFS path for external tables.
    path: Optional[str] = None
    #: Cached tables: RDD with one ColumnarPartition element per partition.
    cached_rdd: Optional["RDD"] = None
    #: Cached tables: per-partition column statistics, for map pruning.
    partition_stats: list["PartitionStats"] = field(default_factory=list)
    #: Set when the table was created with DISTRIBUTE BY (Section 3.4).
    partitioner: Optional["Partitioner"] = None
    distribute_column: Optional[str] = None
    #: TBLPROPERTIES as written.
    properties: dict[str, str] = field(default_factory=dict)
    #: Known row count (maintained on load/insert; None if unknown).
    row_count: Optional[int] = None
    #: Stored size in bytes (memstore footprint or DFS file size); the
    #: static optimizer's size estimate.
    size_bytes: Optional[int] = None
    #: Cached tables: memstore bytes per partition (PDE-independent sizing).
    partition_bytes: list[int] = field(default_factory=list)

    @property
    def is_cached(self) -> bool:
        return self.kind == CACHED

    def copartitioned_with(self) -> Optional[str]:
        """Name of the table this one was co-partitioned against, if any."""
        return self.properties.get("copartition")


class Catalog:
    """Named tables plus UDF registrations.

    Every mutation moves a *monotonic per-table version* — bumped by
    CREATE/DROP (and therefore CACHE/UNCACHE, which drop-and-recreate)
    and by every load/insert — plus a catalog-wide ``ddl_version`` that
    only schema-identity changes move.  The query cache keys on these:
    versions never reset (a drop + recreate continues the sequence, so
    a journal replay reproduces them deterministically), and listeners
    get a callback per bump for eager invalidation.
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        #: Lowercased table name -> monotonic version.  Survives drops
        #: so a recreated table can never collide with a stale cache key.
        self._versions: dict[str, int] = {}
        self._ddl_version = 0
        #: Callbacks ``fn(table_lower, version, ddl)`` per version bump.
        self._listeners: list = []

    def add_listener(self, fn) -> None:
        """Register a version-bump callback (the query cache's eager
        invalidation hook)."""
        self._listeners.append(fn)

    def version(self, name: str) -> int:
        """The table's current version (0 before any mutation)."""
        return self._versions.get(name.lower(), 0)

    @property
    def ddl_version(self) -> int:
        """Catalog-wide schema-identity counter (plan-cache key part)."""
        return self._ddl_version

    def bump_version(self, name: str, ddl: bool = False) -> int:
        """Advance the table's version (loads/inserts pass ddl=False;
        create/drop bump through here with ddl=True)."""
        key = name.lower()
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        if ddl:
            self._ddl_version += 1
        for fn in self._listeners:
            fn(key, version, ddl)
        return version

    def create(self, entry: TableEntry, if_not_exists: bool = False) -> bool:
        """Register a table; returns False when skipped by IF NOT EXISTS."""
        key = entry.name.lower()
        if key in self._tables:
            if if_not_exists:
                return False
            raise CatalogError(f"table already exists: {entry.name}")
        self._tables[key] = entry
        self.bump_version(key, ddl=True)
        return True

    def drop(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return False
            raise CatalogError(f"no such table: {name}")
        entry = self._tables.pop(key)
        if entry.cached_rdd is not None:
            entry.cached_rdd.unpersist()
        self.bump_version(key, ddl=True)
        return True

    def get(self, name: str) -> TableEntry:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no such table: {name}; known tables: {self.table_names()}"
            ) from None

    def exists(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(entry.name for entry in self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

"""Tokenizer for the HiveQL-subset dialect."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "join", "inner", "left", "right", "full", "outer", "on", "as", "and",
    "or", "not", "in", "between", "like", "is", "null", "true", "false",
    "case", "when", "then", "else", "end", "cast", "distinct", "union",
    "all", "create", "table", "drop", "insert", "into", "values",
    "tblproperties", "distribute", "asc", "desc", "exists", "if",
    "explain", "interval", "date", "timestamp", "cache", "uncache",
}

SYMBOLS = (
    "<>", "!=", ">=", "<=", "=", "<", ">", "(", ")", ",", ".", "+", "-",
    "*", "/", "%", ";",
)


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is 'keyword', 'ident', 'number', 'string',
    'symbol' or 'eof'."""

    kind: str
    value: str
    position: int
    line: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Convert query text into tokens; raises ParseError on bad input."""
    tokens: list[Token] = []
    index = 0
    line = 1
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            index += 1
            continue
        if char.isspace():
            index += 1
            continue
        # Comments: -- to end of line.
        if text.startswith("--", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline
            continue
        # String literals: single or double quoted, '' escapes a quote.
        if char in ("'", '"'):
            quote = char
            end = index + 1
            parts: list[str] = []
            while True:
                if end >= length:
                    raise ParseError("unterminated string literal", index, line)
                if text[end] == quote:
                    if end + 1 < length and text[end + 1] == quote:
                        parts.append(quote)
                        end += 2
                        continue
                    break
                parts.append(text[end])
                end += 1
            tokens.append(Token("string", "".join(parts), index, line))
            index = end + 1
            continue
        # Numbers: integers and decimals.
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            end = index
            seen_dot = False
            while end < length and (
                text[end].isdigit() or (text[end] == "." and not seen_dot)
            ):
                if text[end] == ".":
                    # "1.." would be pathological; a dot not followed by a
                    # digit terminates the number (e.g. "t.1" is invalid
                    # anyway).
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token("number", text[index:end], index, line))
            index = end
            continue
        # Identifiers and keywords.
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            kind = "keyword" if word.lower() in KEYWORDS else "ident"
            value = word.lower() if kind == "keyword" else word
            tokens.append(Token(kind, value, index, line))
            index = end
            continue
        # Backquoted identifiers (Hive style).
        if char == "`":
            end = text.find("`", index + 1)
            if end < 0:
                raise ParseError("unterminated quoted identifier", index, line)
            tokens.append(Token("ident", text[index + 1 : end], index, line))
            index = end + 1
            continue
        # Symbols, longest match first.
        for symbol in SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(Token("symbol", symbol, index, line))
                index += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {char!r}", index, line)
    tokens.append(Token("eof", "", length, line))
    return tokens

"""Logical query plans.

Produced by the analyzer (resolved and typed), rewritten by the optimizer,
and lowered to RDD operators by the physical planner.  Expressions inside a
node are bound against the ordinals of that node's child output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.datatypes import Schema
from repro.sql.expressions import BoundExpr
from repro.sql.functions import AggregateFunction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.catalog import TableEntry


class LogicalPlan:
    """Base class; subclasses expose ``schema`` and ``children``."""

    schema: Schema

    @property
    def children(self) -> list["LogicalPlan"]:
        return []

    def pretty(self, indent: int = 0) -> str:
        line = "  " * indent + self.describe()
        return "\n".join(
            [line] + [child.pretty(indent + 1) for child in self.children]
        )

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return self.pretty()


@dataclass
class Scan(LogicalPlan):
    """Full scan of a catalog table; the planner specializes it into a
    memstore scan (with map pruning) or an HDFS scan."""

    table: "TableEntry"
    schema: Schema = field(init=False)
    #: Columns actually needed downstream; filled by column pruning.
    projected_columns: Optional[list[str]] = None

    def __post_init__(self) -> None:
        self.schema = self.table.schema

    def describe(self) -> str:
        cols = (
            f" columns={self.projected_columns}"
            if self.projected_columns is not None
            else ""
        )
        return f"Scan({self.table.name}{cols})"


@dataclass
class Values(LogicalPlan):
    """Inline constant rows (INSERT ... VALUES, SELECT without FROM)."""

    rows: list[tuple]
    schema: Schema

    def describe(self) -> str:
        return f"Values({len(self.rows)} rows)"


@dataclass
class Filter(LogicalPlan):
    child: LogicalPlan
    condition: BoundExpr
    schema: Schema = field(init=False)

    def __post_init__(self) -> None:
        self.schema = self.child.schema

    @property
    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter({self.condition.name})"


@dataclass
class Project(LogicalPlan):
    child: LogicalPlan
    expressions: list[BoundExpr]
    schema: Schema

    @property
    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        names = ", ".join(
            f"{expr.name} AS {name}"
            for expr, name in zip(self.expressions, self.schema.names)
        )
        return f"Project({names})"


@dataclass
class AggregateSpec:
    """One aggregate call: function + its input expression (None for
    COUNT(*))."""

    function: AggregateFunction
    argument: Optional[BoundExpr]
    output_name: str


@dataclass
class Aggregate(LogicalPlan):
    child: LogicalPlan
    group_expressions: list[BoundExpr]
    aggregates: list[AggregateSpec]
    schema: Schema

    @property
    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        groups = ", ".join(expr.name for expr in self.group_expressions)
        aggs = ", ".join(
            f"{spec.function.name}({spec.argument.name if spec.argument else '*'})"
            for spec in self.aggregates
        )
        return f"Aggregate(groups=[{groups}] aggs=[{aggs}])"


@dataclass
class Join(LogicalPlan):
    left: LogicalPlan
    right: LogicalPlan
    join_type: str  # 'inner' | 'left' | 'right' | 'full' | 'cross'
    #: Equi-join keys, bound against each side's own schema.
    left_keys: list[BoundExpr]
    right_keys: list[BoundExpr]
    #: Non-equi residual condition over the concatenated (left + right) row.
    residual: Optional[BoundExpr]
    schema: Schema
    #: Planner hint, set by the optimizer or PDE at run time:
    #: 'shuffle' | 'broadcast_left' | 'broadcast_right' | 'copartitioned'.
    strategy_hint: Optional[str] = None

    @property
    def children(self) -> list[LogicalPlan]:
        return [self.left, self.right]

    def describe(self) -> str:
        keys = ", ".join(
            f"{l.name}={r.name}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        hint = f" hint={self.strategy_hint}" if self.strategy_hint else ""
        return f"Join({self.join_type}, keys=[{keys}]{hint})"


@dataclass
class Sort(LogicalPlan):
    child: LogicalPlan
    keys: list[tuple[BoundExpr, bool]]  # (expression, ascending)
    schema: Schema = field(init=False)

    def __post_init__(self) -> None:
        self.schema = self.child.schema

    @property
    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(
            f"{expr.name} {'ASC' if asc else 'DESC'}" for expr, asc in self.keys
        )
        return f"Sort({keys})"


@dataclass
class Limit(LogicalPlan):
    child: LogicalPlan
    count: int
    schema: Schema = field(init=False)

    def __post_init__(self) -> None:
        self.schema = self.child.schema

    @property
    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.count})"


@dataclass
class Distinct(LogicalPlan):
    child: LogicalPlan
    schema: Schema = field(init=False)

    def __post_init__(self) -> None:
        self.schema = self.child.schema

    @property
    def children(self) -> list[LogicalPlan]:
        return [self.child]


@dataclass
class UnionAll(LogicalPlan):
    inputs: list[LogicalPlan]
    schema: Schema = field(init=False)

    def __post_init__(self) -> None:
        self.schema = self.inputs[0].schema

    @property
    def children(self) -> list[LogicalPlan]:
        return list(self.inputs)


@dataclass
class SemiJoinFilter(LogicalPlan):
    """``key [NOT] IN (subquery)`` over the child's rows.

    The physical strategy is a broadcast semi-join: the (uncorrelated,
    single-column) subquery's result is collected into a set, broadcast,
    and probed per row — SQL NULL semantics included (``NOT IN`` over a
    set containing NULL matches nothing).
    """

    child: LogicalPlan
    key: BoundExpr
    subquery: LogicalPlan
    negated: bool = False
    schema: Schema = field(init=False)

    def __post_init__(self) -> None:
        self.schema = self.child.schema

    @property
    def children(self) -> list[LogicalPlan]:
        return [self.child, self.subquery]

    def describe(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"SemiJoinFilter({self.key.name} {keyword} subquery)"


@dataclass
class Repartition(LogicalPlan):
    """DISTRIBUTE BY: hash-repartition output on the given expressions
    (Shark's co-partitioning hook, Section 3.4)."""

    child: LogicalPlan
    expressions: list[BoundExpr]
    schema: Schema = field(init=False)

    def __post_init__(self) -> None:
        self.schema = self.child.schema

    @property
    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(expr.name for expr in self.expressions)
        return f"Repartition({keys})"


def walk(plan: LogicalPlan):
    """Yield every node, pre-order."""
    yield plan
    for child in plan.children:
        yield from walk(child)

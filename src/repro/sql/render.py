"""Render AST nodes back to SQL text.

Used by the master-recovery journal (statements are journaled as
re-parsable text) and handy for debugging.  The contract, enforced by
round-trip tests: ``parse(render(parse(text)))`` produces the same AST.
"""

from __future__ import annotations

from repro.errors import UnsupportedFeatureError
from repro.sql import ast


def render_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        return _render_literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        if expr.qualifier:
            return f"{expr.qualifier}.{expr.name}"
        return expr.name
    if isinstance(expr, ast.Star):
        return f"{expr.qualifier}.*" if expr.qualifier else "*"
    if isinstance(expr, ast.BinaryOp):
        op = expr.op.upper()
        return f"({render_expr(expr.left)} {op} {render_expr(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "not":
            return f"(NOT {render_expr(expr.operand)})"
        return f"(-{render_expr(expr.operand)})"
    if isinstance(expr, ast.FunctionCall):
        inner = ", ".join(render_expr(arg) for arg in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name.upper()}({prefix}{inner})"
    if isinstance(expr, ast.CaseWhen):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(render_expr(expr.operand))
        for condition, value in expr.branches:
            parts.append(
                f"WHEN {render_expr(condition)} THEN {render_expr(value)}"
            )
        if expr.otherwise is not None:
            parts.append(f"ELSE {render_expr(expr.otherwise)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, ast.Cast):
        return (
            f"CAST({render_expr(expr.operand)} AS {expr.type_name.upper()})"
        )
    if isinstance(expr, ast.Between):
        keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (
            f"({render_expr(expr.operand)} {keyword} "
            f"{render_expr(expr.low)} AND {render_expr(expr.high)})"
        )
    if isinstance(expr, ast.InSubquery):
        keyword = "NOT IN" if expr.negated else "IN"
        return (
            f"({render_expr(expr.operand)} {keyword} "
            f"({render_select(expr.query)}))"
        )
    if isinstance(expr, ast.InList):
        keyword = "NOT IN" if expr.negated else "IN"
        inner = ", ".join(render_expr(option) for option in expr.options)
        return f"({render_expr(expr.operand)} {keyword} ({inner}))"
    if isinstance(expr, ast.Like):
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        return (
            f"({render_expr(expr.operand)} {keyword} "
            f"{render_expr(expr.pattern)})"
        )
    if isinstance(expr, ast.IsNull):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({render_expr(expr.operand)} {keyword})"
    raise UnsupportedFeatureError(
        f"cannot render expression {type(expr).__name__}"
    )


def _render_literal(value) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def _render_relation(relation: ast.Relation) -> str:
    if isinstance(relation, ast.TableRef):
        if relation.alias:
            return f"{relation.name} AS {relation.alias}"
        return relation.name
    if isinstance(relation, ast.SubqueryRef):
        return f"({render_select(relation.query)}) AS {relation.alias}"
    if isinstance(relation, ast.JoinRef):
        joins = {
            "inner": "JOIN",
            "left": "LEFT OUTER JOIN",
            "right": "RIGHT OUTER JOIN",
            "full": "FULL OUTER JOIN",
        }
        left = _render_relation(relation.left)
        right = _render_relation(relation.right)
        if relation.condition is None:
            # Cross join: render in the comma form the parser accepts.
            return f"{left}, {right}"
        keyword = joins[relation.join_type]
        return f"{left} {keyword} {right} ON {render_expr(relation.condition)}"
    raise UnsupportedFeatureError(
        f"cannot render relation {type(relation).__name__}"
    )


def render_select(select: ast.SelectStatement) -> str:
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    items = []
    for item in select.items:
        rendered = render_expr(item.expr)
        if item.alias:
            rendered += f" AS {item.alias}"
        items.append(rendered)
    parts.append(", ".join(items))
    if select.relation is not None:
        parts.append("FROM " + _render_relation(select.relation))
    if select.where is not None:
        parts.append("WHERE " + render_expr(select.where))
    if select.group_by:
        parts.append(
            "GROUP BY " + ", ".join(render_expr(e) for e in select.group_by)
        )
    if select.having is not None:
        parts.append("HAVING " + render_expr(select.having))
    if select.distribute_by:
        parts.append(
            "DISTRIBUTE BY "
            + ", ".join(render_expr(e) for e in select.distribute_by)
        )
    if select.order_by:
        rendered_orders = []
        for order in select.order_by:
            direction = "ASC" if order.ascending else "DESC"
            rendered_orders.append(f"{render_expr(order.expr)} {direction}")
        parts.append("ORDER BY " + ", ".join(rendered_orders))
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    text = " ".join(parts)
    for branch in select.union_all:
        text += " UNION ALL " + render_select(branch)
    return text

"""Builtin scalar functions, aggregate functions, and the UDF registry.

Shark "supports all of Hive's SQL dialect and UDFs" (Section 1); here a
representative set of Hive builtins is provided, plus
:class:`FunctionRegistry` for user functions — the paper's PDE experiment
(Section 6.3.2) relies on a selective UDF over supplier addresses, and
UDFs are precisely why static optimizers fail and PDE is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import date, datetime
from typing import Any, Callable, Optional

from repro.datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    DataType,
    INT,
    STRING,
    TIMESTAMP,
    is_numeric,
    promote,
)
from repro.engine.partitioner import stable_hash
from repro.errors import AnalysisError

# ---------------------------------------------------------------------------
# Scalar builtins
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalarFunction:
    """A scalar builtin: implementation plus a result-type rule."""

    name: str
    fn: Callable[..., Any]
    #: Either a fixed DataType or a callable(arg_types) -> DataType.
    result_type: Any
    min_args: int
    max_args: int
    #: Most functions return NULL when any input is NULL; COALESCE-style
    #: functions handle NULLs themselves.
    null_propagating: bool = True

    def resolve_type(self, arg_types: list[DataType]) -> DataType:
        if callable(self.result_type):
            return self.result_type(arg_types)
        return self.result_type


def _substr(text: str, start: int, length: Optional[int] = None) -> str:
    # Hive SUBSTR is 1-based; negative start counts from the end.
    if start > 0:
        begin = start - 1
    elif start < 0:
        begin = max(len(text) + start, 0)
    else:
        begin = 0
    if length is None:
        return text[begin:]
    return text[begin : begin + max(length, 0)]


def _parse_date(value: Any) -> date:
    if isinstance(value, datetime):
        return value.date()
    if isinstance(value, date):
        return value
    return date.fromisoformat(str(value))


def _parse_timestamp(value: Any) -> datetime:
    if isinstance(value, datetime):
        return value
    if isinstance(value, date):
        return datetime(value.year, value.month, value.day)
    return datetime.fromisoformat(str(value))


def _numeric_result(arg_types: list[DataType]) -> DataType:
    result = arg_types[0]
    for arg_type in arg_types[1:]:
        result = promote(result, arg_type)
    return result


def _first_arg_type(arg_types: list[DataType]) -> DataType:
    return arg_types[0]


def _round(value: float, digits: int = 0) -> float:
    # SQL ROUND: half away from zero, unlike Python's banker's rounding.
    factor = 10**digits
    scaled = value * factor
    if scaled >= 0:
        result = math.floor(scaled + 0.5) / factor
    else:
        result = math.ceil(scaled - 0.5) / factor
    return result if digits > 0 else float(int(result)) if digits == 0 else result


_BUILTINS: dict[str, ScalarFunction] = {}


def _register(
    name: str,
    fn: Callable[..., Any],
    result_type: Any,
    min_args: int,
    max_args: Optional[int] = None,
    null_propagating: bool = True,
) -> None:
    _BUILTINS[name] = ScalarFunction(
        name=name,
        fn=fn,
        result_type=result_type,
        min_args=min_args,
        max_args=max_args if max_args is not None else min_args,
        null_propagating=null_propagating,
    )


_register("substr", _substr, STRING, 2, 3)
_register("substring", _substr, STRING, 2, 3)
_register("concat", lambda *parts: "".join(str(p) for p in parts), STRING, 1, 64)
_register("upper", lambda s: s.upper(), STRING, 1)
_register("lower", lambda s: s.lower(), STRING, 1)
_register("length", lambda s: len(s), INT, 1)
_register("trim", lambda s: s.strip(), STRING, 1)
_register("ltrim", lambda s: s.lstrip(), STRING, 1)
_register("rtrim", lambda s: s.rstrip(), STRING, 1)
_register("reverse", lambda s: s[::-1], STRING, 1)
_register(
    "instr", lambda s, sub: s.find(sub) + 1, INT, 2
)  # 1-based, 0 = absent
_register("abs", abs, _numeric_result, 1)
_register("round", _round, DOUBLE, 1, 2)
_register("floor", lambda v: int(math.floor(v)), BIGINT, 1)
_register("ceil", lambda v: int(math.ceil(v)), BIGINT, 1)
_register("ceiling", lambda v: int(math.ceil(v)), BIGINT, 1)
_register("sqrt", math.sqrt, DOUBLE, 1)
_register("exp", math.exp, DOUBLE, 1)
_register("ln", math.log, DOUBLE, 1)
_register("log", lambda base, v: math.log(v, base), DOUBLE, 2)
_register("pow", math.pow, DOUBLE, 2)
_register("power", math.pow, DOUBLE, 2)
_register("pmod", lambda a, b: a % b if b != 0 else None, _numeric_result, 2)
_register("year", lambda d: _parse_date(d).year, INT, 1)
_register("month", lambda d: _parse_date(d).month, INT, 1)
_register("day", lambda d: _parse_date(d).day, INT, 1)
_register("date", _parse_date, DATE, 1)
_register("to_date", _parse_date, DATE, 1)
_register("timestamp", _parse_timestamp, TIMESTAMP, 1)
_register("datediff", lambda a, b: (_parse_date(a) - _parse_date(b)).days, INT, 2)
_register(
    "coalesce",
    lambda *values: next((v for v in values if v is not None), None),
    _first_arg_type,
    1,
    64,
    null_propagating=False,
)
_register(
    "if",
    lambda cond, then, other: then if cond else other,
    lambda arg_types: arg_types[1],
    3,
    null_propagating=False,
)
_register(
    "nvl",
    lambda value, default: default if value is None else value,
    _first_arg_type,
    2,
    null_propagating=False,
)
_register("isnull", lambda v: v is None, BOOLEAN, 1, null_propagating=False)
_register("hash", lambda *values: stable_hash(tuple(values)), INT, 1, 16)


def _split(text: str, pattern: str) -> list:
    import re as _re

    return _re.split(pattern, text)


def _regexp_extract(text: str, pattern: str, group: int = 1) -> str:
    import re as _re

    match = _re.search(pattern, text)
    if match is None:
        return ""
    return match.group(group) or ""


def _regexp_replace(text: str, pattern: str, replacement: str) -> str:
    import re as _re

    return _re.sub(pattern, replacement, text)


def _date_add(value: Any, days: int) -> date:
    from datetime import timedelta

    return _parse_date(value) + timedelta(days=days)


from repro.datatypes import ArrayType as _ArrayType  # noqa: E402

_register("split", _split, _ArrayType(element_type=STRING), 2)
_register("regexp_extract", _regexp_extract, STRING, 2, 3)
_register("regexp_replace", _regexp_replace, STRING, 3)
_register("lpad", lambda s, n, pad: s.rjust(n, pad)[:n] if len(s) < n else s[:n], STRING, 3)
_register("rpad", lambda s, n, pad: s.ljust(n, pad)[:n] if len(s) < n else s[:n], STRING, 3)
_register(
    "greatest",
    lambda *values: max(v for v in values if v is not None)
    if any(v is not None for v in values) else None,
    _first_arg_type, 2, 16, null_propagating=False,
)
_register(
    "least",
    lambda *values: min(v for v in values if v is not None)
    if any(v is not None for v in values) else None,
    _first_arg_type, 2, 16, null_propagating=False,
)
_register("date_add", _date_add, DATE, 2)
_register("date_sub", lambda v, days: _date_add(v, -days), DATE, 2)


def builtin(name: str) -> Optional[ScalarFunction]:
    return _BUILTINS.get(name.lower())


def builtin_names() -> list[str]:
    return sorted(_BUILTINS)


# ---------------------------------------------------------------------------
# Aggregate functions
# ---------------------------------------------------------------------------


class AggregateFunction:
    """Partial-aggregation contract: init/update/merge/finish.

    Both Shark and Hive "applied task-local aggregations and shuffled the
    data to parallelize the final merge aggregation" (Section 6.2.2);
    this interface is what makes that two-phase plan possible.
    """

    name = "agg"

    def __init__(self, distinct: bool = False):
        self.distinct = distinct

    def result_type(self, input_type: Optional[DataType]) -> DataType:
        raise NotImplementedError

    def initial(self) -> Any:
        raise NotImplementedError

    def update(self, acc: Any, value: Any) -> Any:
        raise NotImplementedError

    def merge(self, left: Any, right: Any) -> Any:
        raise NotImplementedError

    def finish(self, acc: Any) -> Any:
        raise NotImplementedError


class CountAggregate(AggregateFunction):
    """COUNT(*), COUNT(expr), COUNT(DISTINCT expr)."""

    name = "count"

    def __init__(self, distinct: bool = False, count_star: bool = False):
        super().__init__(distinct)
        self.count_star = count_star

    def result_type(self, input_type: Optional[DataType]) -> DataType:
        return BIGINT

    def initial(self) -> Any:
        return set() if self.distinct else 0

    def update(self, acc: Any, value: Any) -> Any:
        if self.distinct:
            if value is not None:
                acc.add(value)
            return acc
        if self.count_star or value is not None:
            return acc + 1
        return acc

    def merge(self, left: Any, right: Any) -> Any:
        if self.distinct:
            return left | right
        return left + right

    def finish(self, acc: Any) -> int:
        return len(acc) if self.distinct else acc


class SumAggregate(AggregateFunction):
    name = "sum"

    def result_type(self, input_type: Optional[DataType]) -> DataType:
        if input_type is not None and not is_numeric(input_type):
            raise AnalysisError(f"SUM requires a numeric argument, got {input_type}")
        return input_type if input_type is not None else DOUBLE

    def initial(self) -> Any:
        return set() if self.distinct else None

    def update(self, acc: Any, value: Any) -> Any:
        if self.distinct:
            if value is not None:
                acc.add(value)
            return acc
        if value is None:
            return acc
        return value if acc is None else acc + value

    def merge(self, left: Any, right: Any) -> Any:
        if self.distinct:
            return left | right
        if left is None:
            return right
        if right is None:
            return left
        return left + right

    def finish(self, acc: Any) -> Any:
        if self.distinct:
            return sum(acc) if acc else None
        return acc


class MinAggregate(AggregateFunction):
    name = "min"

    def result_type(self, input_type: Optional[DataType]) -> DataType:
        return input_type if input_type is not None else DOUBLE

    def initial(self) -> Any:
        return None

    def update(self, acc: Any, value: Any) -> Any:
        if value is None:
            return acc
        return value if acc is None or value < acc else acc

    def merge(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return left if left <= right else right

    def finish(self, acc: Any) -> Any:
        return acc


class MaxAggregate(AggregateFunction):
    name = "max"

    def result_type(self, input_type: Optional[DataType]) -> DataType:
        return input_type if input_type is not None else DOUBLE

    def initial(self) -> Any:
        return None

    def update(self, acc: Any, value: Any) -> Any:
        if value is None:
            return acc
        return value if acc is None or value > acc else acc

    def merge(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return left if left >= right else right

    def finish(self, acc: Any) -> Any:
        return acc


class AvgAggregate(AggregateFunction):
    """AVG via (sum, count) partials so it merges correctly across tasks."""

    name = "avg"

    def result_type(self, input_type: Optional[DataType]) -> DataType:
        return DOUBLE

    def initial(self) -> Any:
        return set() if self.distinct else (0.0, 0)

    def update(self, acc: Any, value: Any) -> Any:
        if self.distinct:
            if value is not None:
                acc.add(value)
            return acc
        if value is None:
            return acc
        total, count = acc
        return (total + value, count + 1)

    def merge(self, left: Any, right: Any) -> Any:
        if self.distinct:
            return left | right
        return (left[0] + right[0], left[1] + right[1])

    def finish(self, acc: Any) -> Optional[float]:
        if self.distinct:
            return sum(acc) / len(acc) if acc else None
        total, count = acc
        return total / count if count else None


class StdDevAggregate(AggregateFunction):
    """Population standard deviation via (n, sum, sum of squares)."""

    name = "stddev"

    def result_type(self, input_type: Optional[DataType]) -> DataType:
        return DOUBLE

    def initial(self) -> Any:
        return (0, 0.0, 0.0)

    def update(self, acc: Any, value: Any) -> Any:
        if value is None:
            return acc
        n, total, squares = acc
        return (n + 1, total + value, squares + value * value)

    def merge(self, left: Any, right: Any) -> Any:
        return (
            left[0] + right[0],
            left[1] + right[1],
            left[2] + right[2],
        )

    def finish(self, acc: Any) -> Optional[float]:
        n, total, squares = acc
        if n == 0:
            return None
        variance = max(squares / n - (total / n) ** 2, 0.0)
        return math.sqrt(variance)


AGGREGATE_NAMES = {"count", "sum", "avg", "min", "max", "stddev", "stddev_pop"}


def make_aggregate(
    name: str, distinct: bool, count_star: bool = False
) -> AggregateFunction:
    lowered = name.lower()
    if lowered == "count":
        return CountAggregate(distinct=distinct, count_star=count_star)
    if lowered == "sum":
        return SumAggregate(distinct=distinct)
    if lowered == "avg":
        return AvgAggregate(distinct=distinct)
    if lowered == "min":
        return MinAggregate()
    if lowered == "max":
        return MaxAggregate()
    if lowered in ("stddev", "stddev_pop"):
        return StdDevAggregate()
    raise AnalysisError(f"unknown aggregate function {name!r}")


# ---------------------------------------------------------------------------
# User-defined functions
# ---------------------------------------------------------------------------


class FunctionRegistry:
    """Per-session UDF registry; builtins are consulted first."""

    def __init__(self) -> None:
        self._udfs: dict[str, ScalarFunction] = {}

    def register(
        self,
        name: str,
        fn: Callable[..., Any],
        return_type: DataType = STRING,
        min_args: int = 0,
        max_args: int = 64,
        null_propagating: bool = True,
    ) -> None:
        """Register a scalar UDF callable from SQL by ``name``."""
        self._udfs[name.lower()] = ScalarFunction(
            name=name.lower(),
            fn=fn,
            result_type=return_type,
            min_args=min_args,
            max_args=max_args,
            null_propagating=null_propagating,
        )

    def lookup(self, name: str) -> Optional[ScalarFunction]:
        found = builtin(name)
        if found is not None:
            return found
        return self._udfs.get(name.lower())

    def is_registered(self, name: str) -> bool:
        return self.lookup(name) is not None

    def udf_names(self) -> list[str]:
        return sorted(self._udfs)

"""Recursive-descent parser for the HiveQL-subset dialect."""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.sql.ast import (
    Between,
    BinaryOp,
    CacheTable,
    CaseWhen,
    Cast,
    ColumnDef,
    ColumnRef,
    CreateTable,
    DropTable,
    Explain,
    Expr,
    FunctionCall,
    InList,
    InSubquery,
    InsertInto,
    IsNull,
    JoinRef,
    Like,
    Literal,
    OrderItem,
    Relation,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from repro.sql.lexer import Token, tokenize

#: Keywords that may also appear as identifiers (column/table names).
_SOFT_KEYWORDS = {"date", "timestamp", "values", "cache", "if", "exists"}

_COMPARISONS = {"=", "<>", "!=", "<", ">", "<=", ">="}


class Parser:
    """One-pass recursive-descent parser over a token list."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._index = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        return self._peek().matches(kind, value)

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._peek()
        if not token.matches(kind, value):
            wanted = value or kind
            raise ParseError(
                f"expected {wanted!r}, found {token.value!r}",
                token.position,
                token.line,
            )
        return self._advance()

    def _keyword(self, *words: str) -> bool:
        """Accept a sequence of keywords if all present."""
        for offset, word in enumerate(words):
            if not self._peek(offset).matches("keyword", word):
                return False
        for __ in words:
            self._advance()
        return True

    def _identifier(self) -> str:
        token = self._peek()
        if token.kind == "ident":
            return self._advance().value
        if token.kind == "keyword" and token.value in _SOFT_KEYWORDS:
            return self._advance().value
        raise ParseError(
            f"expected identifier, found {token.value!r}",
            token.position,
            token.line,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> Statement:
        if self._keyword("explain"):
            analyze = False
            token = self._peek()
            if token.kind == "ident" and token.value.lower() == "analyze":
                self._advance()
                analyze = True
            return Explain(self.parse_statement(), analyze=analyze)
        if self._check("keyword", "select"):
            statement = self._parse_select()
        elif self._check("keyword", "create"):
            statement = self._parse_create()
        elif self._keyword("drop", "table"):
            if_exists = self._keyword("if", "exists")
            statement = DropTable(self._identifier(), if_exists=if_exists)
        elif self._keyword("insert", "into"):
            statement = self._parse_insert()
        elif self._keyword("cache", "table"):
            statement = CacheTable(self._identifier())
        elif self._keyword("uncache", "table"):
            statement = CacheTable(self._identifier(), uncache=True)
        else:
            token = self._peek()
            raise ParseError(
                f"unexpected statement start {token.value!r}",
                token.position,
                token.line,
            )
        self._accept("symbol", ";")
        self._expect("eof")
        return statement

    def _parse_select(self) -> SelectStatement:
        self._expect("keyword", "select")
        distinct = bool(self._accept("keyword", "distinct"))
        items = [self._parse_select_item()]
        while self._accept("symbol", ","):
            items.append(self._parse_select_item())

        relation = None
        if self._accept("keyword", "from"):
            relation = self._parse_relation()

        where = None
        if self._accept("keyword", "where"):
            where = self._parse_expr()

        group_by: list[Expr] = []
        if self._keyword("group", "by"):
            group_by.append(self._parse_expr())
            while self._accept("symbol", ","):
                group_by.append(self._parse_expr())

        having = None
        if self._accept("keyword", "having"):
            having = self._parse_expr()

        distribute_by: list[Expr] = []
        if self._keyword("distribute", "by"):
            distribute_by.append(self._parse_expr())
            while self._accept("symbol", ","):
                distribute_by.append(self._parse_expr())

        order_by: list[OrderItem] = []
        if self._keyword("order", "by"):
            order_by.append(self._parse_order_item())
            while self._accept("symbol", ","):
                order_by.append(self._parse_order_item())

        limit = None
        if self._accept("keyword", "limit"):
            token = self._expect("number")
            limit = int(token.value)

        union_all: list[SelectStatement] = []
        while self._keyword("union", "all"):
            union_all.append(self._parse_select())

        return SelectStatement(
            items=items,
            relation=relation,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            union_all=union_all,
            distribute_by=distribute_by,
        )

    def _parse_select_item(self) -> SelectItem:
        expr = self._parse_expr()
        alias = None
        if self._accept("keyword", "as"):
            alias = self._identifier()
        elif self._peek().kind == "ident":
            alias = self._advance().value
        return SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expr()
        ascending = True
        if self._accept("keyword", "desc"):
            ascending = False
        else:
            self._accept("keyword", "asc")
        return OrderItem(expr=expr, ascending=ascending)

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------
    def _parse_relation(self) -> Relation:
        relation = self._parse_join_chain()
        # Comma-separated relations are cross joins ("FROM r, uv WHERE ...",
        # as in the Pavlo join query); pushdown later recovers conditions.
        while self._accept("symbol", ","):
            right = self._parse_join_chain()
            relation = JoinRef(relation, right, "inner", None)
        return relation

    def _parse_join_chain(self) -> Relation:
        relation = self._parse_primary_relation()
        while True:
            join_type = None
            if self._accept("keyword", "join") or self._keyword("inner", "join"):
                join_type = "inner"
            elif self._check("keyword", "left"):
                self._advance()
                self._accept("keyword", "outer")
                self._expect("keyword", "join")
                join_type = "left"
            elif self._check("keyword", "right"):
                self._advance()
                self._accept("keyword", "outer")
                self._expect("keyword", "join")
                join_type = "right"
            elif self._check("keyword", "full"):
                self._advance()
                self._accept("keyword", "outer")
                self._expect("keyword", "join")
                join_type = "full"
            else:
                return relation
            right = self._parse_primary_relation()
            condition = None
            if self._accept("keyword", "on"):
                condition = self._parse_expr()
            relation = JoinRef(relation, right, join_type, condition)

    def _parse_primary_relation(self) -> Relation:
        if self._accept("symbol", "("):
            if self._check("keyword", "select"):
                query = self._parse_select()
                self._expect("symbol", ")")
                self._accept("keyword", "as")
                alias = self._identifier()
                return SubqueryRef(query, alias)
            relation = self._parse_relation()
            self._expect("symbol", ")")
            return relation
        name = self._identifier()
        alias = None
        if self._accept("keyword", "as"):
            alias = self._identifier()
        elif self._peek().kind == "ident":
            alias = self._advance().value
        return TableRef(name, alias)

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def _parse_create(self) -> CreateTable:
        self._expect("keyword", "create")
        self._expect("keyword", "table")
        if_not_exists = self._keyword("if", "not", "exists")
        name = self._identifier()

        columns: list[ColumnDef] = []
        if self._check("symbol", "(") and not self._peek(1).matches(
            "string"
        ):
            self._expect("symbol", "(")
            columns.append(self._parse_column_def())
            while self._accept("symbol", ","):
                columns.append(self._parse_column_def())
            self._expect("symbol", ")")

        properties: dict[str, str] = {}
        if self._accept("keyword", "tblproperties"):
            self._expect("symbol", "(")
            key = self._expect("string").value
            self._expect("symbol", "=")
            properties[key] = self._parse_property_value()
            while self._accept("symbol", ","):
                key = self._expect("string").value
                self._expect("symbol", "=")
                properties[key] = self._parse_property_value()
            self._expect("symbol", ")")

        as_select = None
        if self._accept("keyword", "as"):
            as_select = self._parse_select()

        return CreateTable(
            name=name,
            columns=columns,
            properties=properties,
            as_select=as_select,
            if_not_exists=if_not_exists,
        )

    def _parse_property_value(self) -> str:
        token = self._peek()
        if token.kind == "string":
            return self._advance().value
        if token.kind == "number":
            return self._advance().value
        if token.kind == "keyword" and token.value in ("true", "false"):
            return self._advance().value
        raise ParseError(
            f"expected property value, found {token.value!r}",
            token.position,
            token.line,
        )

    def _parse_column_def(self) -> ColumnDef:
        name = self._identifier()
        token = self._peek()
        if token.kind in ("ident", "keyword"):
            type_name = self._advance().value
        else:
            raise ParseError(
                f"expected column type, found {token.value!r}",
                token.position,
                token.line,
            )
        return ColumnDef(name=name, type_name=type_name)

    def _parse_insert(self) -> InsertInto:
        table = self._identifier()
        if self._accept("keyword", "values"):
            rows: list[list[Expr]] = []
            while True:
                self._expect("symbol", "(")
                row = [self._parse_expr()]
                while self._accept("symbol", ","):
                    row.append(self._parse_expr())
                self._expect("symbol", ")")
                rows.append(row)
                if not self._accept("symbol", ","):
                    break
            return InsertInto(table=table, values=rows)
        select = self._parse_select()
        return InsertInto(table=table, select=select)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept("keyword", "or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept("keyword", "and"):
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept("keyword", "not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "symbol" and token.value in _COMPARISONS:
            self._advance()
            op = "<>" if token.value == "!=" else token.value
            return BinaryOp(op, left, self._parse_additive())

        negated = False
        if self._check("keyword", "not") and self._peek(1).value in (
            "between", "in", "like",
        ):
            self._advance()
            negated = True

        if self._accept("keyword", "between"):
            low = self._parse_additive()
            self._expect("keyword", "and")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)
        if self._accept("keyword", "in"):
            self._expect("symbol", "(")
            if self._check("keyword", "select"):
                query = self._parse_select()
                self._expect("symbol", ")")
                return InSubquery(left, query, negated=negated)
            options = [self._parse_expr()]
            while self._accept("symbol", ","):
                options.append(self._parse_expr())
            self._expect("symbol", ")")
            return InList(left, tuple(options), negated=negated)
        if self._accept("keyword", "like"):
            return Like(left, self._parse_additive(), negated=negated)
        if self._accept("keyword", "is"):
            is_negated = bool(self._accept("keyword", "not"))
            self._expect("keyword", "null")
            return IsNull(left, negated=is_negated)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == "symbol" and token.value in ("+", "-"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "symbol" and token.value in ("*", "/", "%"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept("symbol", "-"):
            return UnaryOp("-", self._parse_unary())
        if self._accept("symbol", "+"):
            return self._parse_unary()
        return self._parse_primary_expr()

    def _parse_primary_expr(self) -> Expr:
        token = self._peek()

        if token.kind == "number":
            self._advance()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.kind == "string":
            self._advance()
            return Literal(token.value)
        if token.kind == "keyword":
            if token.value in ("true", "false"):
                self._advance()
                return Literal(token.value == "true")
            if token.value == "null":
                self._advance()
                return Literal(None)
            if token.value in ("date", "timestamp") and self._peek(1).kind in (
                "string", "symbol",
            ):
                # DATE '2000-01-15' literal or Date('2000-01-15') call.
                if self._peek(1).kind == "string":
                    self._advance()
                    text = self._expect("string").value
                    return FunctionCall(token.value, (Literal(text),))
                if self._peek(1).matches("symbol", "("):
                    self._advance()
                    self._expect("symbol", "(")
                    inner = self._parse_expr()
                    self._expect("symbol", ")")
                    return FunctionCall(token.value, (inner,))
            if token.value == "case":
                return self._parse_case()
            if token.value == "cast":
                self._advance()
                self._expect("symbol", "(")
                operand = self._parse_expr()
                self._expect("keyword", "as")
                type_token = self._advance()
                self._expect("symbol", ")")
                return Cast(operand, type_token.value.lower())
            if token.value in _SOFT_KEYWORDS:
                return self._parse_name_or_call()
            if token.value == "if" or token.value == "distinct":
                pass  # fall through to error below
            raise ParseError(
                f"unexpected keyword {token.value!r} in expression",
                token.position,
                token.line,
            )
        if token.kind == "ident":
            return self._parse_name_or_call()
        if token.matches("symbol", "("):
            self._advance()
            expr = self._parse_expr()
            self._expect("symbol", ")")
            return expr
        if token.matches("symbol", "*"):
            self._advance()
            return Star()
        raise ParseError(
            f"unexpected token {token.value!r} in expression",
            token.position,
            token.line,
        )

    def _parse_case(self) -> Expr:
        self._expect("keyword", "case")
        operand = None
        if not self._check("keyword", "when"):
            operand = self._parse_expr()
        branches: list[tuple[Expr, Expr]] = []
        while self._accept("keyword", "when"):
            condition = self._parse_expr()
            self._expect("keyword", "then")
            value = self._parse_expr()
            branches.append((condition, value))
        otherwise = None
        if self._accept("keyword", "else"):
            otherwise = self._parse_expr()
        self._expect("keyword", "end")
        return CaseWhen(operand, tuple(branches), otherwise)

    def _parse_name_or_call(self) -> Expr:
        name = self._identifier()
        # Function call?
        if self._check("symbol", "("):
            self._advance()
            distinct = bool(self._accept("keyword", "distinct"))
            args: list[Expr] = []
            if not self._check("symbol", ")"):
                args.append(self._parse_expr())
                while self._accept("symbol", ","):
                    args.append(self._parse_expr())
            self._expect("symbol", ")")
            return FunctionCall(name.lower(), tuple(args), distinct=distinct)
        # Qualified reference: t.col or t.*
        if self._check("symbol", "."):
            self._advance()
            if self._accept("symbol", "*"):
                return Star(qualifier=name)
            column = self._identifier()
            return ColumnRef(column, qualifier=name)
        return ColumnRef(name)


def parse(text: str) -> Statement:
    """Parse one SQL statement."""
    return Parser(text).parse_statement()


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (used by tests and the UDF helpers)."""
    parser = Parser(text)
    expr = parser._parse_expr()
    parser._expect("eof")
    return expr

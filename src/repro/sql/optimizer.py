"""Rule-based logical optimization (paper Section 2.4).

Shark applies "basic logical optimization, such as predicate pushdown"
shared with Hive, plus "additional rule-based optimizations, such as
pushing LIMIT down to individual partitions" (the physical planner applies
the per-partition LIMIT; the rules here keep the Limit adjacent to its
child so it can).  Rules, in application order:

1. **constant folding** — literal-only subtrees evaluate once at plan time;
2. **predicate pushdown** — WHERE conjuncts move below projections and into
   join sides; ``left.col = right.col`` conjuncts over a cross/inner join
   become equi-join keys (this is what turns the Pavlo benchmark's
   ``FROM rankings R, uservisits UV WHERE R.pageURL = UV.destURL`` into a
   hash join);
3. **column pruning** — scans read only the columns the query touches,
   which is where columnar storage pays off.
"""

from __future__ import annotations

from typing import Optional

from repro.datatypes import Field, Schema
from repro.sql import logical
from repro.sql.expressions import (
    BoundAnd,
    BoundColumn,
    BoundExpr,
    BoundLiteral,
    rewrite_columns,
)


def optimize(plan: logical.LogicalPlan) -> logical.LogicalPlan:
    """Apply all rules and return the optimized plan."""
    plan = fold_constants(plan)
    plan = push_down_predicates(plan)
    plan = prune_columns(plan)
    return plan


# ---------------------------------------------------------------------------
# Commutative canonicalization (plan-cache normalization)
# ---------------------------------------------------------------------------

#: Operators whose operand order never changes the result — the plan
#: cache's normalizer orders their operands canonically so ``a = 1`` and
#: ``1 = a`` (or ``x AND y`` / ``y AND x``) share one cache entry.
COMMUTATIVE_OPS = frozenset({"=", "!=", "+", "*", "and", "or"})


def canonical_commutative_swap(op: str, left_key: str, right_key: str) -> bool:
    """True when a commutative ``op``'s operands should swap to reach
    canonical order.  ``left_key``/``right_key`` are the operands'
    already-normalized renderings; ordering by them is deterministic and
    stable across textual variants of the same predicate."""
    return op in COMMUTATIVE_OPS and right_key < left_key


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------


def fold_expression(expr: BoundExpr) -> BoundExpr:
    """Replace literal-only subtrees with their evaluated value."""
    if isinstance(expr, BoundLiteral):
        return expr
    if not expr.references():
        try:
            value = expr.eval(())
        except Exception:
            return expr  # leave non-evaluable expressions alone
        return BoundLiteral(value, expr.data_type)
    # Fold children in place (expressions are plan-private copies).
    _fold_children(expr)
    return expr


def _fold_children(expr: BoundExpr) -> None:
    for attribute in ("left", "right", "operand", "low", "high", "pattern",
                      "otherwise"):
        child = getattr(expr, attribute, None)
        if isinstance(child, BoundExpr):
            setattr(expr, attribute, fold_expression(child))
    if hasattr(expr, "args"):
        expr.args = [fold_expression(arg) for arg in expr.args]
    if hasattr(expr, "options"):
        expr.options = [fold_expression(option) for option in expr.options]
    if hasattr(expr, "branches"):
        expr.branches = [
            (fold_expression(condition), fold_expression(value))
            for condition, value in expr.branches
        ]


def fold_constants(plan: logical.LogicalPlan) -> logical.LogicalPlan:
    if isinstance(plan, logical.Filter):
        return logical.Filter(
            fold_constants(plan.child), fold_expression(plan.condition)
        )
    if isinstance(plan, logical.Project):
        return logical.Project(
            fold_constants(plan.child),
            [fold_expression(expr) for expr in plan.expressions],
            plan.schema,
        )
    if isinstance(plan, logical.Aggregate):
        return logical.Aggregate(
            fold_constants(plan.child),
            [fold_expression(expr) for expr in plan.group_expressions],
            [
                logical.AggregateSpec(
                    spec.function,
                    fold_expression(spec.argument) if spec.argument else None,
                    spec.output_name,
                )
                for spec in plan.aggregates
            ],
            plan.schema,
        )
    if isinstance(plan, logical.Join):
        return logical.Join(
            fold_constants(plan.left),
            fold_constants(plan.right),
            plan.join_type,
            [fold_expression(expr) for expr in plan.left_keys],
            [fold_expression(expr) for expr in plan.right_keys],
            fold_expression(plan.residual) if plan.residual else None,
            plan.schema,
            plan.strategy_hint,
        )
    if isinstance(plan, logical.Sort):
        return logical.Sort(
            fold_constants(plan.child),
            [(fold_expression(expr), asc) for expr, asc in plan.keys],
        )
    if isinstance(plan, logical.Limit):
        return logical.Limit(fold_constants(plan.child), plan.count)
    if isinstance(plan, logical.Distinct):
        return logical.Distinct(fold_constants(plan.child))
    if isinstance(plan, logical.UnionAll):
        return logical.UnionAll([fold_constants(child) for child in plan.inputs])
    if isinstance(plan, logical.Repartition):
        return logical.Repartition(
            fold_constants(plan.child),
            [fold_expression(expr) for expr in plan.expressions],
        )
    if isinstance(plan, logical.SemiJoinFilter):
        return logical.SemiJoinFilter(
            fold_constants(plan.child),
            fold_expression(plan.key),
            fold_constants(plan.subquery),
            plan.negated,
        )
    return plan


# ---------------------------------------------------------------------------
# Predicate pushdown
# ---------------------------------------------------------------------------


def split_conjuncts(expr: BoundExpr) -> list[BoundExpr]:
    if isinstance(expr, BoundAnd):
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def join_conjuncts(conjuncts: list[BoundExpr]) -> Optional[BoundExpr]:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = BoundAnd(result, conjunct)
    return result


def _is_simple_equi(expr: BoundExpr, left_width: int) -> Optional[tuple[BoundExpr, BoundExpr]]:
    """``expr(left-only) = expr(right-only)`` over a join's combined row."""
    from repro.sql.expressions import BoundComparison

    if not (isinstance(expr, BoundComparison) and expr.op == "="):
        return None
    left_refs = expr.left.references()
    right_refs = expr.right.references()
    if not left_refs or not right_refs:
        return None
    if max(left_refs) < left_width and min(right_refs) >= left_width:
        return expr.left, expr.right
    if max(right_refs) < left_width and min(left_refs) >= left_width:
        return expr.right, expr.left
    return None


def push_down_predicates(plan: logical.LogicalPlan) -> logical.LogicalPlan:
    if isinstance(plan, logical.Filter):
        child = push_down_predicates(plan.child)
        conjuncts = split_conjuncts(plan.condition)
        return _push_into(child, conjuncts)
    if isinstance(plan, logical.Project):
        return logical.Project(
            push_down_predicates(plan.child), plan.expressions, plan.schema
        )
    if isinstance(plan, logical.Aggregate):
        return logical.Aggregate(
            push_down_predicates(plan.child),
            plan.group_expressions,
            plan.aggregates,
            plan.schema,
        )
    if isinstance(plan, logical.Join):
        return logical.Join(
            push_down_predicates(plan.left),
            push_down_predicates(plan.right),
            plan.join_type,
            plan.left_keys,
            plan.right_keys,
            plan.residual,
            plan.schema,
            plan.strategy_hint,
        )
    if isinstance(plan, logical.Sort):
        return logical.Sort(push_down_predicates(plan.child), plan.keys)
    if isinstance(plan, logical.Limit):
        return logical.Limit(push_down_predicates(plan.child), plan.count)
    if isinstance(plan, logical.Distinct):
        return logical.Distinct(push_down_predicates(plan.child))
    if isinstance(plan, logical.UnionAll):
        return logical.UnionAll(
            [push_down_predicates(child) for child in plan.inputs]
        )
    if isinstance(plan, logical.Repartition):
        return logical.Repartition(
            push_down_predicates(plan.child), plan.expressions
        )
    if isinstance(plan, logical.SemiJoinFilter):
        return logical.SemiJoinFilter(
            push_down_predicates(plan.child),
            plan.key,
            push_down_predicates(plan.subquery),
            plan.negated,
        )
    return plan


def _push_into(
    plan: logical.LogicalPlan, conjuncts: list[BoundExpr]
) -> logical.LogicalPlan:
    """Push filter conjuncts as deep as legal into ``plan``."""
    if not conjuncts:
        return plan

    if isinstance(plan, logical.Filter):
        # Merge adjacent filters and keep pushing.
        return _push_into(plan.child, conjuncts + split_conjuncts(plan.condition))

    if isinstance(plan, logical.Project):
        # A conjunct can cross the projection when every column it reads is
        # a pass-through column reference.
        passthrough: dict[int, int] = {}
        for out_index, expr in enumerate(plan.expressions):
            if isinstance(expr, BoundColumn):
                passthrough[out_index] = expr.index
        pushable: list[BoundExpr] = []
        stuck: list[BoundExpr] = []
        for conjunct in conjuncts:
            refs = conjunct.references()
            if refs <= set(passthrough):
                pushable.append(rewrite_columns(conjunct, passthrough))
            else:
                stuck.append(conjunct)
        new_child = _push_into(plan.child, pushable)
        result: logical.LogicalPlan = logical.Project(
            new_child, plan.expressions, plan.schema
        )
        remaining = join_conjuncts(stuck)
        if remaining is not None:
            result = logical.Filter(result, remaining)
        return result

    if isinstance(plan, logical.Join):
        return _push_into_join(plan, conjuncts)

    if isinstance(plan, (logical.Sort, logical.Limit)):
        # Pushing below Limit changes results; keep the filter above.
        condition = join_conjuncts(conjuncts)
        return logical.Filter(plan, condition)

    if isinstance(plan, logical.Distinct):
        inner = _push_into(plan.child, conjuncts)
        return logical.Distinct(inner)

    if isinstance(plan, logical.UnionAll):
        return logical.UnionAll(
            [_push_into(child, list(conjuncts)) for child in plan.inputs]
        )

    if isinstance(plan, logical.Repartition):
        return logical.Repartition(
            _push_into(plan.child, conjuncts), plan.expressions
        )

    if isinstance(plan, logical.SemiJoinFilter):
        # A semi-join filter only removes rows; other filters commute.
        return logical.SemiJoinFilter(
            _push_into(plan.child, conjuncts),
            plan.key,
            plan.subquery,
            plan.negated,
        )

    # Scan, Values, Aggregate (conjuncts above an Aggregate were already
    # placed by the analyzer as HAVING): attach the filter here.
    condition = join_conjuncts(conjuncts)
    if condition is None:
        return plan
    return logical.Filter(plan, condition)


def _push_into_join(
    plan: logical.Join, conjuncts: list[BoundExpr]
) -> logical.LogicalPlan:
    left_width = len(plan.left.schema)
    right_width = len(plan.right.schema)

    left_conjuncts: list[BoundExpr] = []
    right_conjuncts: list[BoundExpr] = []
    new_left_keys = list(plan.left_keys)
    new_right_keys = list(plan.right_keys)
    residual: list[BoundExpr] = (
        split_conjuncts(plan.residual) if plan.residual else []
    )
    join_type = plan.join_type

    can_push_left = join_type in ("inner", "cross", "left")
    can_push_right = join_type in ("inner", "cross", "right")

    for conjunct in conjuncts:
        refs = conjunct.references()
        if refs and max(refs) < left_width and can_push_left:
            left_conjuncts.append(conjunct)
            continue
        if refs and min(refs) >= left_width and can_push_right:
            right_conjuncts.append(
                rewrite_columns(
                    conjunct, {i: i - left_width for i in refs}
                )
            )
            continue
        if join_type in ("inner", "cross"):
            pair = _is_simple_equi(conjunct, left_width)
            if pair is not None:
                left_side, right_side = pair
                new_left_keys.append(left_side)
                new_right_keys.append(
                    rewrite_columns(
                        right_side,
                        {i: i - left_width for i in right_side.references()},
                    )
                )
                continue
        residual.append(conjunct)

    if join_type == "cross" and new_left_keys:
        join_type = "inner"

    new_left = _push_into(push_down_predicates(plan.left), left_conjuncts)
    new_right = _push_into(push_down_predicates(plan.right), right_conjuncts)
    del right_width
    return logical.Join(
        new_left,
        new_right,
        join_type,
        new_left_keys,
        new_right_keys,
        join_conjuncts(residual),
        plan.schema,
        plan.strategy_hint,
    )


# ---------------------------------------------------------------------------
# Column pruning
# ---------------------------------------------------------------------------


def prune_columns(plan: logical.LogicalPlan) -> logical.LogicalPlan:
    pruned, kept = _prune(plan, None)
    if kept != list(range(len(plan.schema))):
        # Restore the original output layout with a final projection.
        mapping = {old: new for new, old in enumerate(kept)}
        exprs = [
            BoundColumn(
                mapping[i], field.data_type, field.name
            )
            for i, field in enumerate(plan.schema.fields)
        ]
        return logical.Project(pruned, exprs, plan.schema)
    return pruned


def _prune(
    plan: logical.LogicalPlan, required: Optional[set[int]]
) -> tuple[logical.LogicalPlan, list[int]]:
    """Returns (new_plan, kept) where ``kept`` lists the old output
    ordinals surviving, in new output order."""
    all_ordinals = list(range(len(plan.schema)))
    if required is None:
        required = set(all_ordinals)

    if isinstance(plan, logical.Scan):
        kept = sorted(required) or [0]
        if kept == all_ordinals:
            return plan, all_ordinals
        names = [plan.schema.names[i] for i in kept]
        new_scan = logical.Scan(plan.table)
        new_scan.projected_columns = names
        new_scan.schema = plan.schema.select(names)
        return new_scan, kept

    if isinstance(plan, logical.Filter):
        child_required = required | plan.condition.references()
        new_child, kept = _prune(plan.child, child_required)
        mapping = {old: new for new, old in enumerate(kept)}
        condition = rewrite_columns(plan.condition, mapping)
        return logical.Filter(new_child, condition), kept

    if isinstance(plan, logical.Project):
        kept = sorted(required) or [0]
        kept_exprs = [plan.expressions[i] for i in kept]
        child_required: set[int] = set()
        for expr in kept_exprs:
            child_required |= expr.references()
        new_child, child_kept = _prune(plan.child, child_required)
        mapping = {old: new for new, old in enumerate(child_kept)}
        rewritten = [rewrite_columns(expr, mapping) for expr in kept_exprs]
        schema = Schema([plan.schema.fields[i] for i in kept])
        return logical.Project(new_child, rewritten, schema), kept

    if isinstance(plan, logical.Aggregate):
        num_groups = len(plan.group_expressions)
        kept_aggs = [
            i for i in range(len(plan.aggregates))
            if (num_groups + i) in required
        ]
        specs = [plan.aggregates[i] for i in kept_aggs]
        child_required: set[int] = set()
        for expr in plan.group_expressions:
            child_required |= expr.references()
        for spec in specs:
            if spec.argument is not None:
                child_required |= spec.argument.references()
        new_child, child_kept = _prune(plan.child, child_required)
        mapping = {old: new for new, old in enumerate(child_kept)}
        groups = [
            rewrite_columns(expr, mapping) for expr in plan.group_expressions
        ]
        new_specs = [
            logical.AggregateSpec(
                spec.function,
                rewrite_columns(spec.argument, mapping)
                if spec.argument is not None
                else None,
                spec.output_name,
            )
            for spec in specs
        ]
        kept = list(range(num_groups)) + [num_groups + i for i in kept_aggs]
        schema = Schema([plan.schema.fields[i] for i in kept])
        return (
            logical.Aggregate(new_child, groups, new_specs, schema),
            kept,
        )

    if isinstance(plan, logical.Join):
        return _prune_join(plan, required)

    if isinstance(plan, logical.Sort):
        child_required = set(required)
        for expr, __ in plan.keys:
            child_required |= expr.references()
        new_child, kept = _prune(plan.child, child_required)
        mapping = {old: new for new, old in enumerate(kept)}
        keys = [
            (rewrite_columns(expr, mapping), asc) for expr, asc in plan.keys
        ]
        return logical.Sort(new_child, keys), kept

    if isinstance(plan, logical.Limit):
        new_child, kept = _prune(plan.child, required)
        return logical.Limit(new_child, plan.count), kept

    if isinstance(plan, logical.Repartition):
        child_required = set(required)
        for expr in plan.expressions:
            child_required |= expr.references()
        new_child, kept = _prune(plan.child, child_required)
        mapping = {old: new for new, old in enumerate(kept)}
        exprs = [rewrite_columns(expr, mapping) for expr in plan.expressions]
        return logical.Repartition(new_child, exprs), kept

    if isinstance(plan, logical.SemiJoinFilter):
        child_required = set(required) | plan.key.references()
        new_child, kept = _prune(plan.child, child_required)
        mapping = {old: new for new, old in enumerate(kept)}
        key = rewrite_columns(plan.key, mapping)
        new_subquery, __ = _prune(plan.subquery, None)
        return (
            logical.SemiJoinFilter(
                new_child, key, new_subquery, plan.negated
            ),
            kept,
        )

    # Distinct, UnionAll, Values and anything else: semantics depend on the
    # full row; recurse without narrowing.
    if isinstance(plan, logical.Distinct):
        new_child, kept = _prune(plan.child, None)
        return logical.Distinct(new_child), kept
    if isinstance(plan, logical.UnionAll):
        children = [_prune(child, None)[0] for child in plan.inputs]
        return logical.UnionAll(children), all_ordinals
    return plan, all_ordinals


def _prune_join(
    plan: logical.Join, required: set[int]
) -> tuple[logical.LogicalPlan, list[int]]:
    left_width = len(plan.left.schema)

    left_required = {i for i in required if i < left_width}
    right_required = {i - left_width for i in required if i >= left_width}
    for key in plan.left_keys:
        left_required |= key.references()
    for key in plan.right_keys:
        right_required |= key.references()
    if plan.residual is not None:
        for ref in plan.residual.references():
            if ref < left_width:
                left_required.add(ref)
            else:
                right_required.add(ref - left_width)

    new_left, left_kept = _prune(plan.left, left_required)
    new_right, right_kept = _prune(plan.right, right_required)
    left_mapping = {old: new for new, old in enumerate(left_kept)}
    right_mapping = {old: new for new, old in enumerate(right_kept)}

    left_keys = [rewrite_columns(key, left_mapping) for key in plan.left_keys]
    right_keys = [
        rewrite_columns(key, right_mapping) for key in plan.right_keys
    ]

    new_left_width = len(left_kept)
    combined_mapping: dict[int, int] = {}
    for old, new in left_mapping.items():
        combined_mapping[old] = new
    for old, new in right_mapping.items():
        combined_mapping[old + left_width] = new + new_left_width
    residual = (
        rewrite_columns(plan.residual, combined_mapping)
        if plan.residual is not None
        else None
    )

    kept = [i for i in left_kept] + [i + left_width for i in right_kept]
    fields: list[Field] = [plan.schema.fields[i] for i in kept]
    return (
        logical.Join(
            new_left,
            new_right,
            plan.join_type,
            left_keys,
            right_keys,
            residual,
            Schema(fields),
            plan.strategy_hint,
        ),
        kept,
    )

"""Deterministic fault injection for the execution engine.

The paper's central robustness claim (Sections 2 and 7) is that a
fine-grained-task engine tolerates mid-query failures and stragglers
without restarting queries.  This package provides the harness that
*proves* it: a seedable :class:`FaultInjector` that makes virtual workers
fail task attempts transiently or permanently, delays tasks (stragglers),
corrupts shuffle fetches, and kills a worker mid-query — all decided by
hashes of the injection site, never by wall-clock or execution order, so
two runs with the same seed inject exactly the same faults.

The injector plugs into three layers:

* :class:`~repro.engine.context.EngineContext` (``fault_injector=``) —
  the scheduler consults it per task attempt and retries, speculates,
  and blacklists accordingly;
* :class:`~repro.engine.shuffle.ShuffleManager` — corrupted fetches drop
  the map output block and surface as :class:`~repro.errors.
  FetchFailedError`, driving lineage recovery;
* :class:`~repro.costmodel.simulator.ClusterSimulator`
  (``fault_injector=``) — simulated makespans charge the same straggler
  slowdowns and retry overheads at cluster scale.

``examples/chaos_demo.py`` runs the benchmark queries under an injector
and checks the results are byte-identical to a fault-free run.
"""

from repro.faults.injector import FaultInjector

__all__ = ["FaultInjector"]

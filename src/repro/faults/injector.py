"""The seedable fault-injection harness.

Every decision is drawn from a :class:`random.Random` seeded with the
injector's seed *and* the injection site (stage id, partition, attempt,
…), so decisions are deterministic and independent of the order in which
the scheduler happens to visit tasks.  The injector never reads the wall
clock; delays are expressed as multipliers on the cost model's simulated
task seconds.

Fault kinds
-----------

``transient task failure``
    A task attempt raises :class:`~repro.errors.TransientTaskFailure`
    before doing any work; the scheduler retries it (with capped
    exponential simulated backoff) on another worker.  Only the first
    ``fail_attempts_ceiling`` attempts of a task can be failed, so a
    bounded retry policy always converges.

``flaky worker``
    Every attempt scheduled on a worker in ``flaky_workers`` fails.  The
    scheduler's blacklist machinery is what saves the query: after
    ``blacklist_threshold`` failures the worker stops receiving tasks
    for a probation period.

``worker kill``
    ``kill_worker_id`` dies permanently after ``kill_after_tasks``
    cluster-wide task completions (lost cached partitions and shuffle
    outputs recompute from lineage).

``straggler``
    ``stragglers_per_stage`` tasks per stage run ``straggler_slowdown``
    times slower than the cost model's estimate, on their first attempt
    only — a speculative copy therefore runs at normal speed and wins.

``corrupt shuffle fetch``
    A reduce-side fetch finds a map output corrupted: the block is
    dropped and the fetch raises ``FetchFailedError``, forcing lineage
    recovery of that map partition.  Fires at most once per
    (shuffle, reduce partition) site and at most ``max_corrupt_fetches``
    times overall.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional


class FaultInjector:
    """Deterministic, seedable fault decisions for one engine context.

    Instances carry once-only bookkeeping (which corruptions fired, how
    many transient failures were injected), so use a **fresh injector per
    context/run**; reusing one across runs disarms its once-only faults.
    """

    def __init__(
        self,
        seed: int = 7,
        transient_failure_rate: float = 0.0,
        max_transient_failures: Optional[int] = None,
        fail_attempts_ceiling: int = 2,
        flaky_workers: Iterable[int] = (),
        kill_worker_id: Optional[int] = None,
        kill_after_tasks: int = 5,
        stragglers_per_stage: int = 0,
        straggler_slowdown: float = 8.0,
        corrupt_fetch_rate: float = 0.0,
        max_corrupt_fetches: int = 1,
    ):
        if not 0.0 <= transient_failure_rate <= 1.0:
            raise ValueError("transient_failure_rate must be in [0, 1]")
        if not 0.0 <= corrupt_fetch_rate <= 1.0:
            raise ValueError("corrupt_fetch_rate must be in [0, 1]")
        if straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")
        if fail_attempts_ceiling < 1:
            raise ValueError("fail_attempts_ceiling must be >= 1")
        self.seed = seed
        self.transient_failure_rate = transient_failure_rate
        self.max_transient_failures = max_transient_failures
        self.fail_attempts_ceiling = fail_attempts_ceiling
        self.flaky_workers = frozenset(flaky_workers)
        self.kill_worker_id = kill_worker_id
        self.kill_after_tasks = kill_after_tasks
        self.stragglers_per_stage = stragglers_per_stage
        self.straggler_slowdown = straggler_slowdown
        self.corrupt_fetch_rate = corrupt_fetch_rate
        self.max_corrupt_fetches = max_corrupt_fetches
        # Once-only bookkeeping and injection counters (for reports).
        self.injected_transient = 0
        self.injected_flaky = 0
        self.injected_stragglers = 0
        self.injected_corruptions = 0
        self._corrupted_sites: set[tuple[int, int]] = set()
        self._straggled: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Deterministic site-keyed randomness
    # ------------------------------------------------------------------
    def _rng(self, *site) -> random.Random:
        """An RNG keyed by the injection site, independent of call order."""
        key = f"{self.seed}:" + ":".join(str(part) for part in site)
        return random.Random(key)

    # ------------------------------------------------------------------
    # Task-attempt faults (consulted by the scheduler)
    # ------------------------------------------------------------------
    def fail_task(
        self, stage_id: int, partition: int, attempt: int, worker_id: int
    ) -> Optional[str]:
        """Reason string when this task attempt should fail, else None."""
        if worker_id in self.flaky_workers:
            self.injected_flaky += 1
            return f"flaky worker {worker_id}"
        if (
            self.transient_failure_rate > 0.0
            and attempt <= self.fail_attempts_ceiling
            and (
                self.max_transient_failures is None
                or self.injected_transient < self.max_transient_failures
            )
        ):
            draw = self._rng("task", stage_id, partition, attempt).random()
            if draw < self.transient_failure_rate:
                self.injected_transient += 1
                return "injected transient failure"
        return None

    def straggler_factor(
        self, stage_id: int, partition: int, num_tasks: int, attempt: int
    ) -> float:
        """Slowdown multiplier for this attempt's simulated runtime."""
        if self.stragglers_per_stage <= 0 or attempt > 1 or num_tasks <= 1:
            return 1.0
        count = min(self.stragglers_per_stage, num_tasks)
        picks = self._rng("straggler", stage_id).sample(
            range(num_tasks), count
        )
        if partition % num_tasks in picks:
            site = (stage_id, partition)
            if site not in self._straggled:
                self._straggled.add(site)
                self.injected_stragglers += 1
            return self.straggler_slowdown
        return 1.0

    # ------------------------------------------------------------------
    # Shuffle corruption (consulted by the shuffle manager)
    # ------------------------------------------------------------------
    def corrupt_fetch(self, shuffle_id: int, reduce_partition: int) -> bool:
        """Whether this fetch should find a corrupted map output."""
        if self.corrupt_fetch_rate <= 0.0:
            return False
        if self.injected_corruptions >= self.max_corrupt_fetches:
            return False
        site = (shuffle_id, reduce_partition)
        if site in self._corrupted_sites:
            return False
        draw = self._rng("corrupt", shuffle_id, reduce_partition).random()
        if draw < self.corrupt_fetch_rate:
            self._corrupted_sites.add(site)
            self.injected_corruptions += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Cluster-simulator plug (consulted by ClusterSimulator)
    # ------------------------------------------------------------------
    def sim_task_effects(
        self, stage_name: str, task_index: int, num_tasks: int
    ) -> tuple[float, int]:
        """(slowdown factor, retry count) the simulator should charge."""
        factor = 1.0
        if self.stragglers_per_stage > 0 and num_tasks > 1:
            count = min(self.stragglers_per_stage, num_tasks)
            picks = self._rng("sim-straggler", stage_name).sample(
                range(num_tasks), count
            )
            if task_index in picks:
                factor = self.straggler_slowdown
        retries = 0
        if self.transient_failure_rate > 0.0:
            rng = self._rng("sim-task", stage_name, task_index)
            for __ in range(self.fail_attempts_ceiling):
                if rng.random() < self.transient_failure_rate:
                    retries += 1
                else:
                    break
        return factor, retries

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}): "
            f"{self.injected_transient} transient, "
            f"{self.injected_flaky} flaky-worker, "
            f"{self.injected_stragglers} straggler, "
            f"{self.injected_corruptions} corrupted-fetch faults injected"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.describe()

"""Virtual cluster: workers, block storage, and failure injection.

The engine really executes tasks in-process, but every task is *assigned* to
a virtual worker and every cached block (RDD partition, shuffle map output)
*lives* on a specific worker's block store.  Killing a worker therefore has
exactly the consequences it has on a real cluster: its cached partitions and
map outputs vanish, fetches fail, and the scheduler must recompute the lost
data from lineage.  This is the substrate for the paper's fault-tolerance
guarantees (Section 2.3) and the Figure 9 experiment.
"""

from repro.cluster.worker import BlockStore, Worker
from repro.cluster.cluster import FailureInjector, VirtualCluster

__all__ = ["BlockStore", "Worker", "FailureInjector", "VirtualCluster"]

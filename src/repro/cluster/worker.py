"""Virtual workers and their block stores."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.memory import MemoryAccountant
    from repro.obs import Tracer


def approximate_size_bytes(value: Any) -> int:
    """Best-effort in-memory size of a stored block.

    Objects that know their footprint (columnar partitions, column
    batches) expose ``memory_footprint_bytes()``; everything else is
    estimated with ``sys.getsizeof`` plus a recursive pass over
    container elements (sampled for large lists), which is accurate
    enough for spill accounting and the memory benchmarks.
    """
    footprint = getattr(value, "memory_footprint_bytes", None)
    if callable(footprint):
        return int(footprint())
    if isinstance(value, (list, tuple)):
        total = sys.getsizeof(value)
        # Sample large collections rather than walking every element.
        n = len(value)
        if n == 0:
            return total
        sample = value if n <= 256 else value[:: max(1, n // 256)]
        per_item = sum(sys.getsizeof(item) for item in sample) / len(sample)
        return int(total + per_item * n)
    if isinstance(value, dict):
        # Recurse: a dict of lists (hash-aggregate state, join build
        # tables) is dominated by its values, not the container shell.
        total = sys.getsizeof(value)
        for key, item in value.items():
            total += sys.getsizeof(key)
            if isinstance(item, (list, tuple, dict, set, frozenset)):
                total += approximate_size_bytes(item)
            else:
                total += sys.getsizeof(item)
        return total
    if isinstance(value, (set, frozenset)):
        total = sys.getsizeof(value)
        for item in value:
            total += sys.getsizeof(item)
        return total
    return sys.getsizeof(value)


def _block_owner(block_id: str) -> str:
    """Attribution label for a block id: ``rdd_3_5`` -> ``rdd_3``,
    ``shuffle_1_2`` -> ``shuffle`` (strip the partition suffix).

    RDD ids are per-context, so ``rdd_<id>`` is stable run to run and
    safe to persist in watermark records.  Shuffle ids come from a
    process-global counter, so per-shuffle labels would break the
    byte-identical-logs invariant; all map outputs pool under one
    ``shuffle`` owner instead."""
    prefix, sep, suffix = block_id.rpartition("_")
    if not sep or not suffix.isdigit():
        return block_id
    if prefix.partition("_")[0] == "shuffle":
        return "shuffle"
    return prefix


@dataclass
class StoredBlock:
    """One block held by a worker."""

    block_id: str
    value: Any
    size_bytes: int
    #: Pinned blocks (shuffle map outputs) are never evicted — losing them
    #: silently would look like spontaneous data loss; they only disappear
    #: with the worker.  Cached RDD partitions are evictable: lineage
    #: recomputes them on the next read.
    pinned: bool = False


class BlockStore:
    """Per-worker in-memory block storage with size accounting.

    With ``capacity_bytes`` set, evictable blocks are dropped
    least-recently-used-first under memory pressure (Spark's storage
    behaviour: caching is best-effort; lineage makes eviction safe).
    """

    def __init__(
        self,
        capacity_bytes: int | None = None,
        tracer: Optional["Tracer"] = None,
        accountant: Optional["MemoryAccountant"] = None,
        worker_id: int = 0,
    ) -> None:
        self._blocks: dict[str, StoredBlock] = {}
        self.capacity_bytes = capacity_bytes
        #: Number of blocks dropped under memory pressure.
        self.evictions = 0
        #: Optional observability hook (shared with the owning cluster).
        self.tracer = tracer
        #: Storage-pool ledger; every byte held here is charged to it.
        self.accountant = accountant
        self.worker_id = worker_id
        if accountant is not None:
            accountant.attach_victim_source(
                worker_id, self.victim_candidates
            )
            accountant.attach_evictor(worker_id, self.evict_up_to)

    def put(
        self,
        block_id: str,
        value: Any,
        size_bytes: int | None = None,
        pinned: bool = False,
    ) -> None:
        size = approximate_size_bytes(value) if size_bytes is None else size_bytes
        replaced = self._blocks.pop(block_id, None)
        if replaced is not None:
            self._account_release(replaced)
        # Reserve before inserting: the reservation may arbitrate (evict
        # through evict_up_to), and the incoming block must not be an
        # eviction candidate before its own bytes are charged — evicting
        # it uncharged would release bytes never reserved (a clamp).
        if self.accountant is not None:
            self.accountant.reserve(
                self.worker_id, "storage", _block_owner(block_id), size
            )
        self._blocks[block_id] = StoredBlock(block_id, value, size, pinned)
        if self.tracer is not None:
            self.tracer.metrics.inc("blocks.put")
            self.tracer.metrics.inc("blocks.put.bytes", size)
        self._enforce_capacity()

    def _account_release(self, block: StoredBlock) -> None:
        if self.accountant is not None:
            self.accountant.release(
                self.worker_id,
                "storage",
                _block_owner(block.block_id),
                block.size_bytes,
            )

    def _evict_block(self, block_id: str) -> int:
        """Drop one unpinned block, releasing its accounting; returns
        the bytes freed."""
        block = self._blocks.pop(block_id)
        self._account_release(block)
        self.evictions += 1
        if self.tracer is not None:
            self.tracer.metrics.inc("blocks.evicted")
            self.tracer.metrics.inc(
                "blocks.evicted.bytes", block.size_bytes
            )
            self.tracer.instant(
                "block.evict", "cache",
                block_id=block_id, bytes=block.size_bytes,
            )
        return block.size_bytes

    def _lru_victim(self) -> str | None:
        return next(
            (
                block_id
                for block_id, block in self._blocks.items()
                if not block.pinned
            ),
            None,
        )

    def evict_up_to(self, nbytes: int) -> int:
        """Evict unpinned blocks LRU-first until ``nbytes`` are freed or
        only pinned blocks remain; returns the bytes freed.

        This is the accountant's arbitration entry point (eviction
        before spill): cached partitions are the cheapest memory to
        reclaim because lineage recomputes them on the next read.  It
        lives here — not in the accountant — because a CI guard forbids
        touching ``_blocks`` outside this module.
        """
        freed = 0
        while freed < nbytes:
            victim = self._lru_victim()
            if victim is None:
                break
            freed += self._evict_block(victim)
        return freed

    def _enforce_capacity(self) -> None:
        if self.capacity_bytes is None:
            return
        while self.used_bytes > self.capacity_bytes:
            victim = self._lru_victim()
            if victim is None:
                return  # only pinned blocks remain; nothing to evict
            self._evict_block(victim)

    def get(self, block_id: str) -> Any:
        block = self._blocks.pop(block_id)  # re-insert: LRU refresh
        self._blocks[block_id] = block
        return block.value

    def __contains__(self, block_id: str) -> bool:
        return block_id in self._blocks

    def remove(self, block_id: str) -> None:
        removed = self._blocks.pop(block_id, None)
        if removed is not None:
            self._account_release(removed)

    def clear(self) -> None:
        for block in self._blocks.values():
            self._account_release(block)
        self._blocks.clear()

    def block_ids(self) -> Iterator[str]:
        return iter(list(self._blocks))

    def size_of(self, block_id: str, default: int = 0) -> int:
        """Accounted size of one block (public accessor: nothing outside
        this class reads or mutates the per-block byte fields)."""
        block = self._blocks.get(block_id)
        return block.size_bytes if block is not None else default

    def victim_candidates(self) -> list[tuple[str, int]]:
        """Evictable blocks in insertion (LRU) order — the would-be
        victim list a ``memory.pressure`` event reports.  Pinned blocks
        (shuffle map outputs) are never candidates."""
        return [
            (block_id, block.size_bytes)
            for block_id, block in self._blocks.items()
            if not block.pinned
        ]

    def pinned_ids(self) -> set[str]:
        """Ids of pinned (shuffle map output) blocks held here."""
        return {
            block_id
            for block_id, block in self._blocks.items()
            if block.pinned
        }

    @property
    def used_bytes(self) -> int:
        return sum(block.size_bytes for block in self._blocks.values())

    def __len__(self) -> int:
        return len(self._blocks)


@dataclass
class Worker:
    """A virtual worker node.

    Tasks assigned to a dead worker fail; blocks on a dead worker are gone.
    Restarting a worker brings back its slots but not its blocks, exactly
    like replacing a failed machine.
    """

    worker_id: int
    cores: int = 8
    alive: bool = True
    blocks: BlockStore = field(default_factory=BlockStore)
    #: Number of tasks this worker has executed (for failure triggers and
    #: load-balance assertions in tests).
    tasks_run: int = 0

    def kill(self) -> None:
        self.alive = False
        self.blocks.clear()

    def restart(self) -> None:
        self.alive = True
        self.blocks = BlockStore(
            capacity_bytes=self.blocks.capacity_bytes,
            tracer=self.blocks.tracer,
            accountant=self.blocks.accountant,
            worker_id=self.blocks.worker_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "alive" if self.alive else "dead"
        return (
            f"Worker({self.worker_id}, {status}, blocks={len(self.blocks)}, "
            f"tasks_run={self.tasks_run})"
        )

"""The virtual cluster: worker membership, placement, failure injection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.cluster.worker import BlockStore, Worker
from repro.errors import NoLiveWorkersError
from repro.obs import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.memory import MemoryAccountant


@dataclass
class FailureInjector:
    """Kills a specific worker after a given number of completed tasks.

    Registered on a :class:`VirtualCluster`; the cluster consults it after
    every task completion, which is how the Figure 9 experiment kills a node
    mid-query.  ``repeat=False`` injectors fire once and disarm.
    """

    worker_id: int
    after_tasks: int
    fired: bool = False

    def should_fire(self, total_tasks_completed: int) -> bool:
        return not self.fired and total_tasks_completed >= self.after_tasks


class VirtualCluster:
    """A set of virtual workers plus placement and failure machinery.

    The cluster knows nothing about RDDs: it stores opaque blocks on workers
    and assigns tasks to live workers.  The engine's scheduler layers
    lineage and recovery on top.
    """

    def __init__(
        self,
        num_workers: int = 4,
        cores_per_worker: int = 8,
        memory_per_worker_bytes: int | None = None,
        tracer: Tracer | None = None,
        accountant: "MemoryAccountant | None" = None,
    ):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.memory_per_worker_bytes = memory_per_worker_bytes
        #: Shared with the owning EngineContext; a private disabled
        #: tracer when the cluster is constructed standalone (tests).
        self.tracer = tracer if tracer is not None else Tracer()
        #: Unified memory ledger; a private one when standalone so block
        #: stores always account their bytes somewhere.
        if accountant is None:
            # Imported lazily: repro.engine.context imports this module.
            from repro.engine.memory import MemoryAccountant

            accountant = MemoryAccountant(
                tracer=self.tracer, capacity_bytes=memory_per_worker_bytes
            )
        self.accountant = accountant
        self.workers = [
            Worker(
                worker_id=i,
                cores=cores_per_worker,
                blocks=BlockStore(
                    capacity_bytes=memory_per_worker_bytes,
                    tracer=self.tracer,
                    accountant=self.accountant,
                    worker_id=i,
                ),
            )
            for i in range(num_workers)
        ]
        self._next_assignment = 0
        self.total_tasks_completed = 0
        self._failure_injectors: list[FailureInjector] = []
        self._on_worker_killed: list[Callable[[int], None]] = []
        #: worker_id -> total_tasks_completed count at which the worker's
        #: probation ends and it becomes schedulable again.
        self._blacklist: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def live_workers(self) -> list[Worker]:
        return [worker for worker in self.workers if worker.alive]

    def worker(self, worker_id: int) -> Worker:
        return self.workers[worker_id]

    def add_worker(self, cores: int = 8) -> Worker:
        """Elasticity: a new node joins and becomes schedulable immediately."""
        worker_id = len(self.workers)
        worker = Worker(
            worker_id=worker_id,
            cores=cores,
            blocks=BlockStore(
                capacity_bytes=self.memory_per_worker_bytes,
                tracer=self.tracer,
                accountant=self.accountant,
                worker_id=worker_id,
            ),
        )
        self.workers.append(worker)
        self.tracer.metrics.inc("workers.added")
        self.tracer.instant(
            "worker.added", "cluster", lane=worker.worker_id, cores=cores
        )
        return worker

    def kill_worker(self, worker_id: int) -> None:
        """Kill a worker, dropping all of its blocks."""
        worker = self.workers[worker_id]
        if not worker.alive:
            return
        lost_blocks = len(worker.blocks)
        worker.kill()
        self.tracer.metrics.inc("workers.killed")
        self.tracer.instant(
            "worker.kill",
            "cluster",
            lane=worker_id,
            worker_id=worker_id,
            lost_blocks=lost_blocks,
            tasks_run=worker.tasks_run,
        )
        for callback in self._on_worker_killed:
            callback(worker_id)
        if not self.live_workers():
            raise NoLiveWorkersError(
                f"killed worker {worker_id}; no live workers remain"
            )

    def restart_worker(self, worker_id: int) -> None:
        self.workers[worker_id].restart()
        self.tracer.metrics.inc("workers.restarted")
        self.tracer.instant(
            "worker.restart", "cluster", lane=worker_id, worker_id=worker_id
        )

    def on_worker_killed(self, callback: Callable[[int], None]) -> None:
        """Register a callback invoked with the worker id on every kill."""
        self._on_worker_killed.append(callback)

    # ------------------------------------------------------------------
    # Blacklisting with probation
    # ------------------------------------------------------------------
    def blacklist_worker(self, worker_id: int, probation_tasks: int) -> None:
        """Stop scheduling on a worker until ``probation_tasks`` more tasks
        complete cluster-wide, after which it is eligible again."""
        self._blacklist[worker_id] = (
            self.total_tasks_completed + probation_tasks
        )
        self.tracer.metrics.inc("workers.blacklisted")
        self.tracer.instant(
            "worker.blacklisted",
            "cluster",
            lane=worker_id,
            worker_id=worker_id,
            probation_tasks=probation_tasks,
        )

    def is_blacklisted(self, worker_id: int) -> bool:
        expiry = self._blacklist.get(worker_id)
        if expiry is None:
            return False
        if self.total_tasks_completed >= expiry:
            # Probation served: the worker rejoins the schedulable pool.
            del self._blacklist[worker_id]
            self.tracer.instant(
                "worker.probation",
                "cluster",
                lane=worker_id,
                worker_id=worker_id,
            )
            return False
        return True

    def blacklisted_workers(self) -> list[int]:
        return [wid for wid in list(self._blacklist) if self.is_blacklisted(wid)]

    # ------------------------------------------------------------------
    # Task placement
    # ------------------------------------------------------------------
    def assign_worker(
        self, preferred: Iterable[int] = (), exclude: Iterable[int] = ()
    ) -> Worker:
        """Pick a worker for a task, honoring locality preferences.

        Preferred workers (those already holding the task's input blocks)
        win if alive and not excluded/blacklisted; otherwise round-robin
        over the eligible live workers, mirroring delay-scheduling's
        behaviour once locality is unobtainable.  ``exclude`` lists workers
        a retry or speculative copy must avoid.  Blacklisted and excluded
        workers are only used when no other live worker exists (progress
        beats probation).
        """
        excluded = set(exclude)
        for worker_id in preferred:
            if 0 <= worker_id < len(self.workers):
                candidate = self.workers[worker_id]
                if (
                    candidate.alive
                    and worker_id not in excluded
                    and not self.is_blacklisted(worker_id)
                ):
                    return candidate
        live = self.live_workers()
        if not live:
            raise NoLiveWorkersError("no live workers to assign a task to")
        pool = [
            worker
            for worker in live
            if worker.worker_id not in excluded
            and not self.is_blacklisted(worker.worker_id)
        ]
        if not pool:
            # Everything eligible is excluded or on probation; schedule
            # anyway rather than deadlock.
            pool = live
            self.tracer.metrics.inc("blacklist.overridden")
        worker = pool[self._next_assignment % len(pool)]
        self._next_assignment += 1
        return worker

    def task_completed(self, worker: Worker) -> None:
        """Record a completed task and fire any due failure injectors."""
        worker.tasks_run += 1
        self.total_tasks_completed += 1
        for injector in self._failure_injectors:
            if injector.should_fire(self.total_tasks_completed):
                injector.fired = True
                self.kill_worker(injector.worker_id)

    def inject_failure(self, worker_id: int, after_tasks: int) -> FailureInjector:
        """Arrange for ``worker_id`` to die after ``after_tasks`` completions."""
        injector = FailureInjector(worker_id=worker_id, after_tasks=after_tasks)
        self._failure_injectors.append(injector)
        return injector

    # ------------------------------------------------------------------
    # Block placement helpers
    # ------------------------------------------------------------------
    def put_block(
        self,
        worker_id: int,
        block_id: str,
        value: Any,
        size_bytes: int | None = None,
    ) -> None:
        self.workers[worker_id].blocks.put(block_id, value, size_bytes)

    def pinned_block_ids(self) -> set[str]:
        """Pinned (shuffle map output) block ids across live workers.

        Cross-checked against ``ShuffleManager.registered_block_ids`` by
        lifecycle tests: every pinned block must belong to a registered
        shuffle — a cancelled query may not leak pinned storage.
        """
        ids: set[str] = set()
        for worker in self.live_workers():
            ids |= worker.blocks.pinned_ids()
        return ids

    def find_block(self, block_id: str) -> tuple[int, Any] | None:
        """Locate a block on any live worker; returns (worker_id, value)."""
        for worker in self.workers:
            if worker.alive and block_id in worker.blocks:
                return worker.worker_id, worker.blocks.get(block_id)
        return None

    @property
    def total_cached_bytes(self) -> int:
        return sum(worker.blocks.used_bytes for worker in self.live_workers())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        live = len(self.live_workers())
        return f"VirtualCluster({live}/{len(self.workers)} workers live)"

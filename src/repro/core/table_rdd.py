"""TableRDD: the RDD a SQL query returns (paper Section 4.1).

``sql2rdd`` gives callers "the RDD representing the query plan"; this
wrapper carries the result schema so downstream code can extract features
by column name (``mapRows``) and keeps the full RDD algebra available via
delegation — the whole pipeline stays one lineage graph.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.row import Row
from repro.datatypes import Schema
from repro.engine.rdd import RDD


class TableRDD:
    """An RDD of row tuples plus the schema describing them."""

    def __init__(self, rdd: RDD, schema: Schema):
        self.rdd = rdd
        self.schema = schema

    # ------------------------------------------------------------------
    # Row-oriented operations (the paper's API)
    # ------------------------------------------------------------------
    def map_rows(self, fn: Callable[[Row], Any]) -> RDD:
        """Apply ``fn`` to each row as a schema-aware :class:`Row`.

        Returns a plain engine RDD: the natural next step is feature
        extraction into vectors for the ML library (Listing 1).
        """
        schema = self.schema
        return self.rdd.map(lambda values: fn(Row(values, schema)))

    mapRows = map_rows

    def filter_rows(self, predicate: Callable[[Row], bool]) -> "TableRDD":
        schema = self.schema
        filtered = self.rdd.filter(
            lambda values: predicate(Row(values, schema))
        )
        return TableRDD(filtered, schema)

    def select(self, *names: str) -> "TableRDD":
        indices = [self.schema.index_of(name) for name in names]
        projected = self.rdd.map(
            lambda values, idx=tuple(indices): tuple(values[i] for i in idx)
        )
        return TableRDD(projected, self.schema.select(list(names)))

    def column(self, name: str) -> RDD:
        index = self.schema.index_of(name)
        return self.rdd.map(lambda values: values[index])

    # ------------------------------------------------------------------
    # Delegation to the underlying RDD
    # ------------------------------------------------------------------
    def cache(self) -> "TableRDD":
        self.rdd.cache()
        return self

    def collect(self) -> list[tuple]:
        return self.rdd.collect()

    def collect_rows(self) -> list[Row]:
        return [Row(values, self.schema) for values in self.rdd.collect()]

    def count(self) -> int:
        return self.rdd.count()

    def take(self, n: int) -> list[tuple]:
        return self.rdd.take(n)

    @property
    def num_partitions(self) -> int:
        return self.rdd.num_partitions

    @property
    def column_names(self) -> list[str]:
        return self.schema.names

    def __repr__(self) -> str:
        return f"TableRDD({self.schema!r}, partitions={self.num_partitions})"

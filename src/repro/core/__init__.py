"""Shark's public API: :class:`SharkContext`, :class:`TableRDD`,
:class:`Row`.

This is the paper's Section 4 surface: SQL queries that *return RDDs*
(``sql2rdd``), row objects with typed accessors for feature extraction
(``row.get_int("age")``), and distributed ML functions that run in the
same engine over the same cached data, with one lineage graph covering the
whole SQL-to-ML pipeline.
"""

from repro.core.row import Row
from repro.core.table_rdd import TableRDD
from repro.core.context import SharkContext

__all__ = ["Row", "TableRDD", "SharkContext"]

"""SharkContext: the single entry point for SQL + analytics.

Combines the execution engine, the distributed store, the SQL session, and
the ML integration hooks — the "single system capable of efficient SQL
query processing and sophisticated machine learning" of the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.core.table_rdd import TableRDD
from repro.datatypes import DataType, STRING, Schema
from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.sql.catalog import TableEntry
from repro.sql.planner import ExecutionReport, PlannerConfig
from repro.sql.session import QueryResult, SqlSession
from repro.storage import DistributedFileStore


class SharkContext:
    """Run SQL, get results or RDDs, and mix in distributed ML.

    Example (the paper's Listing 1 pipeline)::

        shark = SharkContext(num_workers=4)
        ...  # create and load 'user' and 'comment' tables
        users = shark.sql2rdd(
            "SELECT * FROM user u JOIN comment c ON c.uid = u.uid")
        features = users.map_rows(lambda row: extract(row)).cache()
        model = LogisticRegression(iterations=10).fit(features)
    """

    def __init__(
        self,
        num_workers: int = 4,
        cores_per_worker: int = 2,
        default_parallelism: Optional[int] = None,
        config: Optional[PlannerConfig] = None,
        store: Optional[DistributedFileStore] = None,
        enable_master_recovery: bool = False,
        fault_injector=None,
        scheduler_config=None,
        memory_per_worker_bytes: Optional[int] = None,
    ):
        self.engine = EngineContext(
            num_workers=num_workers,
            cores_per_worker=cores_per_worker,
            default_parallelism=default_parallelism,
            memory_per_worker_bytes=memory_per_worker_bytes,
            fault_injector=fault_injector,
            scheduler_config=scheduler_config,
        )
        self.store = store if store is not None else DistributedFileStore()
        self.session = SqlSession(
            self.engine,
            self.store,
            config=config,
            enable_master_recovery=enable_master_recovery,
        )

    @classmethod
    def recover(
        cls,
        store: DistributedFileStore,
        num_workers: int = 4,
        cores_per_worker: int = 2,
        config: Optional[PlannerConfig] = None,
    ) -> "SharkContext":
        """Rebuild a master from the journal in ``store`` (footnote 4).

        The journal holds every catalog-mutating operation; replaying it
        on a fresh master restores the catalog, external table data, and
        cached tables (recomputed, identical rows).  Registered UDFs are
        code, not state — re-register them after recovery.
        """
        from repro.sql.journal import MasterJournal

        shark = cls(
            num_workers=num_workers,
            cores_per_worker=cores_per_worker,
            config=config,
            store=store,
            enable_master_recovery=True,
        )
        MasterJournal(store).replay(shark.session)
        return shark

    # ------------------------------------------------------------------
    # SQL
    # ------------------------------------------------------------------
    def sql(self, text: str) -> QueryResult:
        """Execute a statement and return its result rows."""
        return self.session.execute(text)

    def sql2rdd(self, text: str) -> TableRDD:
        """Compile a SELECT and return the RDD representing its plan
        (Section 4.1) — nothing executes until an action runs."""
        from repro.sql.parser import parse
        from repro.sql import ast

        statement = parse(text)
        if not isinstance(statement, ast.SelectStatement):
            raise ValueError("sql2rdd requires a SELECT statement")
        planned = self.session.plan_select(statement)
        return TableRDD(planned.rdd, planned.schema)

    def explain(self, text: str) -> str:
        """The optimized logical plan for a statement, as text."""
        result = self.session.execute(f"EXPLAIN {text}")
        return result.plan_text or ""

    def explain_analyze(self, text: str, log=None) -> str:
        """Run a statement and return the plan annotated with per-stage
        runtime statistics (task counts, rows, bytes, simulated seconds).

        ``log``: optional event-log path — the query's full record set
        (plan, timeline, profile, counters) is appended there.  With an
        event log already enabled on the engine, this query streams to
        it regardless.
        """
        transient = log is not None and self.engine.event_log is None
        if transient:
            self.engine.enable_event_log(log)
        try:
            result = self.session.execute(f"EXPLAIN ANALYZE {text}")
        finally:
            if transient:
                self.engine.close_event_log()
        return result.plan_text or ""

    @property
    def last_report(self) -> Optional[ExecutionReport]:
        """Run-time optimizer decisions of the most recent query."""
        return self.session.last_report

    # ------------------------------------------------------------------
    # Query lifecycle (admission, deadlines, cancellation, fairness)
    # ------------------------------------------------------------------
    def enable_lifecycle(self, config=None):
        """Attach a query lifecycle manager to the engine; returns it.

        See :mod:`repro.engine.lifecycle` for the semantics (admission
        control, deadlines, cooperative cancellation, fairness, circuit
        breaking).
        """
        return self.engine.enable_lifecycle(config=config)

    @property
    def lifecycle(self):
        """The lifecycle manager, or None until enable_lifecycle()."""
        return self.engine.lifecycle

    def submit_sql(
        self,
        text: str,
        name: Optional[str] = None,
        deadline_s: Optional[float] = None,
        key: Optional[str] = None,
    ):
        """Submit a SQL statement for concurrent execution; returns a
        :class:`~repro.engine.lifecycle.QueryHandle`.

        Requires :meth:`enable_lifecycle`.  The statement runs when the
        lifecycle manager is driven (``handle.result_or_raise()`` or
        ``ctx.lifecycle.drain()``), interleaved fairly with other
        submitted queries.  Raises
        :class:`~repro.errors.AdmissionRejected` at capacity.
        """
        if self.engine.lifecycle is None:
            raise RuntimeError(
                "call enable_lifecycle() before submit_sql()"
            )
        return self.engine.lifecycle.submit(
            lambda: self.session.execute(text),
            name=name,
            deadline_s=deadline_s,
            key=key if key is not None else text,
        )

    # ------------------------------------------------------------------
    # Query caching
    # ------------------------------------------------------------------
    def enable_sql_cache(self, config=None):
        """Turn on the plan/result/fragment query caching stack
        (:mod:`repro.sql.cache`); returns the active SqlCache."""
        return self.session.enable_sql_cache(config=config)

    @property
    def sql_cache(self):
        """The query cache, or None until enable_sql_cache()."""
        return self.session.sql_cache

    # ------------------------------------------------------------------
    # Catalog and loading
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: Schema,
        cached: bool = False,
        properties: Optional[dict[str, str]] = None,
    ) -> None:
        """Programmatic CREATE TABLE.

        Registers the catalog entry directly (not via DDL text), so it
        supports complex column types (ARRAY/MAP/STRUCT) that the SQL
        grammar does not spell.
        """
        from repro.sql.catalog import CACHED, EXTERNAL

        props = dict(properties or {})
        if cached:
            props["shark.cache"] = "true"
        entry = TableEntry(
            name=name,
            schema=schema,
            kind=CACHED if cached else EXTERNAL,
            path=None if cached else f"/warehouse/{name.lower()}",
            properties=props,
            row_count=0,
            size_bytes=0,
        )
        if not cached:
            self.store.write_file(entry.path, [], format="text")
        self.session.catalog.create(entry)

    def load_rows(
        self,
        table: str,
        rows: Iterable[tuple],
        num_partitions: Optional[int] = None,
    ) -> int:
        """Distributed load into a table's store (Section 3.3)."""
        return self.session.load_rows(table, rows, num_partitions)

    def table(self, name: str) -> TableRDD:
        """A TableRDD scanning one catalog table."""
        return self.sql2rdd(f"SELECT * FROM {name}")

    def table_entry(self, name: str) -> TableEntry:
        return self.session.catalog.get(name)

    def drop_table(self, name: str, if_exists: bool = True) -> None:
        suffix = "IF EXISTS " if if_exists else ""
        self.sql(f"DROP TABLE {suffix}{name}")

    def register_udf(
        self,
        name: str,
        fn: Callable[..., Any],
        return_type: DataType = STRING,
    ) -> None:
        """Make a Python function callable from SQL (Hive-style UDF)."""
        self.session.registry.register(name, fn, return_type)

    # ------------------------------------------------------------------
    # Engine passthroughs
    # ------------------------------------------------------------------
    def parallelize(
        self, data: Iterable[Any], num_partitions: Optional[int] = None
    ) -> RDD:
        return self.engine.parallelize(data, num_partitions)

    def broadcast(self, value: Any):
        return self.engine.broadcast(value)

    def kill_worker(self, worker_id: int) -> None:
        """Fault-injection hook for recovery experiments (Section 6.3.3)."""
        self.engine.kill_worker(worker_id)

    def inject_failure(self, worker_id: int, after_tasks: int):
        return self.engine.inject_failure(worker_id, after_tasks)

    @property
    def num_workers(self) -> int:
        return self.engine.cluster.num_workers

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        return self.engine.tracer

    @property
    def metrics(self):
        """The engine's always-on metrics registry."""
        return self.engine.metrics

    @property
    def trace(self):
        """Spans and events recorded since tracing was enabled."""
        return self.engine.trace

    def enable_tracing(self, reset: bool = True):
        return self.engine.enable_tracing(reset=reset)

    def disable_tracing(self) -> None:
        self.engine.disable_tracing()

    def enable_event_log(self, path, **header_extra):
        """Stream every query's records to a persistent event log at
        ``path`` (see :mod:`repro.obs.events`); returns the writer."""
        return self.engine.enable_event_log(path, **header_extra)

    def close_event_log(self) -> None:
        self.engine.close_event_log()

    def __repr__(self) -> str:
        return (
            f"SharkContext(workers={self.num_workers}, "
            f"tables={self.session.catalog.table_names()})"
        )

"""Row: a schema-aware view over one result tuple.

Mirrors the accessors in the paper's Listing 1 (``row.getInt("age")``,
``row.getStr("country")``), spelled in Python style with camelCase aliases
for paper fidelity.
"""

from __future__ import annotations

from typing import Any

from repro.datatypes import Schema


class Row:
    """One tuple plus its schema; supports name and index access."""

    __slots__ = ("values", "schema")

    def __init__(self, values: tuple, schema: Schema):
        self.values = values
        self.schema = schema

    # -- generic access -----------------------------------------------------
    def get(self, name: str) -> Any:
        return self.values[self.schema.index_of(name)]

    def __getitem__(self, key) -> Any:
        if isinstance(key, int):
            return self.values[key]
        return self.get(key)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    # -- typed accessors (paper Listing 1) ----------------------------------
    def get_int(self, name: str) -> int:
        value = self.get(name)
        return int(value) if value is not None else None

    def get_long(self, name: str) -> int:
        return self.get_int(name)

    def get_double(self, name: str) -> float:
        value = self.get(name)
        return float(value) if value is not None else None

    def get_str(self, name: str) -> str:
        value = self.get(name)
        return str(value) if value is not None else None

    def get_bool(self, name: str) -> bool:
        value = self.get(name)
        return bool(value) if value is not None else None

    # CamelCase aliases matching the paper's Scala API.
    getInt = get_int
    getLong = get_long
    getDouble = get_double
    getStr = get_str
    getBool = get_bool

    def as_dict(self) -> dict[str, Any]:
        return dict(zip(self.schema.names, self.values))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value!r}"
            for name, value in zip(self.schema.names, self.values)
        )
        return f"Row({inner})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self.values == other.values
        if isinstance(other, tuple):
            return self.values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.values)

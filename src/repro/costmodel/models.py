"""Per-task cost vectors and the task-duration model.

A :class:`TaskCostVector` summarizes what one task did: how many records and
bytes it consumed, produced, shuffled, and where its input lived.  The
engine's scheduler fills these in during real execution; benchmark harnesses
scale them up to cluster-scale volumes with :func:`scale_metrics` and feed
them to :class:`~repro.costmodel.simulator.ClusterSimulator`.

:func:`estimate_task_seconds` is the heart of the model: it converts one
vector into seconds under a given engine and hardware profile, charging for

* input scan (DRAM columnar scan, or disk read + row deserialization),
* per-record CPU (expression evaluation; Hive interprets per row),
* map-side sort for sort-based shuffles (Hadoop),
* shuffle writes (memory vs local disk) and shuffle fetches (network),
* replicated materialization of stage output (Hadoop multi-job queries).

Only ratios between engines matter for reproducing the paper's shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.costmodel.constants import (
    MB,
    EngineProfile,
    HardwareProfile,
)

#: Cost (microseconds) per record-comparison in a map-side merge sort.
_SORT_US_PER_COMPARISON = 0.05

#: Input data sources a task can read from.
SOURCE_MEMORY = "memory"
SOURCE_DISK = "disk"
SOURCE_SHUFFLE = "shuffle"
SOURCE_GENERATED = "generated"

_VALID_SOURCES = (SOURCE_MEMORY, SOURCE_DISK, SOURCE_SHUFFLE, SOURCE_GENERATED)


@dataclass
class TaskCostVector:
    """What one task consumed and produced, in records and bytes."""

    records_in: float = 0.0
    bytes_in: float = 0.0
    records_out: float = 0.0
    bytes_out: float = 0.0
    #: Bytes written to the shuffle system (map-side tasks).
    shuffle_write_bytes: float = 0.0
    #: Bytes fetched from the shuffle system (reduce-side tasks).
    shuffle_read_bytes: float = 0.0
    #: Spilled-run bytes written to local disk under memory pressure
    #: (external hash aggregation / external sort), and read back at
    #: merge time.  Zero when the task never spilled — the common,
    #: cost-free case.
    spill_write_bytes: float = 0.0
    spill_read_bytes: float = 0.0
    #: Where the primary input lived: memory, disk, shuffle or generated.
    source: str = SOURCE_MEMORY
    #: True when the task's output is written to a replicated file system
    #: (intermediate output of one MapReduce job in a multi-job query).
    materialized_output: bool = False
    #: Extra CPU seconds charged verbatim (e.g. ML gradient math measured
    #: in flops and converted by the workload harness).
    extra_cpu_s: float = 0.0
    #: Fraction of ``records_in`` processed by vectorized batch kernels;
    #: those records pay ``vectorized_cpu_discount`` of the per-record CPU
    #: rate (amortized dispatch, no per-tuple interpretation).
    vectorized_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.source not in _VALID_SOURCES:
            raise ValueError(
                f"invalid task source {self.source!r}; expected one of "
                f"{_VALID_SOURCES}"
            )

    def scaled(self, factor: float) -> "TaskCostVector":
        """Return a copy with all volumes multiplied by ``factor``."""
        return replace(
            self,
            records_in=self.records_in * factor,
            bytes_in=self.bytes_in * factor,
            records_out=self.records_out * factor,
            bytes_out=self.bytes_out * factor,
            shuffle_write_bytes=self.shuffle_write_bytes * factor,
            shuffle_read_bytes=self.shuffle_read_bytes * factor,
            spill_write_bytes=self.spill_write_bytes * factor,
            spill_read_bytes=self.spill_read_bytes * factor,
            extra_cpu_s=self.extra_cpu_s * factor,
        )


def scale_metrics(
    vectors: list[TaskCostVector], factor: float
) -> list[TaskCostVector]:
    """Scale every vector's volumes by ``factor`` (local size -> cluster size)."""
    return [vector.scaled(factor) for vector in vectors]


def _input_seconds(
    vector: TaskCostVector, engine: EngineProfile, hardware: HardwareProfile
) -> float:
    """Seconds to read and decode the task's primary input."""
    if vector.bytes_in <= 0:
        return 0.0
    megabytes = vector.bytes_in / MB
    if vector.source == SOURCE_GENERATED:
        return 0.0
    if vector.source == SOURCE_MEMORY:
        if engine.columnar_scan:
            # Columnar memstore: primitive-array scan at DRAM speed.
            return megabytes / hardware.memory_scan_mb_s
        # Row objects in memory still pay per-row decoding.
        return megabytes / hardware.deserialization_mb_s
    if vector.source == SOURCE_SHUFFLE:
        # Charged separately via shuffle_read_bytes; avoid double counting.
        return 0.0
    # Disk source: the node's disk bandwidth is shared by its cores, and the
    # rows must then be deserialized.  The two phases pipeline, so the
    # slower one dominates.
    disk_mb_s_per_core = hardware.disk_read_mb_s / hardware.cores_per_node
    read_s = megabytes / disk_mb_s_per_core
    deserialize_s = megabytes / hardware.deserialization_mb_s
    return max(read_s, deserialize_s)


#: Per-record CPU multiplier for records flowing through vectorized batch
#: kernels: loop dispatch amortizes over the batch and the inner loops run
#: in native array code, an order of magnitude under tuple interpretation.
VECTORIZED_CPU_DISCOUNT = 0.1


def _cpu_seconds(vector: TaskCostVector, engine: EngineProfile) -> float:
    """Per-record operator CPU plus any extra CPU charged by the workload."""
    fraction = min(max(vector.vectorized_fraction, 0.0), 1.0)
    effective_records = vector.records_in * (
        1.0 - fraction * (1.0 - VECTORIZED_CPU_DISCOUNT)
    )
    return (
        effective_records * engine.cpu_per_record_us * 1e-6
        + vector.extra_cpu_s
    )


def _sort_seconds(vector: TaskCostVector, engine: EngineProfile) -> float:
    """Map-side sort cost for sort-based shuffles (Hadoop)."""
    if not engine.sort_based_shuffle or vector.shuffle_write_bytes <= 0:
        return 0.0
    n = max(vector.records_out, 2.0)
    comparisons = n * math.log2(n)
    return comparisons * _SORT_US_PER_COMPARISON * 1e-6


def _shuffle_write_seconds(
    vector: TaskCostVector, engine: EngineProfile, hardware: HardwareProfile
) -> float:
    if vector.shuffle_write_bytes <= 0:
        return 0.0
    megabytes = vector.shuffle_write_bytes / MB
    if engine.memory_shuffle:
        return megabytes / hardware.memory_scan_mb_s
    disk_mb_s_per_core = hardware.disk_write_mb_s / hardware.cores_per_node
    return megabytes / disk_mb_s_per_core


def _shuffle_read_seconds(
    vector: TaskCostVector, engine: EngineProfile, hardware: HardwareProfile
) -> float:
    if vector.shuffle_read_bytes <= 0:
        return 0.0
    megabytes = vector.shuffle_read_bytes / MB
    network_mb_s_per_core = hardware.network_mb_s / hardware.cores_per_node
    seconds = megabytes / network_mb_s_per_core
    # Reducer overflow: input exceeding the task's memory share forces an
    # external merge (spill + re-read at disk speed).  This is what makes
    # "too few reducers" catastrophic for Hive (Section 6.3).
    overflow_mb = megabytes - hardware.memory_per_core_mb
    if overflow_mb > 0:
        disk_mb_s_per_core = hardware.disk_write_mb_s / hardware.cores_per_node
        seconds += 2 * overflow_mb / disk_mb_s_per_core
    return seconds


def _spill_seconds(
    vector: TaskCostVector, hardware: HardwareProfile
) -> float:
    """Local-disk round trip for spilled execution state.

    External hash aggregation and external sort write sorted/serialized
    runs when arbitration asks them to shed memory, then read them back
    at merge time; both directions move at the node's disk bandwidth
    shared across its cores.  Tasks that never spill pay exactly zero.
    """
    seconds = 0.0
    if vector.spill_write_bytes > 0:
        disk_mb_s_per_core = (
            hardware.disk_write_mb_s / hardware.cores_per_node
        )
        seconds += (vector.spill_write_bytes / MB) / disk_mb_s_per_core
    if vector.spill_read_bytes > 0:
        disk_mb_s_per_core = (
            hardware.disk_read_mb_s / hardware.cores_per_node
        )
        seconds += (vector.spill_read_bytes / MB) / disk_mb_s_per_core
    return seconds


def _materialize_seconds(
    vector: TaskCostVector, engine: EngineProfile, hardware: HardwareProfile
) -> float:
    """Replicated HDFS write of intermediate output between MapReduce jobs."""
    if not (engine.materialize_between_stages and vector.materialized_output):
        return 0.0
    if vector.bytes_out <= 0:
        return 0.0
    megabytes = vector.bytes_out / MB
    disk_mb_s_per_core = hardware.disk_write_mb_s / hardware.cores_per_node
    network_mb_s_per_core = hardware.network_mb_s / hardware.cores_per_node
    local_write_s = megabytes / disk_mb_s_per_core
    # (replication - 1) remote copies cross the network.
    remote_copies = max(engine.hdfs_replication - 1, 0)
    remote_write_s = remote_copies * megabytes / network_mb_s_per_core
    return local_write_s + remote_write_s


def estimate_task_seconds(
    vector: TaskCostVector,
    engine: EngineProfile,
    hardware: HardwareProfile,
    include_launch: bool = True,
) -> float:
    """Seconds one task takes on one core, excluding queueing delays."""
    seconds = (
        _input_seconds(vector, engine, hardware)
        + _cpu_seconds(vector, engine)
        + _sort_seconds(vector, engine)
        + _shuffle_write_seconds(vector, engine, hardware)
        + _shuffle_read_seconds(vector, engine, hardware)
        + _spill_seconds(vector, hardware)
        + _materialize_seconds(vector, engine, hardware)
    )
    if include_launch:
        seconds += engine.task_launch_overhead_s
    return seconds

"""Cost model: converts executed task metrics into cluster-scale seconds.

The repro engine really executes every query on small, local data.  To
reproduce the paper's cluster-scale numbers (100 nodes, terabytes), each
executed task reports a cost vector (records and bytes in/out, shuffle
volume, data source), and this package converts those vectors into simulated
wall-clock seconds using hardware and engine constants taken from the paper
itself (Section 5, 6.1 and 7.1).

The two key entry points are:

* :class:`~repro.costmodel.constants.EngineProfile` /
  :class:`~repro.costmodel.constants.HardwareProfile` — the constants.
* :class:`~repro.costmodel.simulator.ClusterSimulator` — list-scheduling
  makespan simulation of a query's stages over virtual nodes and cores.
"""

from repro.costmodel.constants import (
    EngineProfile,
    HardwareProfile,
    DEFAULT_HARDWARE,
    SHARK_MEM,
    SHARK_DISK,
    HIVE,
    HADOOP_TEXT,
    HADOOP_BINARY,
    MPP,
)
from repro.costmodel.simulator import ClusterSimulator, StageCost, QueryCost
from repro.costmodel.models import (
    TaskCostVector,
    estimate_task_seconds,
    scale_metrics,
)

__all__ = [
    "EngineProfile",
    "HardwareProfile",
    "DEFAULT_HARDWARE",
    "SHARK_MEM",
    "SHARK_DISK",
    "HIVE",
    "HADOOP_TEXT",
    "HADOOP_BINARY",
    "MPP",
    "ClusterSimulator",
    "StageCost",
    "QueryCost",
    "TaskCostVector",
    "estimate_task_seconds",
    "scale_metrics",
]

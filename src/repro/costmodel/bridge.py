"""Bridge: executed-run metrics -> cluster-scale StageCosts.

The benchmark harness runs every query for real on small local data, then
scales the measured per-stage volumes up to the paper's dataset sizes and
asks :class:`~repro.costmodel.simulator.ClusterSimulator` for the makespan
on 100 virtual nodes.  Task counts are re-derived at cluster scale: map
stages get one task per input block (128 MB), reduce stages get the
configured reducer count (hand-tuned for Hive, PDE-chosen for Shark) —
which is exactly the knob Figure 13 sweeps.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Optional

from repro.baselines.mapreduce import JobStats
from repro.costmodel.constants import MB
from repro.costmodel.models import (
    SOURCE_DISK,
    SOURCE_GENERATED,
    SOURCE_MEMORY,
    SOURCE_SHUFFLE,
    TaskCostVector,
)
from repro.costmodel.simulator import StageCost
from repro.engine.metrics import QueryProfile, StageProfile
from repro.workloads.base import Dataset

#: HDFS block size: one map task per block at cluster scale.
BLOCK_BYTES = 128 * MB
#: Upper bound on tasks per stage in the scaled model.
MAX_TASKS = 200_000
#: Row-count floor on map-task sizing: compressed columnar bytes can make
#: a block look small while holding millions of rows.
RECORDS_PER_TASK = 1_000_000


def combined_scale(datasets: list[Dataset]) -> float:
    """One blended local->cluster scale factor for a multi-table query."""
    local = sum(dataset.local_bytes for dataset in datasets)
    represented = sum(dataset.represented_bytes for dataset in datasets)
    if local == 0:
        return 1.0
    return represented / local


def split_stage(
    name: str,
    totals: TaskCostVector,
    num_tasks: int,
) -> StageCost:
    """Divide stage-total volumes evenly across ``num_tasks`` tasks."""
    num_tasks = max(1, min(num_tasks, MAX_TASKS))
    return StageCost.uniform(name, num_tasks, totals.scaled(1.0 / num_tasks))


def _map_task_count(
    total_input_bytes: float,
    min_tasks: int = 1,
    total_records: float = 0.0,
) -> int:
    by_bytes = math.ceil(total_input_bytes / BLOCK_BYTES)
    by_records = math.ceil(total_records / RECORDS_PER_TASK)
    return max(min_tasks, by_bytes, by_records)


# ---------------------------------------------------------------------------
# Shark: QueryProfile -> stages
# ---------------------------------------------------------------------------


def _stage_totals(stage: StageProfile, scale: float) -> TaskCostVector:
    sources = Counter(task.source for task in stage.tasks)
    dominant = sources.most_common(1)[0][0] if sources else SOURCE_GENERATED
    totals = TaskCostVector(source=dominant)
    vectorized_records = 0.0
    for task in stage.tasks:
        vector = task.to_cost_vector()
        totals.records_in += vector.records_in
        totals.bytes_in += vector.bytes_in
        totals.records_out += vector.records_out
        totals.bytes_out += vector.bytes_out
        totals.shuffle_write_bytes += vector.shuffle_write_bytes
        totals.shuffle_read_bytes += vector.shuffle_read_bytes
        vectorized_records += vector.records_in * vector.vectorized_fraction
    if totals.records_in > 0:
        # Records-weighted: the fraction survives volume scaling unchanged.
        totals.vectorized_fraction = vectorized_records / totals.records_in
    return totals.scaled(scale)


def _stages_from_stage_profiles(
    stage_profiles: list[StageProfile],
    scale: float,
    reduce_tasks: Optional[int] = None,
    min_map_tasks: int = 1,
) -> list[StageCost]:
    """Scale executed stage metrics to cluster volumes.

    Map-side stages are sized by input blocks and row counts; reduce-side
    stages (those fetching shuffle data) keep their executed task count
    unless ``reduce_tasks`` overrides it — Shark's low task overhead makes
    the engine insensitive to this knob, which Figure 13 shows.

    Map-side-combined shuffles (hash aggregations) are special: each map
    task emits roughly one record per group regardless of how much data
    it read, so their shuffle volume scales with the *task-count* ratio,
    not the data ratio; the adjustment carries to the consuming reduce
    stage's fetch volume (even across jobs, when PDE pre-materialized the
    shuffle in an earlier job).
    """
    stages: list[StageCost] = []
    # Scale applied to the *current* dataflow.  A map-side-combined shuffle
    # (hash aggregation) collapses the data to ~one record per group per
    # map task, so everything downstream of it — the fetch, any sort,
    # the final projection — operates on group-sized data and inherits the
    # collapsed scale rather than the raw data scale.
    current_scale = scale
    for stage in stage_profiles:
        if stage.num_tasks == 0:
            continue  # skipped stage (shuffle outputs reused)
        totals = _stage_totals(stage, current_scale)
        if totals.shuffle_read_bytes > 0:
            num_tasks = reduce_tasks or max(
                stage.num_tasks,
                _map_task_count(totals.shuffle_read_bytes),
            )
        else:
            num_tasks = _map_task_count(
                totals.bytes_in, min_map_tasks, totals.records_in
            )
        if stage.is_shuffle_map and stage.map_side_combined:
            task_ratio = num_tasks / stage.num_tasks
            effective = min(current_scale, task_ratio)
            totals.shuffle_write_bytes *= effective / current_scale
            totals.records_out *= effective / current_scale
            current_scale = effective
        stages.append(split_stage(stage.name, totals, num_tasks))
    return stages


def stages_from_profile(
    profile: QueryProfile,
    scale: float,
    reduce_tasks: Optional[int] = None,
    min_map_tasks: int = 1,
) -> list[StageCost]:
    """Scale one Shark job profile to cluster volumes."""
    return _stages_from_stage_profiles(
        profile.stages, scale, reduce_tasks, min_map_tasks
    )


# ---------------------------------------------------------------------------
# Hive/Hadoop: JobStats -> stages
# ---------------------------------------------------------------------------


def stages_from_profiles(
    profiles: list[QueryProfile],
    scale: float,
    reduce_tasks: Optional[int] = None,
    min_map_tasks: int = 1,
) -> list[StageCost]:
    """Scale every job of a query (PDE probes, sampling, the final
    collect), in run order, as one stage sequence.

    Stages that appear in multiple profiles (a shuffle materialized by a
    PDE probe and then *skipped* by the final job) are only counted once:
    skipped stages ran zero tasks and are dropped.
    """
    flat: list[StageProfile] = []
    for profile in profiles:
        flat.extend(profile.stages)
    return _stages_from_stage_profiles(
        flat, scale, reduce_tasks, min_map_tasks
    )


def stages_from_jobs(
    jobs: list[JobStats],
    scale: float,
    reduce_tasks: Optional[int] = None,
    min_map_tasks: int = 1,
    input_source: str = SOURCE_DISK,
) -> list[StageCost]:
    """Scale a MapReduce job chain to cluster volumes.

    Each job becomes a map stage (disk input, sorted shuffle write) and,
    if it shuffled, a reduce stage (shuffle fetch, plus replicated HDFS
    materialization when the job fed another job).
    """
    stages: list[StageCost] = []
    current_scale = scale  # collapses after a combiner job (see above)
    for job in jobs:
        map_totals = TaskCostVector(
            records_in=job.input_records * current_scale,
            bytes_in=job.input_bytes * current_scale,
            records_out=job.map_output_records * current_scale,
            shuffle_write_bytes=job.shuffle_bytes * current_scale,
            source=input_source,
        )
        map_tasks = _map_task_count(
            map_totals.bytes_in, min_map_tasks, map_totals.records_in
        )
        shuffle_scale = current_scale
        if job.used_combiner and job.map_tasks > 0:
            # Combined map output scales with the task-count ratio.
            shuffle_scale = min(current_scale, map_tasks / job.map_tasks)
            map_totals.shuffle_write_bytes = (
                job.shuffle_bytes * shuffle_scale
            )
            map_totals.records_out = job.map_output_records * shuffle_scale
        if job.reduce_tasks == 0:
            # Map-only job: output may still materialize.
            map_totals.bytes_out = job.output_bytes * current_scale
            map_totals.materialized_output = job.materialized_output
            stages.append(split_stage(f"{job.name}/map", map_totals, map_tasks))
            continue
        stages.append(split_stage(f"{job.name}/map", map_totals, map_tasks))
        reduce_totals = TaskCostVector(
            records_in=job.map_output_records * shuffle_scale,
            shuffle_read_bytes=job.shuffle_bytes * shuffle_scale,
            records_out=job.output_records * shuffle_scale,
            bytes_out=job.output_bytes * shuffle_scale,
            source=SOURCE_SHUFFLE,
            materialized_output=job.materialized_output,
        )
        num_reducers = reduce_tasks or job.reduce_tasks
        stages.append(
            split_stage(f"{job.name}/reduce", reduce_totals, num_reducers)
        )
        current_scale = shuffle_scale
    return stages


__all__ = [
    "BLOCK_BYTES",
    "MAX_TASKS",
    "combined_scale",
    "split_stage",
    "stages_from_profile",
    "stages_from_profiles",
    "stages_from_jobs",
    "SOURCE_MEMORY",
    "SOURCE_DISK",
]

"""Hardware and engine constants, taken from the paper where it states them.

Sources inside the paper (Xin et al., SIGMOD 2013):

* Section 2.1: Hadoop incurs 5-10 s to launch each task; Spark launches
  tasks with ~5 ms overhead and manages 100 ms tasks comfortably.
* Section 3.2: commodity CPUs deserialize at ~200 MB/s per core; JVM object
  overhead is 12-16 bytes per object; 270 MB of TPC-H lineitem becomes
  ~971 MB as JVM objects vs 289 MB serialized.
* Section 2.2: DRAM is over 10x faster than a 10-Gigabit network.
* Section 6.1: m2.4xlarge nodes - 8 virtual cores, 68 GB memory,
  1.6 TB local storage.
* Section 7.1: Hadoop heartbeats every 3 seconds to assign tasks.

Where the paper is silent (disk throughput, DRAM scan rate) we use standard
2012-era commodity numbers and document them here; the benchmark harness
reproduces *shapes*, not absolute EC2 latencies, so these only need to be in
the right ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class HardwareProfile:
    """Per-node hardware characteristics of the simulated cluster."""

    cores_per_node: int = 8
    memory_per_node_mb: float = 68 * 1024.0
    #: Sequential local-disk read throughput per node (MB/s).
    disk_read_mb_s: float = 110.0
    #: Sequential local-disk write throughput per node (MB/s).
    disk_write_mb_s: float = 90.0
    #: Effective per-node network throughput (MB/s); ~1 GbE on m2.4xlarge.
    network_mb_s: float = 110.0
    #: DRAM scan rate per core (MB/s); "DRAM ... over 10x faster than even a
    #: 10-Gigabit network" (Section 2.2).
    memory_scan_mb_s: float = 6400.0
    #: Row deserialization rate per core (MB/s); Section 3.2.
    deserialization_mb_s: float = 200.0

    @property
    def memory_per_core_mb(self) -> float:
        return self.memory_per_node_mb / self.cores_per_node


DEFAULT_HARDWARE = HardwareProfile()


@dataclass(frozen=True)
class EngineProfile:
    """Execution-engine characteristics that the cost model charges for.

    One profile per engine the paper compares: Shark serving from its
    columnar memstore, Shark reading from HDFS, Hive/Hadoop, plain Hadoop
    MapReduce jobs over text or binary records, and the MPP-database model.
    """

    name: str
    #: Fixed cost to launch one task (seconds).
    task_launch_overhead_s: float
    #: Extra scheduling delay per wave of tasks (Hadoop's 3 s heartbeat).
    scheduling_wave_delay_s: float
    #: Whether intermediate stage output is written to a replicated file
    #: system between stages (Hadoop multi-job queries).
    materialize_between_stages: bool
    #: Whether map output is sorted before the shuffle (Hadoop) rather than
    #: hashed (Spark).
    sort_based_shuffle: bool
    #: Whether map outputs stay in memory (Shark's memory-based shuffle) or
    #: are written to local disk first.
    memory_shuffle: bool
    #: Whether scans are served from the columnar memstore (no
    #: deserialization) or must deserialize rows at deserialization_mb_s.
    columnar_scan: bool
    #: CPU cost per record for row-at-a-time operator evaluation
    #: (microseconds).  Shark's columnar operators batch per block; Hive
    #: interprets an expression tree per row (Section 5).
    cpu_per_record_us: float
    #: HDFS replication factor used when materializing between stages.
    hdfs_replication: int = 3
    #: Expected straggler slowdown applied to a small fraction of tasks;
    #: coarse model of JVM GC pauses and network hiccups (Section 7.1).
    straggler_fraction: float = 0.05
    straggler_slowdown: float = 3.0
    #: Whether the engine can recover mid-query (lineage / task re-execution)
    #: or must restart the whole query on a worker failure.
    fine_grained_recovery: bool = True


#: Shark serving data out of the columnar memory store.
SHARK_MEM = EngineProfile(
    name="shark",
    task_launch_overhead_s=0.005,
    scheduling_wave_delay_s=0.0,
    materialize_between_stages=False,
    sort_based_shuffle=False,
    memory_shuffle=True,
    columnar_scan=True,
    cpu_per_record_us=0.10,
)

#: Shark reading input from HDFS (first touch; no memstore cache).
SHARK_DISK = replace(SHARK_MEM, name="shark-disk", columnar_scan=False)

#: Hive compiling to Hadoop MapReduce jobs.
HIVE = EngineProfile(
    name="hive",
    task_launch_overhead_s=7.5,
    scheduling_wave_delay_s=3.0,
    materialize_between_stages=True,
    sort_based_shuffle=True,
    memory_shuffle=False,
    columnar_scan=False,
    cpu_per_record_us=1.0,
    fine_grained_recovery=True,
)

#: Hand-written Hadoop MapReduce over text records (ML baselines, Fig 11/12).
HADOOP_TEXT = replace(HIVE, name="hadoop-text", cpu_per_record_us=1.6)

#: Hadoop MapReduce over a compact binary format (Fig 11/12).
HADOOP_BINARY = replace(HIVE, name="hadoop-binary", cpu_per_record_us=0.8)

#: MPP analytic database model: pipelined execution, no per-task launch
#: overhead, but coarse-grained recovery (query restart on failure) and a
#: single-coordinator final aggregation step (Section 6.2.2).
MPP = EngineProfile(
    name="mpp",
    task_launch_overhead_s=0.0,
    scheduling_wave_delay_s=0.0,
    materialize_between_stages=False,
    sort_based_shuffle=False,
    memory_shuffle=True,
    columnar_scan=True,
    cpu_per_record_us=0.05,
    fine_grained_recovery=False,
)

PROFILES = {
    profile.name: profile
    for profile in (SHARK_MEM, SHARK_DISK, HIVE, HADOOP_TEXT, HADOOP_BINARY, MPP)
}


def profile_by_name(name: str) -> EngineProfile:
    """Look up a built-in engine profile by its name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown engine profile {name!r}; known: {sorted(PROFILES)}"
        ) from None

"""Discrete-event makespan simulation of a query over a virtual cluster.

A query is a sequence of stages; a stage is a bag of independent tasks.
Tasks within a stage are list-scheduled greedily onto ``nodes x cores``
slots, which is exactly what both Hadoop's and Spark's schedulers do for a
single stage once locality is satisfied.  Stages run back-to-back (a shuffle
is a barrier).

The simulator adds the engine-level effects the paper highlights:

* per-task launch overhead (5 ms for Spark vs 5-10 s for Hadoop),
* heartbeat-quantized task assignment (Hadoop assigns work every 3 s),
* deterministic straggler injection (a seeded fraction of tasks run slower,
  modelling GC pauses and network hiccups),
* optional speculative execution: a straggling task's remaining work is
  capped by relaunching a backup copy once a full wave has finished.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.costmodel.constants import (
    DEFAULT_HARDWARE,
    EngineProfile,
    HardwareProfile,
    SHARK_MEM,
)
from repro.costmodel.models import TaskCostVector, estimate_task_seconds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Tracer


@dataclass
class StageCost:
    """One stage of a query: a name and one cost vector per task."""

    name: str
    tasks: list[TaskCostVector]

    @classmethod
    def uniform(
        cls,
        name: str,
        num_tasks: int,
        vector: TaskCostVector,
    ) -> "StageCost":
        """A stage of ``num_tasks`` identical tasks.

        ``vector`` describes the *total* stage volume divided evenly: pass
        the per-task vector directly (use :meth:`TaskCostVector.scaled` with
        ``1 / num_tasks`` to split a stage total).
        """
        if num_tasks <= 0:
            raise ValueError(f"stage {name!r} needs at least one task")
        return cls(name=name, tasks=[vector] * num_tasks)


@dataclass
class StageResult:
    """Simulated timing of one stage."""

    name: str
    num_tasks: int
    seconds: float
    mean_task_seconds: float
    max_task_seconds: float


@dataclass
class QueryCost:
    """Simulated timing of a whole query."""

    engine: str
    total_seconds: float
    stages: list[StageResult] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"engine={self.engine} total={self.total_seconds:.2f}s"]
        for stage in self.stages:
            lines.append(
                f"  stage {stage.name}: {stage.seconds:.2f}s "
                f"({stage.num_tasks} tasks, mean {stage.mean_task_seconds:.3f}s)"
            )
        return "\n".join(lines)


class ClusterSimulator:
    """Simulates query makespan on ``num_nodes`` virtual nodes.

    Parameters
    ----------
    num_nodes:
        Cluster size (the paper mostly uses 100, Figure 9 uses 50).
    engine:
        Engine profile to charge costs under.
    hardware:
        Per-node hardware profile.
    seed:
        Seed for deterministic straggler injection.
    speculation:
        Whether slow tasks get speculative backup copies (Spark/Hadoop do
        this; it caps straggler damage once spare slots exist).
    tracer:
        Optional :class:`~repro.obs.Tracer`; when enabled, each simulated
        task is recorded as a ``sim``-category span on its slot's lane
        (timestamps are the simulator's own schedule), and speculative
        backups increment the ``speculation.launched`` counter.
    fault_injector:
        Optional :class:`~repro.faults.FaultInjector`; its deterministic
        straggler picks and transient-retry counts are charged to the
        simulated schedule (the same faults the real engine would see at
        cluster scale).
    """

    def __init__(
        self,
        num_nodes: int,
        engine: EngineProfile = SHARK_MEM,
        hardware: HardwareProfile = DEFAULT_HARDWARE,
        seed: int = 42,
        speculation: bool = True,
        tracer: Optional["Tracer"] = None,
        fault_injector=None,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self.engine = engine
        self.hardware = hardware
        self.seed = seed
        self.speculation = speculation
        self.tracer = tracer
        self.fault_injector = fault_injector

    @property
    def total_slots(self) -> int:
        return self.num_nodes * self.hardware.cores_per_node

    def simulate(self, stages: list[StageCost]) -> QueryCost:
        """Simulate the stages back-to-back and return the total makespan."""
        rng = random.Random(self.seed)
        clock = 0.0
        results: list[StageResult] = []
        for stage in stages:
            seconds, mean_s, max_s = self._simulate_stage(
                stage, rng, start=clock
            )
            clock += seconds
            results.append(
                StageResult(
                    name=stage.name,
                    num_tasks=len(stage.tasks),
                    seconds=seconds,
                    mean_task_seconds=mean_s,
                    max_task_seconds=max_s,
                )
            )
        return QueryCost(
            engine=self.engine.name, total_seconds=clock, stages=results
        )

    def _task_durations(
        self, stage: StageCost, rng: random.Random
    ) -> list[float]:
        """Per-task durations with straggler noise applied."""
        durations = []
        injector = self.fault_injector
        for task_index, vector in enumerate(stage.tasks):
            seconds = estimate_task_seconds(vector, self.engine, self.hardware)
            if injector is not None:
                factor, retries = injector.sim_task_effects(
                    stage.name, task_index, len(stage.tasks)
                )
                if factor > 1.0 and self.speculation:
                    # A backup copy caps the injected straggler the same
                    # way the engine-profile stragglers are capped below.
                    capped = (
                        2.0 * seconds + self.engine.task_launch_overhead_s
                    )
                    slowed = min(seconds * factor, capped)
                    if self.tracer is not None and slowed == capped:
                        self.tracer.metrics.inc("speculation.launched")
                    seconds = slowed
                else:
                    seconds *= factor
                # Each retry re-runs the task after a relaunch overhead.
                seconds += retries * (
                    self.engine.task_launch_overhead_s + seconds
                )
            if rng.random() < self.engine.straggler_fraction:
                straggler_seconds = seconds * self.engine.straggler_slowdown
                if self.speculation:
                    # A backup copy launches after roughly one normal task
                    # duration and races the straggler; the effective time
                    # is capped near 2x normal plus the relaunch overhead.
                    capped = 2.0 * seconds + self.engine.task_launch_overhead_s
                    seconds = min(straggler_seconds, capped)
                    if self.tracer is not None and seconds == capped:
                        self.tracer.metrics.inc("speculation.launched")
                else:
                    seconds = straggler_seconds
            durations.append(seconds)
        return durations

    def _simulate_stage(
        self, stage: StageCost, rng: random.Random, start: float = 0.0
    ) -> tuple[float, float, float]:
        """List-schedule one stage; returns (makespan, mean task, max task)."""
        durations = self._task_durations(stage, rng)
        if not durations:
            return 0.0, 0.0, 0.0
        tracer = self.tracer if (
            self.tracer is not None and self.tracer.enabled
        ) else None
        heartbeat = self.engine.scheduling_wave_delay_s
        slots = [
            (0.0, index)
            for index in range(min(self.total_slots, len(durations)))
        ]
        heapq.heapify(slots)
        finish = 0.0
        for task_index, duration in enumerate(durations):
            free_at, slot_index = heapq.heappop(slots)
            if heartbeat > 0:
                # Workers only receive tasks on heartbeat boundaries.
                free_at = math.ceil(free_at / heartbeat) * heartbeat
            done = free_at + duration
            finish = max(finish, done)
            heapq.heappush(slots, (done, slot_index))
            if tracer is not None:
                cores = self.hardware.cores_per_node
                tracer.record_span(
                    f"{stage.name}[{task_index}]",
                    "sim",
                    lane=f"sim node {slot_index // cores}"
                    f" core {slot_index % cores}",
                    start=start + free_at,
                    end=start + done,
                    stage=stage.name,
                    task=task_index,
                )
        mean_task = sum(durations) / len(durations)
        return finish, mean_task, max(durations)

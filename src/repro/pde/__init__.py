"""Partial DAG Execution (paper Section 3.1).

PDE lets Shark re-optimize a running query at shuffle boundaries: map
stages materialize their output *and* per-partition statistics (via the
pluggable collectors in :mod:`repro.engine.accumulator`), and the
decisions here consume those statistics before the downstream DAG is
committed:

* :func:`~repro.pde.decisions.decide_join_strategy` — switch a planned
  shuffle join to a broadcast (map) join when the observed side is small
  (Section 3.1.1, evaluated in Figure 8);
* :func:`~repro.pde.decisions.choose_num_reducers` — pick the reduce-side
  degree of parallelism from observed map-output sizes (Section 3.1.2);
* :func:`~repro.pde.binpack.pack_partitions` — greedy bin-packing of
  fine-grained partitions into balanced coalesced reduce partitions, the
  skew-mitigation heuristic of Section 3.1.2.
"""

from repro.pde.binpack import pack_partitions
from repro.pde.decisions import (
    JoinDecision,
    choose_num_reducers,
    decide_join_strategy,
)

__all__ = [
    "pack_partitions",
    "JoinDecision",
    "choose_num_reducers",
    "decide_join_strategy",
]

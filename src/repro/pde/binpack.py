"""Greedy bin-packing of fine-grained partitions (paper Section 3.1.2).

"Fine-grained partitions are assigned to coalesced partitions using a
greedy bin-packing heuristic that attempts to equalize coalesced
partitions' sizes."  This is longest-processing-time-first list
scheduling: sort partitions by decreasing size and always assign to the
currently lightest bin.
"""

from __future__ import annotations

import heapq


def pack_partitions(sizes: list[int], num_bins: int) -> list[list[int]]:
    """Group partition indices into ``num_bins`` groups of balanced total
    size.  Returns a list of groups, each a list of partition indices;
    groups are never empty unless there are fewer partitions than bins.
    """
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    num_bins = min(num_bins, max(len(sizes), 1))
    # Heap of (current_total, bin_index); Python's heap breaks ties on the
    # bin index, keeping the packing deterministic.
    heap: list[tuple[int, int]] = [(0, index) for index in range(num_bins)]
    heapq.heapify(heap)
    groups: list[list[int]] = [[] for _ in range(num_bins)]
    order = sorted(range(len(sizes)), key=lambda i: -sizes[i])
    for partition in order:
        total, bin_index = heapq.heappop(heap)
        groups[bin_index].append(partition)
        heapq.heappush(heap, (total + sizes[partition], bin_index))
    return [sorted(group) for group in groups if group] or [[]]


def imbalance(sizes: list[int], groups: list[list[int]]) -> float:
    """Max-to-mean ratio of group totals (1.0 = perfectly balanced)."""
    totals = [sum(sizes[i] for i in group) for group in groups]
    if not totals or sum(totals) == 0:
        return 1.0
    mean = sum(totals) / len(totals)
    return max(totals) / mean if mean else 1.0

"""Run-time optimizer decisions driven by map-output statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Broadcast a join input when its materialized size is below this
#: (per-node memory budget for a replicated hash table).
DEFAULT_BROADCAST_THRESHOLD = 4 * 1024 * 1024
#: Target bytes per reduce task when choosing the degree of parallelism.
DEFAULT_TARGET_PARTITION_BYTES = 512 * 1024


@dataclass(frozen=True)
class JoinDecision:
    """Outcome of run-time join selection (Section 3.1.1)."""

    strategy: str  # 'broadcast_left' | 'broadcast_right' | 'shuffle'
    reason: str
    left_bytes: Optional[int] = None
    right_bytes: Optional[int] = None


def decide_join_strategy(
    left_bytes: Optional[int],
    right_bytes: Optional[int],
    broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
    left_broadcastable: bool = True,
    right_broadcastable: bool = True,
) -> JoinDecision:
    """Choose map join vs shuffle join from (possibly observed) sizes.

    "Map join is only worthwhile if some join inputs are small, so Shark
    uses partial DAG execution to select the join strategy at run-time
    based on its inputs' exact sizes."  Outer joins can only broadcast the
    non-preserved side, which the caller signals via ``*_broadcastable``.
    """
    candidates: list[tuple[int, str]] = []
    if right_bytes is not None and right_broadcastable:
        candidates.append((right_bytes, "broadcast_right"))
    if left_bytes is not None and left_broadcastable:
        candidates.append((left_bytes, "broadcast_left"))
    for size, strategy in sorted(candidates):
        if size <= broadcast_threshold:
            side = "right" if strategy == "broadcast_right" else "left"
            return JoinDecision(
                strategy=strategy,
                reason=(
                    f"{side} input observed at {size} bytes "
                    f"<= threshold {broadcast_threshold}"
                ),
                left_bytes=left_bytes,
                right_bytes=right_bytes,
            )
    return JoinDecision(
        strategy="shuffle",
        reason="no input small enough to broadcast",
        left_bytes=left_bytes,
        right_bytes=right_bytes,
    )


def choose_num_reducers(
    total_bytes: int,
    target_partition_bytes: int = DEFAULT_TARGET_PARTITION_BYTES,
    min_reducers: int = 1,
    max_reducers: int = 4096,
) -> int:
    """Degree of parallelism from observed map output volume
    (Section 3.1.2): enough reducers that each processes roughly
    ``target_partition_bytes``."""
    if total_bytes <= 0:
        return min_reducers
    wanted = (total_bytes + target_partition_bytes - 1) // target_partition_bytes
    return max(min_reducers, min(int(wanted), max_reducers))

"""Multi-tenant SQL serving on top of the query lifecycle manager.

Shark's serving story — low-latency SQL over cached data for many
concurrent clients — only matters if the system degrades gracefully
under overload instead of falling over.  This package turns the PR 3
lifecycle kernel (admission, deadlines, cooperative cancellation, fair
interleaving) into a server:

* :mod:`repro.serving.tenants` — priority tiers, fair-share weights,
  and per-tenant quotas (concurrency slots, queued-query caps, a
  simulated-seconds budget per accounting window).
* :mod:`repro.serving.server` — :class:`SqlServer`: long-lived
  per-tenant sessions, quota enforcement with typed rejections carrying
  retry-after hints, priority-ordered promotion into the engine,
  deadline-aware load shedding, and a brownout mode that sheds
  ``best_effort`` before ever touching ``interactive``.
* :mod:`repro.serving.workload` — the seeded Zipfian heavy-traffic
  generator and the overload-soak harness behind CI's serving gate.
"""

from repro.serving.tenants import (
    BATCH,
    BEST_EFFORT,
    INTERACTIVE,
    PRIORITY_TIERS,
    PRIORITY_WEIGHTS,
    TenantQuota,
    TenantState,
)
from repro.serving.server import ServedQuery, ServerConfig, SqlServer

__all__ = [
    "BATCH",
    "BEST_EFFORT",
    "INTERACTIVE",
    "PRIORITY_TIERS",
    "PRIORITY_WEIGHTS",
    "ServedQuery",
    "ServerConfig",
    "SqlServer",
    "TenantQuota",
    "TenantState",
    "ZipfianWorkload",
]


def __getattr__(name: str):
    # Lazy: importing the workload module here would shadow
    # ``python -m repro.serving.workload`` with a RuntimeWarning.
    if name == "ZipfianWorkload":
        from repro.serving.workload import ZipfianWorkload

        return ZipfianWorkload
    raise AttributeError(
        f"module 'repro.serving' has no attribute {name!r}"
    )

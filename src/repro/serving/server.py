"""The multi-tenant SQL server: quotas, priorities, and load shedding.

:class:`SqlServer` hosts long-lived per-tenant sessions over one
:class:`~repro.core.context.SharkContext`.  It is the robust shell
around the PR 3 lifecycle kernel:

* **Admission** — every submission is checked against the tenant's
  :class:`~repro.serving.tenants.TenantQuota` (queue cap, concurrency
  slots, simulated-seconds budget window) and rejected with a typed
  :class:`~repro.errors.TenantQuotaExceeded` carrying a retry-after
  hint priced from the observed completion drain rate.
* **Priority promotion** — accepted queries wait in per-tenant pending
  queues and are promoted into the engine in (tier, arrival) order with
  the tier's fair-share weight, so the lifecycle manager's "weighted"
  policy interleaves tasks 8:2:1 across interactive/batch/best_effort.
* **Load shedding** — a pending query whose deadline is already
  unmeetable is shed (``deadline-unmeetable``) instead of run; when the
  total backlog crosses the brownout threshold the server sheds pending
  work lowest tier first (``brownout``) and *never* sheds
  ``interactive`` while lower tiers have queued work.
* **Isolation** — the engine's circuit breaker and worker blacklist are
  scoped by the tenant attached to every promoted query, so one
  tenant's poison query cannot fail-fast or blacklist for another.

Everything runs on the simulated clock, so a server drain is
deterministic: admitted queries return byte-identical results run to
run, composing with the seeded fault injector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import (
    QueryLifecycleError,
    QueryShedError,
    ReproError,
    TenantQuotaExceeded,
)
from repro.serving.tenants import (
    PRIORITY_TIERS,
    TIER_RANK,
    TenantQuota,
    TenantState,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import SharkContext
    from repro.engine.lifecycle import QueryHandle

#: Ticket states (pending/running mirror the lifecycle's, plus shed
#: happens server-side before the engine ever sees the query).
PENDING = "pending"
RUNNING = "running"
_TERMINAL = frozenset({"done", "cancelled", "deadline", "failed", "shed"})


@dataclass
class ServerConfig:
    """Knobs for the serving layer (engine knobs stay on
    :class:`~repro.engine.lifecycle.LifecycleConfig`)."""

    #: Engine admission slots the server keeps filled (the lifecycle
    #: manager's ``max_concurrent`` when the server builds it).
    engine_slots: int = 4
    #: Total pending queries (across tenants) that triggers brownout.
    brownout_enter_depth: int = 32
    #: Brownout sheds lowest-tier pending work until the backlog is back
    #: at this depth (hysteresis; must be < brownout_enter_depth).
    brownout_exit_depth: int = 16
    #: Retry-after hint before any completion drain samples exist.
    retry_after_default_s: float = 1.0
    #: Completion instants sampled for the drain rate behind hints.
    drain_rate_window: int = 8

    def __post_init__(self) -> None:
        if self.engine_slots < 1:
            raise ValueError("engine_slots must be >= 1")
        if self.brownout_exit_depth >= self.brownout_enter_depth:
            raise ValueError(
                "brownout_exit_depth must be < brownout_enter_depth"
            )


@dataclass
class ServedQuery:
    """One submission's ticket: its queue position, engine handle once
    promoted, and terminal outcome."""

    seq: int
    tenant: str
    priority: str
    name: str
    text: str
    key: str
    deadline_s: Optional[float] = None
    #: Simulated-clock instant the server accepted the query.
    enqueued_at: float = 0.0
    state: str = PENDING
    #: Engine handle, set at promotion.
    handle: Optional["QueryHandle"] = field(default=None, repr=False)
    shed_reason: Optional[str] = None
    error: Optional[BaseException] = None
    #: Simulated-clock instant the ticket went terminal.
    ended_at: float = 0.0

    @property
    def done(self) -> bool:
        return self.state in _TERMINAL

    @property
    def result(self) -> Any:
        return self.handle.result if self.handle is not None else None

    @property
    def latency_s(self) -> float:
        """End-to-end simulated latency (enqueue to terminal)."""
        return max(self.ended_at - self.enqueued_at, 0.0)

    def describe(self) -> str:
        parts = [
            f"served {self.seq} ({self.name!r}): {self.state}",
            f"tenant {self.tenant}/{self.priority}",
        ]
        if self.done:
            parts.append(f"latency {self.latency_s:.3f}s")
        if self.shed_reason is not None:
            parts.append(f"shed: {self.shed_reason}")
        if self.error is not None:
            parts.append(f"error: {type(self.error).__name__}")
        return ", ".join(parts)


class SqlServer:
    """Long-lived multi-tenant serving over one SharkContext."""

    def __init__(
        self,
        shark: "SharkContext",
        config: Optional[ServerConfig] = None,
    ) -> None:
        from repro.engine.lifecycle import LifecycleConfig

        self.shark = shark
        self.config = config if config is not None else ServerConfig()
        self._ctx = shark.engine
        if self._ctx.lifecycle is None:
            self._ctx.enable_lifecycle(
                LifecycleConfig(
                    max_concurrent=self.config.engine_slots,
                    max_queued=self.config.engine_slots,
                    fairness="weighted",
                )
            )
        self.lifecycle = self._ctx.lifecycle
        self._ctx.serving = self
        self.tenants: dict[str, TenantState] = {}
        #: Per-tenant pending queues, arrival order.
        self._pending: dict[str, list[ServedQuery]] = {}
        #: Promoted tickets whose engine handle is not yet terminal.
        self._inflight: list[ServedQuery] = []
        #: Terminal tickets, completion order.
        self.finished: list[ServedQuery] = []
        self._next_seq = 0
        #: Simulated-clock instants of recent completions (drain rate).
        self._drain_times: list[float] = []
        self.brownout = False
        # Server-level counters (metrics mirror these; describe() is
        # self-contained).
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.completed = 0
        self.brownouts = 0
        #: Completions served straight from the SQL result cache.
        self.cache_hits = 0

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def register_tenant(
        self,
        name: str,
        priority: str = "batch",
        quota: Optional[TenantQuota] = None,
    ) -> TenantState:
        """Create (or return) the tenant's long-lived session state."""
        existing = self.tenants.get(name)
        if existing is not None:
            return existing
        tenant = TenantState(
            name=name,
            priority=priority,
            quota=quota if quota is not None else TenantQuota(),
            window_start=self._now(),
        )
        self.tenants[name] = tenant
        self._pending[name] = []
        metrics = self._ctx.tracer.metrics
        metrics.set_gauge("server.tenants", len(self.tenants))
        self._ctx.tracer.instant(
            "tenant.registered", "serving",
            tenant=name, priority=priority, weight=tenant.weight,
        )
        return tenant

    def tenant(self, name: str) -> TenantState:
        try:
            return self.tenants[name]
        except KeyError:
            raise ReproError(f"unknown tenant {name!r}") from None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant_name: str,
        text: str,
        name: Optional[str] = None,
        deadline_s: Optional[float] = None,
        key: Optional[str] = None,
    ) -> ServedQuery:
        """Admit one SQL statement for ``tenant_name``.

        Raises :class:`~repro.errors.TenantQuotaExceeded` when the
        tenant's queue, concurrency, or budget quota is exhausted; the
        accepted ticket runs when the server is driven (:meth:`drain`).
        """
        tenant = self.tenant(tenant_name)
        metrics = self._ctx.tracer.metrics
        now = self._now()
        self.submitted += 1
        tenant.submitted += 1
        metrics.inc("server.submitted")
        pending = self._pending[tenant_name]
        # Total outstanding work is bounded by the concurrency slots
        # plus the queue cap; a zero-length queue means the slots are
        # the only capacity, so name the exhausted resource accordingly.
        outstanding = len(pending) + tenant.running
        if outstanding >= tenant.quota.max_queued + tenant.quota.max_concurrent:
            resource = (
                "concurrency" if tenant.quota.max_queued == 0 else "queue"
            )
            raise self._quota_rejection(tenant, name, resource, now)
        if tenant.budget_exhausted(now):
            raise self._quota_rejection(
                tenant, name, "budget", now,
                retry_after=tenant.budget_retry_after(now),
            )
        seq = self._next_seq
        self._next_seq += 1
        ticket = ServedQuery(
            seq=seq,
            tenant=tenant_name,
            priority=tenant.priority,
            name=name if name is not None else f"s{seq}",
            text=text,
            key=key if key is not None else text,
            deadline_s=deadline_s,
            enqueued_at=now,
        )
        pending.append(ticket)
        tenant.admitted += 1
        metrics.inc("server.enqueued")
        metrics.set_gauge("server.queue_depth", self._pending_total())
        return ticket

    def _quota_rejection(
        self,
        tenant: TenantState,
        name: Optional[str],
        resource: str,
        now: float,
        retry_after: Optional[float] = None,
    ) -> TenantQuotaExceeded:
        metrics = self._ctx.tracer.metrics
        self.rejected += 1
        tenant.rejected += 1
        metrics.inc("tenant.quota_rejected")
        if retry_after is None:
            retry_after = self._retry_after_hint(tenant)
        return TenantQuotaExceeded(
            name if name is not None else "(unnamed)",
            tenant=tenant.name,
            resource=resource,
            running=tenant.running,
            queued=len(self._pending[tenant.name]),
            retry_after_s=retry_after,
        )

    def _retry_after_hint(self, tenant: TenantState) -> float:
        """Time for the tenant's backlog to drain at the observed
        server-wide completion rate (simulated clock)."""
        waiting = tenant.running + len(self._pending[tenant.name]) + 1
        samples = self._drain_times[-self.config.drain_rate_window:]
        if len(samples) >= 2:
            elapsed = samples[-1] - samples[0]
            if elapsed > 0:
                rate = (len(samples) - 1) / elapsed
                return waiting / rate
        return self.config.retry_after_default_s * waiting

    # ------------------------------------------------------------------
    # Pump: shed, brownout, promote
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        self._shed_unmeetable()
        self._update_brownout()
        self._promote()

    def _shed_unmeetable(self) -> None:
        """Deadline-aware shedding: a pending query whose remaining
        deadline is already spent can never finish in time — drop it
        now instead of wasting engine work on it."""
        now = self._now()
        for queue in self._pending.values():
            for ticket in list(queue):
                if ticket.deadline_s is None:
                    continue
                if now - ticket.enqueued_at >= ticket.deadline_s:
                    self._shed(ticket, "deadline-unmeetable")

    def _update_brownout(self) -> None:
        """Server-level overload valve: past the enter threshold, shed
        pending work lowest tier first (never ``interactive``) until
        the backlog is back under the exit threshold."""
        metrics = self._ctx.tracer.metrics
        depth = self._pending_total()
        if not self.brownout:
            if depth < self.config.brownout_enter_depth:
                return
            self.brownout = True
            self.brownouts += 1
            metrics.inc("server.brownouts")
            metrics.set_gauge("server.brownout", 1)
            self._ctx.tracer.instant(
                "server.brownout.enter", "serving", queue_depth=depth
            )
        # Lowest tier first; interactive is never in shed order.
        for tier in reversed(PRIORITY_TIERS[1:]):
            if depth <= self.config.brownout_exit_depth:
                break
            for queue in self._pending.values():
                for ticket in list(queue):
                    if depth <= self.config.brownout_exit_depth:
                        break
                    if ticket.priority != tier:
                        continue
                    self._shed(ticket, "brownout")
                    depth -= 1
        if depth <= self.config.brownout_exit_depth:
            self.brownout = False
            metrics.set_gauge("server.brownout", 0)
            self._ctx.tracer.instant(
                "server.brownout.exit", "serving", queue_depth=depth
            )

    def _promote(self) -> None:
        """Move pending tickets into the engine in (tier, arrival)
        order, respecting per-tenant concurrency quotas and the global
        engine slots."""
        metrics = self._ctx.tracer.metrics
        while len(self._inflight) < self.lifecycle.config.max_concurrent:
            candidates = [
                ticket
                for tenant_name, queue in self._pending.items()
                for ticket in queue[:1]
                if self.tenants[tenant_name].running
                < self.tenants[tenant_name].quota.max_concurrent
            ]
            if not candidates:
                return
            ticket = min(
                candidates,
                key=lambda t: (TIER_RANK[t.priority], t.seq),
            )
            tenant = self.tenants[ticket.tenant]
            now = self._now()
            remaining = None
            if ticket.deadline_s is not None:
                remaining = ticket.deadline_s - (now - ticket.enqueued_at)
                if remaining <= 0:
                    self._shed(ticket, "deadline-unmeetable")
                    continue
            try:
                handle = self.lifecycle.submit(
                    self._query_fn(ticket.text),
                    name=ticket.name,
                    deadline_s=remaining,
                    key=ticket.key,
                    tenant=ticket.tenant,
                    priority=ticket.priority,
                    weight=tenant.weight,
                )
            except QueryLifecycleError as error:
                # Circuit open for this tenant's key (or the engine
                # rejected): the ticket fails typed, slot stays free.
                self._pending[ticket.tenant].remove(ticket)
                ticket.state = "failed"
                ticket.error = error
                ticket.ended_at = now
                tenant.failed += 1
                self.finished.append(ticket)
                continue
            # Re-stamp admission to the server enqueue instant so the
            # event log's started/ended span covers server queue wait.
            handle.submitted_at = ticket.enqueued_at
            self._pending[ticket.tenant].remove(ticket)
            ticket.state = RUNNING
            ticket.handle = handle
            tenant.running += 1
            self._inflight.append(ticket)
            self.admitted += 1
            metrics.inc("server.admitted")
            wait = now - ticket.enqueued_at
            metrics.observe("server.queue_wait", wait)
            metrics.observe(f"server.queue_wait.{ticket.priority}", wait)
            metrics.set_gauge("server.queue_depth", self._pending_total())

    def _query_fn(self, text: str):
        return lambda: self.shark.session.execute(text)

    # ------------------------------------------------------------------
    # Shedding
    # ------------------------------------------------------------------
    def _shed(self, ticket: ServedQuery, reason: str) -> None:
        metrics = self._ctx.tracer.metrics
        now = self._now()
        self._pending[ticket.tenant].remove(ticket)
        ticket.state = "shed"
        ticket.shed_reason = reason
        ticket.error = QueryShedError(ticket.name, reason)
        ticket.ended_at = now
        tenant = self.tenants[ticket.tenant]
        tenant.shed += 1
        self.shed += 1
        metrics.inc("server.shed")
        metrics.set_gauge("server.queue_depth", self._pending_total())
        self._ctx.tracer.instant(
            "query.shed", "serving",
            query=ticket.name, tenant=ticket.tenant,
            priority=ticket.priority, shed_reason=reason,
        )
        log = self._ctx.event_log
        if log is not None:
            log.write_query(
                name=ticket.name,
                kind="sql",
                text=ticket.text,
                status="shed",
                error=str(ticket.error),
                started=ticket.enqueued_at,
                ended=now,
                sim_seconds=0.0,
                tenant=ticket.tenant,
                priority=ticket.priority,
                shed_reason=reason,
            )
        self._record_latency(ticket)
        self.finished.append(ticket)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def drain(self) -> list[ServedQuery]:
        """Run every accepted query to a terminal state; returns the
        completion order (shed tickets included)."""
        while self._pending_total() or self._inflight:
            self._pump()
            if not self._inflight:
                if self._pending_total():  # pragma: no cover - defensive
                    raise ReproError(
                        "server stalled: pending queries but nothing "
                        "promotable (check tenant quotas)"
                    )
                break
            earliest = min(
                self._inflight, key=lambda t: t.handle.query_id
            )
            try:
                self.lifecycle.wait(earliest.handle)
            except ReproError:
                # The typed outcome lives on the handle; the sweep
                # records it on the ticket.
                pass
            self._sweep()
        return list(self.finished)

    def _sweep(self) -> None:
        """Book-keep every inflight ticket whose handle went terminal:
        release the tenant slot, charge the budget, record latency."""
        metrics = self._ctx.tracer.metrics
        now = self._now()
        for ticket in list(self._inflight):
            handle = ticket.handle
            if not handle.done:
                continue
            self._inflight.remove(ticket)
            ticket.state = handle.state
            ticket.error = handle.error
            ticket.shed_reason = handle.shed_reason
            ticket.ended_at = now
            tenant = self.tenants[ticket.tenant]
            tenant.running -= 1
            tenant.charge(handle.charged_seconds, now)
            if handle.state == "done":
                tenant.completed += 1
                self.completed += 1
                metrics.inc("server.completed")
                if getattr(handle.result, "cache_hit", False):
                    # Result came straight from the SQL result cache:
                    # attribute the saved work to the tenant.
                    tenant.cache_hits += 1
                    self.cache_hits += 1
                    metrics.inc("sqlcache.served.hits")
            elif handle.state == "shed":
                tenant.shed += 1
                self.shed += 1
                metrics.inc("server.shed")
            else:
                tenant.failed += 1
            self._drain_times.append(now)
            if len(self._drain_times) > 4 * self.config.drain_rate_window:
                del self._drain_times[: -2 * self.config.drain_rate_window]
            self._record_latency(ticket)
            self.finished.append(ticket)

    def _record_latency(self, ticket: ServedQuery) -> None:
        metrics = self._ctx.tracer.metrics
        metrics.observe("server.latency", ticket.latency_s)
        metrics.observe(
            f"server.latency.{ticket.priority}", ticket.latency_s
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._ctx.tracer.clock.now()

    def _pending_total(self) -> int:
        return sum(len(queue) for queue in self._pending.values())

    def describe(self) -> str:
        return (
            f"server: {len(self.tenants)} tenant(s), "
            f"{self.submitted} submitted, {self.admitted} admitted, "
            f"{self.completed} completed, {self.shed} shed, "
            f"{self.rejected} quota-rejected, "
            f"{self._pending_total()} pending, "
            f"{len(self._inflight)} in flight"
            + (", BROWNOUT" if self.brownout else "")
        )

    def summary_lines(self) -> list[str]:
        """The `== serving ==` section for EXPLAIN ANALYZE / .metrics."""
        lines = [self.describe()]
        for name in sorted(self.tenants):
            lines.append(self.tenants[name].describe())
        if self.brownouts:
            lines.append(
                f"brownouts: {self.brownouts} "
                f"(enter at {self.config.brownout_enter_depth} pending, "
                f"exit at {self.config.brownout_exit_depth})"
            )
        if self.cache_hits:
            # Absent with caching off, keeping those summaries stable.
            lines.append(
                f"sql cache: {self.cache_hits}/{self.completed} "
                f"completions served from the result cache"
            )
        return lines

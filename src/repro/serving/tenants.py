"""Tenants, priority tiers, and quotas for the multi-tenant SQL server.

A tenant is one long-lived client of the :class:`~repro.serving.server.
SqlServer`: it owns a priority tier, a fair-share weight derived from
that tier, and a :class:`TenantQuota` bounding how much of the engine it
may occupy.  Quotas are enforced at admission with typed rejections
(:class:`~repro.errors.TenantQuotaExceeded`) so a Zipfian-heavy tenant
backs off instead of starving everyone else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Priority tiers, highest first.  The order is load-shedding order
#: reversed: brownout sheds ``best_effort`` first and *never* touches
#: ``interactive``.
INTERACTIVE = "interactive"
BATCH = "batch"
BEST_EFFORT = "best_effort"
PRIORITY_TIERS: tuple[str, ...] = (INTERACTIVE, BATCH, BEST_EFFORT)

#: Fair-share task weights per tier, fed to the lifecycle manager's
#: "weighted" fairness policy: an interactive query gets eight task
#: slots for every one a best-effort query gets.
PRIORITY_WEIGHTS: dict[str, int] = {
    INTERACTIVE: 8,
    BATCH: 2,
    BEST_EFFORT: 1,
}

#: tier -> promotion rank (lower promotes first).
TIER_RANK: dict[str, int] = {
    tier: rank for rank, tier in enumerate(PRIORITY_TIERS)
}


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits, all enforced on the simulated clock.

    ``max_concurrent`` bounds in-engine queries, ``max_queued`` bounds
    the tenant's pending queue, and ``budget_seconds`` (when set) caps
    the simulated seconds the tenant may be charged inside one
    ``window_seconds``-long accounting window.
    """

    max_concurrent: int = 2
    max_queued: int = 8
    budget_seconds: Optional[float] = None
    window_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")


@dataclass
class TenantState:
    """One registered tenant: its tier, quota, and live accounting."""

    name: str
    priority: str = BATCH
    quota: TenantQuota = field(default_factory=TenantQuota)
    #: Queries currently inside the engine (promoted, not yet terminal).
    running: int = 0
    # Cumulative outcome counters (the .tenants shell view).
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    #: Completed queries whose rows came straight from the SQL result
    #: cache (per-tenant cache-hit attribution).
    cache_hits: int = 0
    #: Simulated seconds charged across all completed queries.
    charged_seconds: float = 0.0
    #: Budget accounting window: start instant and seconds charged in it.
    window_start: float = 0.0
    window_charged: float = 0.0

    def __post_init__(self) -> None:
        if self.priority not in PRIORITY_TIERS:
            raise ValueError(
                f"unknown priority tier {self.priority!r}; "
                f"expected one of {PRIORITY_TIERS}"
            )

    @property
    def weight(self) -> int:
        return PRIORITY_WEIGHTS[self.priority]

    @property
    def rank(self) -> int:
        return TIER_RANK[self.priority]

    # -- budget window -------------------------------------------------
    def roll_window(self, now: float) -> None:
        """Advance the accounting window so ``now`` falls inside it,
        resetting the charge when a new window opens."""
        width = self.quota.window_seconds
        if now - self.window_start >= width:
            windows = int((now - self.window_start) // width)
            self.window_start += windows * width
            self.window_charged = 0.0

    def budget_exhausted(self, now: float) -> bool:
        if self.quota.budget_seconds is None:
            return False
        self.roll_window(now)
        return self.window_charged >= self.quota.budget_seconds

    def budget_retry_after(self, now: float) -> float:
        """Simulated seconds until the current window rolls over."""
        return max(
            self.window_start + self.quota.window_seconds - now, 1e-3
        )

    def charge(self, seconds: float, now: float) -> None:
        self.roll_window(now)
        self.charged_seconds += seconds
        self.window_charged += seconds

    def describe(self) -> str:
        parts = [
            f"tenant {self.name} [{self.priority}, w{self.weight}]:",
            f"{self.submitted} submitted,",
            f"{self.completed} completed,",
            f"{self.shed} shed,",
            f"{self.rejected} rejected,",
            f"{self.failed} failed,",
            f"{self.charged_seconds:.3f} sim-s charged",
        ]
        if self.cache_hits:
            # Only rendered when the caching stack served something, so
            # cache-off runs keep byte-identical describe() output.
            parts.append(f"({self.cache_hits} cache hits)")
        if self.quota.budget_seconds is not None:
            parts.append(
                f"(window {self.window_charged:.3f}/"
                f"{self.quota.budget_seconds:.3f}s)"
            )
        return " ".join(parts)

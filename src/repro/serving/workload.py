"""Zipfian heavy-traffic workload generator and the overload soak.

The serving layer's acceptance gate: drive a :class:`~repro.serving.
server.SqlServer` with thousands of queries under Zipfian tenant/query
skew and a concurrency cap far below the offered load, then prove the
system degraded *gracefully*:

* shedding hit only the lowest priority tier (zero ``interactive``
  sheds while lower tiers had queued work),
* every admitted-and-completed query's result is byte-identical to an
  uncontended fault-free run of the same SQL,
* per-tier p50/p95/p99 latency is reported from the event log, and
* nothing leaked afterwards — admission slots (ledger-zero), pinned
  shuffle blocks, open tracer spans, or execution-pool memory residue.

Run the soak (the CI serving gate) with::

    PYTHONPATH=src python -m repro.serving.workload \\
        --queries 1000 --chaos --report-out soak_report.txt

Everything is seeded (``random.Random``), so two runs produce identical
admission decisions, identical shed sets, and byte-identical survivor
results — chaos included.
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import dataclass
from typing import Optional

from repro.errors import TenantQuotaExceeded
from repro.serving.server import ServerConfig, SqlServer
from repro.serving.tenants import (
    BATCH,
    BEST_EFFORT,
    INTERACTIVE,
    TenantQuota,
)

#: Query templates, reused across tenants so Zipfian query skew shares
#: plans (and the circuit breaker's per-(tenant, key) scoping matters).
QUERY_TEMPLATES: tuple[tuple[str, str], ...] = (
    (
        "agg-bucket",
        "SELECT bucket, COUNT(*) AS n, SUM(value) AS total "
        "FROM readings GROUP BY bucket",
    ),
    (
        "filter-40",
        "SELECT day, COUNT(*) AS n FROM readings "
        "WHERE value > 40 GROUP BY day",
    ),
    (
        "filter-70",
        "SELECT day, COUNT(*) AS n FROM readings "
        "WHERE value > 70 GROUP BY day",
    ),
    ("count-all", "SELECT COUNT(*) FROM readings"),
    (
        "sum-day",
        "SELECT day, SUM(value) AS total FROM readings GROUP BY day",
    ),
)

#: Default tenant fleet: one interactive, two batch, two best-effort.
DEFAULT_TENANTS: tuple[tuple[str, str], ...] = (
    ("dashboards", INTERACTIVE),
    ("etl", BATCH),
    ("reports", BATCH),
    ("crawler", BEST_EFFORT),
    ("scratch", BEST_EFFORT),
)


@dataclass(frozen=True)
class Submission:
    """One generated request: who asks what, with which deadline."""

    tenant: str
    template: str
    text: str
    deadline_s: Optional[float]


class ZipfianWorkload:
    """Seeded generator of Zipf-skewed (tenant, query) traffic.

    Tenant and template picks follow a Zipf law (probability
    proportional to ``1 / rank ** skew``), so one tenant dominates the
    offered load — the exact overload shape the server's quotas and
    weighted fairness must absorb.  Only ``best_effort`` submissions
    carry deadlines (a seeded mix of meetable and tight), so every
    deadline shed lands in the lowest tier by construction.
    """

    def __init__(
        self,
        seed: int = 29,
        queries: int = 1000,
        skew: float = 1.2,
        tenants: tuple[tuple[str, str], ...] = DEFAULT_TENANTS,
        best_effort_deadline_s: float = 40.0,
        tight_deadline_s: float = 0.5,
        tight_deadline_rate: float = 0.25,
    ) -> None:
        self.seed = seed
        self.queries = queries
        self.skew = skew
        self.tenants = tenants
        self.best_effort_deadline_s = best_effort_deadline_s
        self.tight_deadline_s = tight_deadline_s
        self.tight_deadline_rate = tight_deadline_rate

    def _zipf_pick(self, rng: random.Random, count: int) -> int:
        weights = [1.0 / (rank + 1) ** self.skew for rank in range(count)]
        total = sum(weights)
        roll = rng.random() * total
        for index, weight in enumerate(weights):
            roll -= weight
            if roll <= 0:
                return index
        return count - 1

    def generate(self) -> list[Submission]:
        rng = random.Random(self.seed)
        priorities = dict(self.tenants)
        out: list[Submission] = []
        for _ in range(self.queries):
            tenant, __ = self.tenants[
                self._zipf_pick(rng, len(self.tenants))
            ]
            template, text = QUERY_TEMPLATES[
                self._zipf_pick(rng, len(QUERY_TEMPLATES))
            ]
            deadline = None
            if priorities[tenant] == BEST_EFFORT:
                deadline = (
                    self.tight_deadline_s
                    if rng.random() < self.tight_deadline_rate
                    else self.best_effort_deadline_s
                )
            out.append(
                Submission(
                    tenant=tenant,
                    template=template,
                    text=text,
                    deadline_s=deadline,
                )
            )
        return out


# ----------------------------------------------------------------------
# The overload soak
# ----------------------------------------------------------------------
def build_serving_context(
    fault_seed: Optional[int] = None,
    rows: int = 6000,
    sql_cache: bool = False,
):
    """A SharkContext with the soak's cached ``readings`` table
    (optionally under seeded chaos and/or the SQL caching stack)."""
    from repro import SharkContext
    from repro.datatypes import DOUBLE, INT, STRING, Schema

    injector = None
    if fault_seed is not None:
        from repro.faults import FaultInjector

        injector = FaultInjector(
            seed=fault_seed,
            transient_failure_rate=0.08,
            stragglers_per_stage=1,
            straggler_slowdown=4.0,
        )
    shark = SharkContext(
        num_workers=4, cores_per_worker=2, fault_injector=injector
    )
    shark.create_table(
        "readings",
        Schema.of(("bucket", STRING), ("day", INT), ("value", DOUBLE)),
        cached=True,
    )
    shark.load_rows(
        "readings",
        [
            (f"b{i % 6}", i % 15, float(i % 100))
            for i in range(rows)
        ],
        num_partitions=8,
    )
    if sql_cache:
        shark.enable_sql_cache()
    return shark


def build_server(shark, queries: int) -> SqlServer:
    """A server whose capacity is far below the offered load, with
    quotas and brownout thresholds scaled to the soak size.

    The quota arithmetic is deliberate: interactive + batch pending
    work is capped (via ``max_queued``) *below* the brownout exit
    depth, so a brownout can always shed its way back to the exit
    threshold from ``best_effort`` work alone — the higher tiers are
    protected by admission-time quota rejections instead of shedding.
    """
    server = SqlServer(
        shark,
        ServerConfig(
            engine_slots=3,
            brownout_enter_depth=max(queries // 5, 40),
            brownout_exit_depth=max(queries // 7, 32),
        ),
    )
    server.register_tenant(
        "dashboards", INTERACTIVE,
        TenantQuota(max_concurrent=2, max_queued=max(queries // 25, 8)),
    )
    for name in ("etl", "reports"):
        server.register_tenant(
            name, BATCH,
            TenantQuota(
                max_concurrent=2,
                max_queued=max(queries // 33, 6),
                budget_seconds=300.0,
                window_seconds=100000.0,
            ),
        )
    # Best-effort queues are effectively unbounded: the overload lands
    # here, and the brownout/deadline shedding machinery absorbs it.
    for name in ("crawler", "scratch"):
        server.register_tenant(
            name, BEST_EFFORT,
            TenantQuota(max_concurrent=1, max_queued=queries),
        )
    return server


def run_soak(
    queries: int = 1000,
    seed: int = 29,
    fault_seed: Optional[int] = None,
    event_log_out: Optional[str] = None,
    report_out: Optional[str] = None,
    verbose: bool = True,
    sql_cache: bool = False,
) -> int:
    """Drive the overload soak and verify every serving gate; returns a
    process exit code (0 = all gates hold)."""
    say = print if verbose else (lambda *a, **k: None)
    failures: list[str] = []

    shark = build_serving_context(fault_seed=fault_seed, sql_cache=sql_cache)
    if event_log_out:
        shark.enable_event_log(event_log_out, source="serving-soak")
    server = build_server(shark, queries)
    workload = ZipfianWorkload(seed=seed, queries=queries)
    submissions = workload.generate()

    rejected = 0
    tickets = []
    for index, request in enumerate(submissions):
        try:
            tickets.append(
                server.submit(
                    request.tenant,
                    request.text,
                    name=f"{request.tenant}-{index}-{request.template}",
                    deadline_s=request.deadline_s,
                    key=request.template,
                )
            )
        except TenantQuotaExceeded:
            rejected += 1
    say(
        f"offered {len(submissions)} queries: "
        f"{len(tickets)} accepted, {rejected} quota-rejected"
    )

    server.drain()
    say(server.describe())

    # Gate 1: shedding never touched a tier above the lowest with work.
    shed = [t for t in server.finished if t.state == "shed"]
    shed_tiers = sorted({t.priority for t in shed})
    if not shed and not sql_cache:
        # With the caching stack on, result hits drain so fast the
        # overload may never build — zero sheds is then the win, not a
        # vacuous soak; the hit-ratio gate below keeps it honest.
        failures.append(
            "vacuous soak: overload produced zero sheds "
            "(raise --queries or lower capacity)"
        )
    if sql_cache and server.cache_hits == 0:
        failures.append(
            "caching enabled but zero completions were served from "
            "the result cache"
        )
    if any(t.priority == INTERACTIVE for t in shed):
        failures.append("interactive-tier queries were shed")
    if shed_tiers not in ([], [BEST_EFFORT]):
        failures.append(
            f"shedding escaped the lowest tier: hit {shed_tiers}"
        )
    say(f"shed {len(shed)} queries, tiers hit: {shed_tiers or 'none'}")

    # Gate 2: every completed query byte-identical to an uncontended
    # fault-free run of the same SQL.
    completed = [t for t in server.finished if t.state == "done"]
    baseline_ctx = build_serving_context(fault_seed=None)
    baseline: dict[str, list] = {}
    divergent = 0
    for ticket in completed:
        if ticket.text not in baseline:
            baseline[ticket.text] = sorted(
                baseline_ctx.sql(ticket.text).rows
            )
        if sorted(ticket.result.rows) != baseline[ticket.text]:
            divergent += 1
            failures.append(f"result divergence: {ticket.name}")
    say(
        f"{len(completed)} completed queries vs uncontended baseline: "
        f"{divergent} divergent"
    )

    # Gate 3: nothing leaked.
    ledger = server.lifecycle.admission_ledger()
    if ledger["leaked"] != 0 or ledger["running"] or ledger["queued"]:
        failures.append(f"admission-slot leak: {ledger}")
    registered = shark.engine.shuffle_manager.registered_block_ids()
    orphaned = shark.engine.cluster.pinned_block_ids() - registered
    if orphaned:
        failures.append(f"orphaned pinned shuffle blocks: {len(orphaned)}")
    open_spans = [s.name for s in shark.trace.spans if s.end is None]
    if open_spans:
        failures.append(f"half-open tracer spans: {open_spans}")
    execution_residue = sum(
        row["used_bytes"]
        for row in shark.engine.memory.watermarks()
        if row["pool"] == "execution"
    )
    if execution_residue:
        failures.append(
            f"execution-pool memory residue: {execution_residue}B"
        )
    say(
        f"cleanup: ledger leak {ledger['leaked']}, "
        f"{len(orphaned)} orphaned blocks, {len(open_spans)} open spans, "
        f"{execution_residue}B execution residue"
    )

    # Gate 4: per-tier latency percentiles from the event log.
    report_lines = [
        f"serving soak: {len(submissions)} offered, "
        f"{len(tickets)} accepted, {rejected} quota-rejected, "
        f"{len(completed)} completed, {len(shed)} shed "
        f"(tiers: {shed_tiers or 'none'})",
        server.describe(),
    ]
    for line in server.summary_lines():
        report_lines.append(line)
        say(line)
    if event_log_out:
        shark.close_event_log()
        from repro.obs.history import HistoryStore

        store = HistoryStore.load(event_log_out)
        tiers = store.tier_latencies()
        if not tiers:
            failures.append("event log carries no per-tier latencies")
        report_lines.append(store.tenant_report())
        say(store.tenant_report())

    if report_out:
        with open(report_out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(report_lines) + "\n")
        say(f"report written to {report_out}")

    if failures:
        say("\nFAIL:")
        for failure in failures:
            say(f"  - {failure}")
        return 1
    say("\nOK: every serving gate holds")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.workload",
        description=(
            "Zipfian overload soak against the multi-tenant SQL server."
        ),
    )
    parser.add_argument("--queries", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=29)
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run under the seeded fault injector",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=13,
        help="fault-injector seed (with --chaos)",
    )
    parser.add_argument(
        "--event-log-out",
        help="stream the soak's event log here (enables the per-tier "
        "latency report gate)",
    )
    parser.add_argument("--report-out", help="write the soak report here")
    parser.add_argument(
        "--sql-cache",
        action="store_true",
        help="enable the plan/result/fragment caching stack and gate "
        "on a non-zero served hit ratio",
    )
    args = parser.parse_args(argv)
    return run_soak(
        queries=args.queries,
        seed=args.seed,
        fault_seed=args.fault_seed if args.chaos else None,
        event_log_out=args.event_log_out,
        report_out=args.report_out,
        sql_cache=args.sql_cache,
    )


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())

"""The simulated discrete-event clock behind every trace timestamp.

The execution engine runs tasks eagerly in-process; real durations would
measure the host laptop, not the modelled cluster.  Instead each lane
(one per virtual worker, plus ``"driver"``) carries its own simulated
time, advanced by the cost model's estimate of every task that runs on
it — the same discrete-event treatment
:class:`~repro.costmodel.simulator.ClusterSimulator` applies at cluster
scale.  ``src/repro`` never reads the wall clock (CI greps for it), so
two runs of the same query produce byte-identical traces.
"""

from __future__ import annotations

from typing import Hashable

#: Lane name for driver-side activity (jobs, stages, planning).
DRIVER_LANE = "driver"


class VirtualClock:
    """Per-lane simulated time with a global frontier.

    ``advance_lane`` models one task occupying a lane: the task starts
    at the later of the lane's current time and ``not_before`` (its
    stage cannot start before the driver submitted it), runs for
    ``seconds`` of simulated time, and leaves the lane busy until it
    finishes.  ``now`` is the frontier — the latest simulated instant
    any lane has reached.
    """

    def __init__(self) -> None:
        self._lanes: dict[Hashable, float] = {}
        self._now = 0.0

    def now(self) -> float:
        """The global simulated-time frontier."""
        return self._now

    def lane_time(self, lane: Hashable) -> float:
        """When ``lane`` next becomes free."""
        return self._lanes.get(lane, 0.0)

    def advance_lane(
        self,
        lane: Hashable,
        seconds: float,
        not_before: float = 0.0,
    ) -> tuple[float, float]:
        """Occupy ``lane`` for ``seconds``; returns (start, end)."""
        if seconds < 0:
            raise ValueError(f"cannot advance {seconds} seconds")
        start = max(self._lanes.get(lane, 0.0), not_before)
        end = start + seconds
        self._lanes[lane] = end
        if end > self._now:
            self._now = end
        return start, end

    def advance(self, seconds: float) -> float:
        """Advance the global frontier (driver-side waits); returns now."""
        if seconds < 0:
            raise ValueError(f"cannot advance {seconds} seconds")
        self._now += seconds
        return self._now

    def lanes(self) -> list[Hashable]:
        return list(self._lanes)

    def reset(self) -> None:
        self._lanes.clear()
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.6f}, lanes={len(self._lanes)})"

"""Query doctor: explain *why* a query got slower between two runs.

``python -m repro.obs.doctor <log_a> <log_b>`` (and the shell's
``.doctor`` dot-command) loads two event logs of the same query corpus
— a baseline run and a current run — pairs queries by name, and for
each regressed query emits ranked, evidence-backed root causes drawn
from a fixed taxonomy:

===================  =====================================================
category             evidence consulted
===================  =====================================================
``mode-flip``        operator modes: an operator ran vectorized in the
                     baseline but row-at-a-time in the current run
``spill-appeared``   ``memory_spill`` records: spills present (or grown)
                     in the current run only
``cache-miss``       ``cache_lookup`` records: a layer that hit in the
                     baseline missed in the current run
``skew-growth``      ``shuffle_skew`` records (v6): row skew grew by
                     >= :data:`SKEW_GROWTH_FACTOR`
``plan-change``      plan text / operator sequence differs between runs
``estimate-drift``   ``operator_profile`` records (v6): worst q-error
                     grew by >= :data:`ESTIMATE_DRIFT_FACTOR`
``stage-slowdown``   per-stage simulated seconds: the fallback when no
                     structural cause explains the regression
===================  =====================================================

Categories are ranked by diagnostic specificity (a mode flip explains a
slowdown better than "a stage got slower" does); within a report the
top-ranked finding of each regressed query votes for the corpus-level
"top root cause" line the perf sentinel prints.  Everything here is a
pure function of the two logs — deterministic, no wall clock.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.history import HistoryStore, QueryRecord

#: A current run this much slower than baseline (relative) is regressed.
DEFAULT_REGRESSION_THRESHOLD = 0.25

#: Current-run row skew must be this multiple of baseline to be a cause.
SKEW_GROWTH_FACTOR = 1.5

#: Current-run worst q-error must be this multiple of baseline.
ESTIMATE_DRIFT_FACTOR = 2.0

#: Category -> rank weight (higher = more diagnostic, reported first).
CATEGORY_WEIGHTS = {
    "mode-flip": 100,
    "spill-appeared": 80,
    "cache-miss": 70,
    "skew-growth": 60,
    "plan-change": 50,
    "estimate-drift": 40,
    "stage-slowdown": 10,
}


@dataclass
class Finding:
    """One evidence-backed root-cause candidate for one query."""

    category: str
    summary: str
    evidence: list[str] = field(default_factory=list)

    @property
    def weight(self) -> int:
        return CATEGORY_WEIGHTS.get(self.category, 0)


@dataclass
class QueryDiagnosis:
    """One paired query's before/after numbers and ranked findings."""

    name: str
    baseline_seconds: float
    current_seconds: float
    findings: list[Finding] = field(default_factory=list)

    @property
    def slowdown(self) -> float:
        """Relative slowdown (0.5 = 50% slower; 0 when baseline is 0)."""
        if self.baseline_seconds <= 0.0:
            return 0.0
        return (
            self.current_seconds - self.baseline_seconds
        ) / self.baseline_seconds

    @property
    def top_category(self) -> Optional[str]:
        return self.findings[0].category if self.findings else None


@dataclass
class DoctorReport:
    """The full two-run comparison."""

    baseline_path: str
    current_path: str
    regression_threshold: float
    diagnoses: list[QueryDiagnosis] = field(default_factory=list)
    #: Queries present in only one of the two logs (unpairable).
    unmatched: list[str] = field(default_factory=list)

    def regressed(self) -> list[QueryDiagnosis]:
        return [
            diagnosis
            for diagnosis in self.diagnoses
            if diagnosis.slowdown > self.regression_threshold
        ]

    def top_cause(self) -> Optional[tuple[str, int]]:
        """(category, query count) of the most common top finding among
        regressed queries; ties break toward the heavier category."""
        votes: dict[str, int] = {}
        for diagnosis in self.regressed():
            category = diagnosis.top_category
            if category is not None:
                votes[category] = votes.get(category, 0) + 1
        if not votes:
            return None
        category = max(
            votes,
            key=lambda name: (
                votes[name],
                CATEGORY_WEIGHTS.get(name, 0),
                name,
            ),
        )
        return category, votes[category]

    def render(self) -> str:
        lines = [
            f"query doctor: {self.baseline_path} (baseline) vs "
            f"{self.current_path} (current), "
            f"regression threshold {self.regression_threshold:.0%}"
        ]
        regressed = self.regressed()
        lines.append(
            f"{len(self.diagnoses)} paired quer"
            f"{'y' if len(self.diagnoses) == 1 else 'ies'}, "
            f"{len(regressed)} regressed"
        )
        for diagnosis in self.diagnoses:
            marker = (
                "REGRESSED"
                if diagnosis.slowdown > self.regression_threshold
                else "ok"
            )
            lines.append("")
            lines.append(
                f"{_display_name(diagnosis.name)}: "
                f"{diagnosis.baseline_seconds:.3f}s -> "
                f"{diagnosis.current_seconds:.3f}s "
                f"({diagnosis.slowdown:+.0%})  [{marker}]"
            )
            if marker == "ok":
                continue
            if not diagnosis.findings:
                lines.append("  (no root cause identified)")
            for rank, finding in enumerate(diagnosis.findings, start=1):
                lines.append(
                    f"  {rank}. [{finding.category}] {finding.summary}"
                )
                for item in finding.evidence:
                    lines.append(f"     - {item}")
        if self.unmatched:
            lines.append("")
            lines.append(
                "unpaired queries (present in only one run): "
                + ", ".join(
                    _display_name(name) for name in self.unmatched
                )
            )
        top = self.top_cause()
        if top is not None:
            lines.append("")
            lines.append(
                f"top root cause across corpus: {top[0]} "
                f"({top[1]} quer{'y' if top[1] == 1 else 'ies'})"
            )
        return "\n".join(lines)


def _display_name(name: str, limit: int = 60) -> str:
    """Collapse a query's name (often its full SQL text) to one line."""
    flat = " ".join(name.split())
    if len(flat) <= limit:
        return flat
    return flat[: limit - 3] + "..."


# ---------------------------------------------------------------------------
# Per-query diagnosis
# ---------------------------------------------------------------------------


def _mode_flips(
    baseline: QueryRecord, current: QueryRecord
) -> Optional[Finding]:
    before = dict(baseline.operator_modes)
    flipped = [
        operator
        for operator, mode in current.operator_modes
        if mode == "row"
        and before.get(operator, "").startswith("vectorized")
    ]
    if not flipped:
        return None
    return Finding(
        category="mode-flip",
        summary=(
            f"{len(flipped)} operator(s) flipped vectorized -> row"
        ),
        evidence=[
            f"{operator}: {before[operator]} -> row"
            for operator in flipped
        ],
    )


def _spill_delta(
    baseline: QueryRecord, current: QueryRecord
) -> Optional[Finding]:
    def total(record: QueryRecord) -> int:
        return sum(int(row["bytes"]) for row in record.spills)

    before, after = total(baseline), total(current)
    if after <= before:
        return None
    owners = sorted({row["owner"] for row in current.spills})
    return Finding(
        category="spill-appeared",
        summary=(
            f"spill bytes grew {before} -> {after}"
            if before
            else f"spills appeared ({after} bytes)"
        ),
        evidence=[f"spilling operators: {', '.join(owners)}"],
    )


def _cache_regression(
    baseline: QueryRecord, current: QueryRecord
) -> Optional[Finding]:
    def outcomes(record: QueryRecord) -> dict[str, str]:
        # Last outcome per layer: re-probes supersede earlier ones.
        out: dict[str, str] = {}
        for row in record.cache_lookups:
            out[row["layer"]] = row["outcome"]
        return out

    before, after = outcomes(baseline), outcomes(current)
    lost = [
        layer
        for layer, outcome in before.items()
        if outcome == "hit" and after.get(layer) == "miss"
    ]
    if not lost:
        return None
    return Finding(
        category="cache-miss",
        summary=(
            f"cache layer(s) flipped hit -> miss: {', '.join(sorted(lost))}"
        ),
        evidence=[
            f"{layer}: hit in baseline, miss in current"
            for layer in sorted(lost)
        ],
    )


def _skew_growth(
    baseline: QueryRecord, current: QueryRecord
) -> Optional[Finding]:
    def worst(record: QueryRecord) -> float:
        return max(
            (
                float(row.get("row_skew", 0.0))
                for row in record.skew_records
            ),
            default=0.0,
        )

    before, after = worst(baseline), worst(current)
    if after < SKEW_GROWTH_FACTOR * max(before, 1.0):
        return None
    worst_row = max(
        current.skew_records,
        key=lambda row: float(row.get("row_skew", 0.0)),
    )
    heavy = ", ".join(
        f"{key}={count}"
        for key, count in (worst_row.get("heavy_keys") or [])[:3]
    )
    return Finding(
        category="skew-growth",
        summary=(
            f"shuffle row skew grew x{before:.2f} -> x{after:.2f}"
        ),
        evidence=[
            f"shuffle {worst_row['shuffle_id']}: straggler partition "
            f"{worst_row.get('straggler_partition', 0)}"
            + (f", heavy keys: {heavy}" if heavy else "")
        ],
    )


def _plan_change(
    baseline: QueryRecord, current: QueryRecord
) -> Optional[Finding]:
    shape_before = [operator for operator, __ in baseline.operator_modes]
    shape_after = [operator for operator, __ in current.operator_modes]
    plan_differs = (
        baseline.plan_text is not None
        and current.plan_text is not None
        and baseline.plan_text != current.plan_text
    )
    if shape_before == shape_after and not plan_differs:
        return None
    evidence = []
    if shape_before != shape_after:
        evidence.append(
            "operators: "
            + " ".join(shape_before)
            + "  ->  "
            + " ".join(shape_after)
        )
    if plan_differs:
        evidence.append("optimized plan text differs")
    return Finding(
        category="plan-change",
        summary="plan shape changed between runs",
        evidence=evidence,
    )


def _estimate_drift(
    baseline: QueryRecord, current: QueryRecord
) -> Optional[Finding]:
    def worst(record: QueryRecord) -> tuple[float, Optional[dict]]:
        top, top_row = 0.0, None
        for row in record.operator_profiles:
            error = row.get("q_error")
            if error is not None and float(error) > top:
                top, top_row = float(error), row
        return top, top_row

    before, __ = worst(baseline)
    after, after_row = worst(current)
    if after_row is None or after < ESTIMATE_DRIFT_FACTOR * max(
        before, 1.0
    ):
        return None
    return Finding(
        category="estimate-drift",
        summary=(
            f"worst q-error grew x{before:.1f} -> x{after:.1f}"
        ),
        evidence=[
            f"{after_row['operator']}: est {after_row.get('est_rows')} "
            f"({after_row.get('est_source')}) vs actual "
            f"{after_row.get('actual_rows')} rows"
        ],
    )


def _stage_slowdown(
    baseline: QueryRecord, current: QueryRecord
) -> Optional[Finding]:
    before = {
        (row["stage_id"], row["name"]): float(row["sim_seconds"])
        for row in baseline.stage_sim
    }
    worst_key, worst_delta, after_seconds = None, 0.0, 0.0
    for row in current.stage_sim:
        key = (row["stage_id"], row["name"])
        delta = float(row["sim_seconds"]) - before.get(key, 0.0)
        if delta > worst_delta:
            worst_key, worst_delta = key, delta
            after_seconds = float(row["sim_seconds"])
    if worst_key is None:
        return None
    return Finding(
        category="stage-slowdown",
        summary=(
            f"stage {worst_key[0]} ({worst_key[1]}) slowed by "
            f"{worst_delta:.3f} sim-s"
        ),
        evidence=[
            f"{before.get(worst_key, 0.0):.3f}s -> {after_seconds:.3f}s"
        ],
    )


_CHECKS = (
    _mode_flips,
    _spill_delta,
    _cache_regression,
    _skew_growth,
    _plan_change,
    _estimate_drift,
    _stage_slowdown,
)


def diagnose_pair(
    baseline: QueryRecord, current: QueryRecord
) -> list[Finding]:
    """Ranked root-cause findings for one baseline/current query pair."""
    findings = [
        finding
        for check in _CHECKS
        for finding in [check(baseline, current)]
        if finding is not None
    ]
    findings.sort(key=lambda finding: (-finding.weight, finding.category))
    return findings


# ---------------------------------------------------------------------------
# Corpus pairing and the report
# ---------------------------------------------------------------------------


def _pair_queries(
    baseline: HistoryStore, current: HistoryStore
) -> tuple[list[tuple[QueryRecord, QueryRecord]], list[str]]:
    """Pair queries by name, in order of occurrence (a corpus may run
    the same statement twice)."""
    remaining: dict[str, list[QueryRecord]] = {}
    for record in current.queries:
        remaining.setdefault(record.name, []).append(record)
    pairs: list[tuple[QueryRecord, QueryRecord]] = []
    unmatched: list[str] = []
    for record in baseline.queries:
        bucket = remaining.get(record.name)
        if bucket:
            pairs.append((record, bucket.pop(0)))
        else:
            unmatched.append(record.name or record.query_id)
    for bucket in remaining.values():
        unmatched.extend(
            record.name or record.query_id for record in bucket
        )
    return pairs, unmatched


def diagnose(
    baseline: HistoryStore,
    current: HistoryStore,
    regression_threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    metrics=None,
) -> DoctorReport:
    """Compare two loaded histories; optionally count findings into a
    :class:`~repro.obs.metrics.MetricsRegistry`."""
    pairs, unmatched = _pair_queries(baseline, current)
    report = DoctorReport(
        baseline_path=baseline.files[0] if baseline.files else "?",
        current_path=current.files[0] if current.files else "?",
        regression_threshold=regression_threshold,
        unmatched=unmatched,
    )
    total_findings = 0
    for record_a, record_b in pairs:
        diagnosis = QueryDiagnosis(
            name=record_a.name or record_a.query_id,
            baseline_seconds=record_a.sim_seconds,
            current_seconds=record_b.sim_seconds,
        )
        if diagnosis.slowdown > regression_threshold:
            diagnosis.findings = diagnose_pair(record_a, record_b)
            total_findings += len(diagnosis.findings)
        report.diagnoses.append(diagnosis)
    if metrics is not None and total_findings:
        metrics.inc("doctor.findings", total_findings)
    return report


def diagnose_logs(
    log_a,
    log_b,
    regression_threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    metrics=None,
) -> DoctorReport:
    """Convenience wrapper over paths: load, then :func:`diagnose`."""
    return diagnose(
        HistoryStore.load(log_a),
        HistoryStore.load(log_b),
        regression_threshold=regression_threshold,
        metrics=metrics,
    )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.doctor",
        description=(
            "Diff two event logs of the same query corpus and rank "
            "evidence-backed root causes for each regression."
        ),
    )
    parser.add_argument("log_a", help="baseline event log (file or dir)")
    parser.add_argument("log_b", help="current event log (file or dir)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_REGRESSION_THRESHOLD,
        help=(
            "relative slowdown that counts as a regression "
            "(default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--report", help="also write the rendered report to this file"
    )
    args = parser.parse_args(argv)
    try:
        report = diagnose_logs(
            args.log_a, args.log_b, regression_threshold=args.threshold
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    text = report.render()
    print(text)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())

"""Named counters, gauges and histograms for the whole engine.

One :class:`MetricsRegistry` lives on each tracer (and therefore each
:class:`~repro.engine.context.EngineContext`).  Unlike span collection,
the registry is always on: increments are plain dict operations, cheap
enough for the hot path, and the shell's ``.metrics`` dot-command must
show engine activity without the user having opted into tracing.

Naming convention: dotted lowercase paths grouped by subsystem, e.g.
``tasks.launched``, ``shuffle.write.bytes``, ``blocks.evicted``,
``pde.join_decisions``, ``workers.killed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Raw samples kept per histogram for exact percentiles; beyond this the
#: log-scale buckets answer (bounded memory, ~12% relative error).
_EXACT_SAMPLE_CAP = 4096

#: Log-scale bucket resolution: buckets per decade of value.
_BUCKETS_PER_DECADE = 20


def _bucket_of(value: float) -> int:
    """Bucket index for a positive value (log-scale)."""
    return math.floor(math.log10(value) * _BUCKETS_PER_DECADE)


def _bucket_upper(index: int) -> float:
    """Upper bound of a bucket (its representative value)."""
    return 10.0 ** ((index + 1) / _BUCKETS_PER_DECADE)


def percentiles_of(values: list[float], quantiles=(0.5, 0.95, 0.99)):
    """Exact nearest-rank percentiles of an in-memory value list."""
    if not values:
        return [0.0 for __ in quantiles]
    ordered = sorted(values)
    out = []
    for quantile in quantiles:
        rank = max(math.ceil(quantile * len(ordered)), 1) - 1
        out.append(ordered[min(rank, len(ordered) - 1)])
    return out


@dataclass
class Histogram:
    """Streaming summary of observed values with percentile estimates.

    Keeps every sample up to :data:`_EXACT_SAMPLE_CAP` (exact
    percentiles), then falls back to log-scale buckets: bounded memory,
    deterministic, and within ~12% relative error — enough for the
    p50/p95/p99 the shell's ``.metrics`` view reports.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))
    _samples: list[float] = field(default_factory=list, repr=False)
    _buckets: dict[int, int] = field(default_factory=dict, repr=False)
    #: Observations <= 0 (log buckets cannot hold them).
    _nonpositive: int = field(default=0, repr=False)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < _EXACT_SAMPLE_CAP:
            self._samples.append(value)
        if value > 0:
            bucket = _bucket_of(value)
            self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        else:
            self._nonpositive += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> float:
        """Value at ``quantile`` (0..1): exact while the sample buffer is
        complete, log-bucket estimate after, clamped to [min, max]."""
        if self.count == 0:
            return 0.0
        if len(self._samples) == self.count:
            return percentiles_of(self._samples, (quantile,))[0]
        target = max(math.ceil(quantile * self.count), 1)
        seen = self._nonpositive
        if seen >= target:
            return max(self.min, 0.0) if self.min <= 0 else self.min
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= target:
                estimate = _bucket_upper(bucket)
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - defensive

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/mean plus p50/p95/p99, JSON-ready."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """All named metrics of one engine context."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # ------------------------------------------------------------------
    # One-line emit helpers (the instrumented call sites use these)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter or gauge (0 when never emitted)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return default

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Plain-data view, stable key order, for tests and exporters."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.summary()
                for name, metric in sorted(self._histograms.items())
            },
        }

    def describe(self) -> str:
        """Human-readable dump for the shell's ``.metrics`` command."""
        lines: list[str] = []
        for name, metric in sorted(self._counters.items()):
            lines.append(f"{name} = {_number(metric.value)}")
        for name, metric in sorted(self._gauges.items()):
            lines.append(f"{name} = {_number(metric.value)} (gauge)")
        for name, metric in sorted(self._histograms.items()):
            if metric.count:
                lines.append(
                    f"{name}: count={metric.count} mean={metric.mean:.3f} "
                    f"p50={_number(metric.percentile(0.50))} "
                    f"p95={_number(metric.percentile(0.95))} "
                    f"p99={_number(metric.percentile(0.99))} "
                    f"min={_number(metric.min)} max={_number(metric.max)}"
                )
            else:
                lines.append(f"{name}: count=0")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )


def _number(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.3f}"

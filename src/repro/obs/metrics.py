"""Named counters, gauges and histograms for the whole engine.

One :class:`MetricsRegistry` lives on each tracer (and therefore each
:class:`~repro.engine.context.EngineContext`).  Unlike span collection,
the registry is always on: increments are plain dict operations, cheap
enough for the hot path, and the shell's ``.metrics`` dot-command must
show engine activity without the user having opted into tracing.

Naming convention: dotted lowercase paths grouped by subsystem, e.g.
``tasks.launched``, ``shuffle.write.bytes``, ``blocks.evicted``,
``pde.join_decisions``, ``workers.killed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """All named metrics of one engine context."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # ------------------------------------------------------------------
    # One-line emit helpers (the instrumented call sites use these)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter or gauge (0 when never emitted)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return default

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Plain-data view, stable key order, for tests and exporters."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.min if metric.count else 0.0,
                    "max": metric.max if metric.count else 0.0,
                    "mean": metric.mean,
                }
                for name, metric in sorted(self._histograms.items())
            },
        }

    def describe(self) -> str:
        """Human-readable dump for the shell's ``.metrics`` command."""
        lines: list[str] = []
        for name, metric in sorted(self._counters.items()):
            lines.append(f"{name} = {_number(metric.value)}")
        for name, metric in sorted(self._gauges.items()):
            lines.append(f"{name} = {_number(metric.value)} (gauge)")
        for name, metric in sorted(self._histograms.items()):
            if metric.count:
                lines.append(
                    f"{name}: count={metric.count} mean={metric.mean:.3f} "
                    f"min={_number(metric.min)} max={_number(metric.max)}"
                )
            else:
                lines.append(f"{name}: count=0")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )


def _number(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.3f}"

"""``EXPLAIN ANALYZE``: executed-stage statistics behind the plan text.

The session runs the query for real, collects every job's
:class:`~repro.engine.metrics.QueryProfile` (PDE pre-shuffles, sampling
jobs, the final collect), and hands them here.  Each executed stage is
annotated with task counts, attempts, rows, shuffle bytes, and the
simulated seconds the discrete-event
:class:`~repro.costmodel.simulator.ClusterSimulator` charges for it on
the session's own virtual cluster (not the paper's 100 nodes — the
point is to show where *this* query spent its modelled time).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.costmodel.constants import (
    DEFAULT_HARDWARE,
    EngineProfile,
    SHARK_MEM,
)
from repro.costmodel.simulator import ClusterSimulator, StageCost
from repro.engine.metrics import QueryProfile, StageProfile


@dataclass
class StageAnalysis:
    """One executed stage's annotations."""

    job_id: int
    stage_id: int
    name: str
    kind: str  # "shuffle-map" | "result"
    num_tasks: int
    total_attempts: int
    records_in: int
    records_out: int
    bytes_in: int
    shuffle_read_bytes: int
    shuffle_write_bytes: int
    sim_seconds: float

    def render(self) -> str:
        parts = [f"{self.num_tasks} tasks"]
        if self.total_attempts != self.num_tasks:
            parts[-1] += f" ({self.total_attempts} attempts)"
        parts.append(
            f"rows {self.records_in} -> {self.records_out}"
        )
        parts.append(f"input {_bytes(self.bytes_in)}")
        if self.shuffle_read_bytes:
            parts.append(f"shuffle read {_bytes(self.shuffle_read_bytes)}")
        if self.shuffle_write_bytes:
            parts.append(
                f"shuffle write {_bytes(self.shuffle_write_bytes)}"
            )
        parts.append(f"{self.sim_seconds:.3f} sim-s")
        return (
            f"stage {self.stage_id} ({self.kind}, {self.name}): "
            + ", ".join(parts)
        )


@dataclass
class QueryAnalysis:
    """The full EXPLAIN ANALYZE payload."""

    plan_text: str
    stages: list[StageAnalysis] = field(default_factory=list)
    total_sim_seconds: float = 0.0
    recovered_tasks: int = 0
    retried_tasks: int = 0
    speculative_tasks: int = 0
    blacklisted_workers: int = 0
    evicted_blocks: int = 0
    evicted_bytes: int = 0
    num_jobs: int = 0
    result_rows: Optional[int] = None
    #: Unified memory-accounting rollup: bytes reserved across jobs, the
    #: engine peak watermark, per-(worker, pool) watermark rows from
    #: MemoryAccountant.watermarks(), and pressure-event count.
    memory_reserved_bytes: int = 0
    memory_peak_bytes: int = 0
    memory_rows: list[dict] = field(default_factory=list)
    memory_pressure_events: int = 0
    #: Arbitration spills this query forced: event/byte/run totals plus
    #: per-owner rows from MemoryAccountant.spill_rows_since().
    memory_spill_events: int = 0
    memory_spill_bytes: int = 0
    memory_spill_rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: (operator label, mode) pairs from the planner: which operators ran
    #: vectorized (batch kernels) and which ran row-at-a-time.
    operator_modes: list[tuple[str, str]] = field(default_factory=list)
    #: Multi-tenant serving summary lines (SqlServer.summary_lines());
    #: empty when the session runs outside a server.
    serving_lines: list[str] = field(default_factory=list)
    #: Query-cache summary lines (SqlCache.summary_lines()); empty when
    #: the session runs without the caching stack.
    sql_cache_lines: list[str] = field(default_factory=list)
    #: Per-operator est/actual/q-error profile dicts
    #: (repro.obs.planquality.build_operator_profiles shape).
    operator_profiles: list[dict] = field(default_factory=list)
    #: Per-shuffle skew records (ShuffleManager.skew_records shape).
    shuffle_skew: list[dict] = field(default_factory=list)

    def render(self) -> str:
        lines = self.plan_text.splitlines()
        lines.append("")
        lines.append(
            f"== runtime profile ({self.num_jobs} job"
            f"{'s' if self.num_jobs != 1 else ''}, "
            f"{self.total_sim_seconds:.3f} simulated seconds) =="
        )
        for stage in self.stages:
            lines.append("  " + stage.render())
        if self.recovered_tasks:
            lines.append(
                f"  recovered tasks (lineage re-execution): "
                f"{self.recovered_tasks}"
            )
        if self.retried_tasks:
            lines.append(
                f"  retried tasks (transient failures): "
                f"{self.retried_tasks}"
            )
        if self.speculative_tasks:
            lines.append(
                f"  speculative tasks (straggler backups): "
                f"{self.speculative_tasks}"
            )
        if self.blacklisted_workers:
            lines.append(
                f"  blacklisted workers: {self.blacklisted_workers}"
            )
        if self.evicted_blocks:
            lines.append(
                f"  evicted cache blocks (memory pressure): "
                f"{self.evicted_blocks} ({_bytes(self.evicted_bytes)})"
            )
        if self.memory_reserved_bytes or self.memory_rows:
            lines.append("  == memory ==")
            lines.append(
                f"  reserved {_bytes(self.memory_reserved_bytes)}, "
                f"peak watermark {_bytes(self.memory_peak_bytes)}"
            )
            for row in self.memory_rows:
                worker = row["worker"]
                label = "driver" if worker == -1 else f"worker {worker}"
                lines.append(
                    f"  {label} {row['pool']}: "
                    f"used {_bytes(row.get('used_bytes', 0))}, "
                    f"peak {_bytes(row['peak_bytes'])}"
                )
            if self.memory_pressure_events:
                lines.append(
                    f"  pressure events: {self.memory_pressure_events}"
                )
            if self.memory_spill_events:
                lines.append(
                    f"  spills: {self.memory_spill_events} event(s), "
                    f"{_bytes(self.memory_spill_bytes)} to disk"
                )
                for row in self.memory_spill_rows:
                    lines.append(
                        f"  spill {row['owner']}: "
                        f"{row['events']} event(s), "
                        f"{_bytes(row['bytes'])} in "
                        f"{row['runs']} run(s)"
                    )
        if self.result_rows is not None:
            lines.append(f"  result: {self.result_rows} row(s)")
        if self.operator_modes:
            lines.append("  == operator modes ==")
            for operator, mode in self.operator_modes:
                lines.append(f"  {operator}: {mode}")
        if self.operator_profiles:
            from repro.obs.planquality import (
                DEFAULT_Q_ERROR_THRESHOLD,
                audit,
                format_profile_line,
            )

            lines.append("  == plan quality (est vs actual) ==")
            for profile in self.operator_profiles:
                lines.append(
                    "  "
                    + format_profile_line(
                        profile, DEFAULT_Q_ERROR_THRESHOLD
                    )
                )
            flagged = audit(
                self.operator_profiles, DEFAULT_Q_ERROR_THRESHOLD
            )
            if flagged:
                lines.append(
                    f"  audit: {len(flagged)} misestimate(s) with "
                    f"q-error > {DEFAULT_Q_ERROR_THRESHOLD:g} "
                    f"(worst: {flagged[0]['operator']} "
                    f"x{flagged[0]['q_error']:.1f})"
                )
        if self.shuffle_skew:
            lines.append("  == shuffle skew ==")
            for row in self.shuffle_skew:
                heavy = ", ".join(
                    f"{key}={count}"
                    for key, count in (row.get("heavy_keys") or [])[:3]
                )
                lines.append(
                    f"  shuffle {row['shuffle_id']}: "
                    f"{row['num_reduces']} reduces, "
                    f"{row.get('total_rows', 0)} rows, "
                    f"row skew x{row.get('row_skew', 0.0):.2f}, "
                    f"byte skew x{row.get('byte_skew', 0.0):.2f}, "
                    f"straggler partition "
                    f"{row.get('straggler_partition', 0)}"
                    + (f" [{heavy}]" if heavy else "")
                )
        if self.serving_lines:
            lines.append("  == serving ==")
            for line in self.serving_lines:
                lines.append(f"  {line}")
        if self.sql_cache_lines:
            lines.append("  == sql cache ==")
            for line in self.sql_cache_lines:
                lines.append(f"  {line}")
        for note in self.notes:
            lines.append(f"  -- {note}")
        return "\n".join(lines)


def analyze_profiles(
    plan_text: str,
    profiles: list[QueryProfile],
    num_workers: int,
    cores_per_worker: int,
    engine: EngineProfile = SHARK_MEM,
    result_rows: Optional[int] = None,
    notes: Optional[list[str]] = None,
    operator_modes: Optional[list[tuple[str, str]]] = None,
    memory_rows: Optional[list[dict]] = None,
    memory_pressure_events: int = 0,
    memory_spills: Optional[list[dict]] = None,
    operator_profiles: Optional[list[dict]] = None,
    shuffle_skew: Optional[list[dict]] = None,
) -> QueryAnalysis:
    """Annotate ``plan_text`` with the executed profiles' statistics.

    Simulated seconds come from list-scheduling each executed stage's
    measured per-task cost vectors onto the session's own virtual
    cluster geometry (``num_workers`` x ``cores_per_worker``).
    """
    hardware = replace(DEFAULT_HARDWARE, cores_per_node=cores_per_worker)
    simulator = ClusterSimulator(
        max(num_workers, 1), engine=engine, hardware=hardware
    )
    analysis = QueryAnalysis(
        plan_text=plan_text,
        num_jobs=len(profiles),
        result_rows=result_rows,
        notes=list(notes or []),
        operator_modes=list(operator_modes or []),
        memory_rows=list(memory_rows or []),
        memory_pressure_events=memory_pressure_events,
        memory_spill_rows=list(memory_spills or []),
        operator_profiles=list(operator_profiles or []),
        shuffle_skew=list(shuffle_skew or []),
    )
    for row in analysis.memory_spill_rows:
        analysis.memory_spill_events += row["events"]
        analysis.memory_spill_bytes += row["bytes"]
    executed: list[tuple[QueryProfile, StageProfile]] = []
    for profile in profiles:
        analysis.recovered_tasks += profile.recovered_tasks
        analysis.retried_tasks += profile.retried_tasks
        analysis.speculative_tasks += profile.speculative_tasks
        analysis.blacklisted_workers += profile.blacklisted_workers
        analysis.evicted_blocks += profile.evicted_blocks
        analysis.evicted_bytes += profile.evicted_bytes
        analysis.memory_reserved_bytes += profile.memory_reserved_bytes
        analysis.memory_peak_bytes = max(
            analysis.memory_peak_bytes, profile.memory_peak_bytes
        )
        for stage in profile.stages:
            if stage.num_tasks == 0:
                continue  # skipped: shuffle outputs reused
            executed.append((profile, stage))
    costs = simulator.simulate(
        [
            StageCost(name=stage.name, tasks=stage.cost_vectors())
            for __, stage in executed
        ]
    )
    analysis.total_sim_seconds = costs.total_seconds
    for (profile, stage), result in zip(executed, costs.stages):
        analysis.stages.append(
            StageAnalysis(
                job_id=profile.job_id,
                stage_id=stage.stage_id,
                name=stage.name,
                kind="shuffle-map" if stage.is_shuffle_map else "result",
                num_tasks=stage.num_tasks,
                total_attempts=stage.total_attempts,
                records_in=stage.records_in,
                records_out=stage.records_out,
                bytes_in=stage.bytes_in,
                shuffle_read_bytes=stage.shuffle_read_bytes,
                shuffle_write_bytes=stage.shuffle_write_bytes,
                sim_seconds=result.seconds,
            )
        )
    return analysis


def _bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{int(count)}B"  # pragma: no cover - unreachable

"""Persistent query event log and the always-on flight recorder.

PR 1's tracer and metrics die with the process; this module is what
makes them durable.  Two pieces:

* :class:`EventLogWriter` — streams one JSONL record per event to a
  (optionally gzipped) file: a ``header`` with the schema version and
  cluster geometry, then for each query its begin/plan/operator-modes
  records, the span+instant timeline in simulated-clock order, the
  executed job/stage/task profile (every
  :class:`~repro.engine.metrics.TaskMetrics` field, so
  :class:`~repro.obs.history.HistoryStore` can rebuild the exact
  :class:`~repro.engine.metrics.QueryProfile` aggregates), counter
  deltas, and a ``query_end`` with status and simulated seconds.  Every
  record is schema-checked on write (:data:`_REQUIRED`); a malformed
  record raises :class:`EventLogSchemaError` instead of producing a log
  the history store cannot parse.

* :class:`FlightRecorder` — a bounded ring buffer the tracer feeds on
  *every* span/instant emit, before the enabled check, so it is live
  even with tracing off.  When a query fails, is cancelled, or expires
  its deadline, the tracer dumps the last N events as a ``flight_dump``
  record — into the open event log if one is attached, else to a file
  under :attr:`FlightRecorder.dump_dir`, else kept in memory — giving
  chaos-test post-mortems a partial timeline with no opt-in tracing.

Schema versioning rules live in DESIGN.md §10: adding optional fields is
backward-compatible within a version; removing or renaming a field, or
changing a record type's meaning, bumps :data:`SCHEMA_VERSION` and the
history store refuses unknown major versions rather than misreading
them.  Timestamps are simulated seconds (never wall clock), so two runs
of the same query produce byte-identical logs.
"""

from __future__ import annotations

import gzip
import json
import os
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.metrics import QueryProfile

#: Event-log schema version written into every ``header`` record.
#: v2 adds the ``memory_watermark`` record type and the job record's
#: ``memory_reserved_bytes``/``memory_peak_bytes`` fields (DESIGN.md §11).
#: v3 adds the ``memory_spill`` record type (per-owner spill totals for
#: one query) plus *optional* job/task spill fields — optional so v2
#: logs still load (DESIGN.md §12).
#: v4 adds *optional* serving fields — ``tenant``/``priority`` on
#: ``query_begin`` and ``shed_reason`` on ``query_end`` — plus the
#: ``query.shed`` instant; all optional, so v3/v2 logs still load
#: (DESIGN.md §13).
#: v5 adds the ``cache_lookup`` record type (one per cache-layer probe
#: the SQL caching stack made for a query); older logs simply have none
#: (DESIGN.md §14).
#: v6 adds the ``operator_profile`` record type (per-operator estimated
#: vs. actual rows with q-error), the ``shuffle_skew`` record type
#: (per-shuffle partition histograms and heavy keys), and an *optional*
#: ``operator_rows`` field on ``task`` records — all additive, so
#: v2–v5 logs still load (DESIGN.md §15).
SCHEMA_VERSION = 6

#: Flight-recorder ring capacity (events kept for post-mortems).
FLIGHT_CAPACITY = 512


class EventLogSchemaError(ValueError):
    """A record failed schema validation at write time (or load time)."""


#: Required fields per record type — the schema, version 1.  ``seq`` is
#: stamped by the writer; everything else must be present at write time.
_REQUIRED: dict[str, tuple[str, ...]] = {
    "header": ("version", "workers", "cores_per_worker"),
    "query_begin": ("query_id", "name", "kind", "ts"),
    "plan": ("query_id", "text"),
    "operator_modes": ("query_id", "modes"),
    "span": ("query_id", "name", "category", "lane", "start", "end"),
    "instant": ("query_id", "name", "category", "lane", "ts"),
    "job": ("query_id", "job_id", "num_stages"),
    "stage": (
        "query_id",
        "job_id",
        "stage_id",
        "name",
        "is_shuffle_map",
        "num_tasks",
    ),
    "task": (
        "query_id",
        "job_id",
        "stage_id",
        "partition",
        "worker_id",
        "records_in",
        "bytes_in",
        "records_out",
        "bytes_out",
        "shuffle_read_bytes",
        "shuffle_write_bytes",
        "shuffle_write_records",
        "source",
        "attempts",
        "speculative",
        "batch_rows",
    ),
    "counters": ("query_id", "deltas"),
    "memory_watermark": ("query_id", "worker", "pool", "peak_bytes", "ts"),
    "memory_spill": ("query_id", "owner", "events", "bytes", "runs", "ts"),
    "cache_lookup": ("query_id", "layer", "outcome", "ts"),
    "operator_profile": (
        "query_id",
        "operator",
        "op_id",
        "mode",
        "est_rows",
        "est_source",
        "actual_rows",
        "q_error",
    ),
    "shuffle_skew": (
        "query_id",
        "shuffle_id",
        "num_reduces",
        "rows",
        "bytes",
        "ts",
    ),
    "query_end": ("query_id", "status", "ts", "sim_seconds"),
    "flight_dump": ("reason", "events"),
}


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of span/instant args to JSON-safe data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


def validate_record(record: dict) -> dict:
    """Schema-check one record; returns it unchanged or raises."""
    record_type = record.get("type")
    if record_type not in _REQUIRED:
        raise EventLogSchemaError(
            f"unknown event-log record type {record_type!r}"
        )
    missing = [
        key for key in _REQUIRED[record_type] if key not in record
    ]
    if missing:
        raise EventLogSchemaError(
            f"{record_type} record missing fields {missing}"
        )
    return record


class FlightRecorder:
    """Bounded ring of the engine's most recent trace-shaped events.

    Fed by the tracer before its ``enabled`` check, so it costs one
    deque append on the hot path and is never off.  Records are plain
    dicts in the event-log ``span``/``instant`` shape (without
    ``query_id`` — the enclosing ``flight_dump`` record carries that).
    """

    def __init__(self, capacity: int = FLIGHT_CAPACITY) -> None:
        self._ring: deque[dict] = deque(maxlen=capacity)
        #: When set, dumps also stream into the open event log.
        self.sink: Optional[Callable[[dict], None]] = None
        #: When set (and no sink), dumps are written here as one-record
        #: JSONL files the history CLI loads like any other log.
        self.dump_dir: Optional[str] = None
        #: The most recent dump, always kept in memory.
        self.last_dump: Optional[dict] = None
        self._dump_count = 0

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, event: dict) -> None:
        self._ring.append(event)

    def events(self) -> list[dict]:
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def dump(
        self, reason: str, query: Optional[str] = None
    ) -> dict:
        """Snapshot the ring as a ``flight_dump`` record and persist it.

        Deterministic: the dump sequence number, not the wall clock,
        names on-disk dump files.
        """
        record = validate_record(
            {
                "type": "flight_dump",
                "reason": reason,
                "query_id": query,
                "seq": self._dump_count,
                "events": [
                    {
                        key: _jsonable(value)
                        for key, value in event.items()
                    }
                    for event in self._ring
                ],
            }
        )
        self._dump_count += 1
        self.last_dump = record
        if self.sink is not None:
            self.sink(record)
        elif self.dump_dir:
            os.makedirs(self.dump_dir, exist_ok=True)
            path = os.path.join(
                self.dump_dir, f"flight-{record['seq']:04d}.jsonl"
            )
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return record


class EventLogWriter:
    """Streams schema-checked JSONL records to one event-log file.

    Gzip-compressed when ``path`` ends in ``.gz``.  The constructor
    writes the ``header`` record; :meth:`write_query` emits one query's
    records in canonical order.  Pass the context's metrics registry to
    keep ``events.logged`` / ``eventlog.queries`` live.
    """

    def __init__(
        self,
        path,
        workers: int,
        cores_per_worker: int,
        metrics=None,
        **header_extra: Any,
    ) -> None:
        self.path = str(path)
        self.metrics = metrics
        self.queries_logged = 0
        self._seq = 0
        self._closed = False
        if self.path.endswith(".gz"):
            self._handle = gzip.open(self.path, "wt", encoding="utf-8")
        else:
            self._handle = open(self.path, "w", encoding="utf-8")
        self.write(
            {
                "type": "header",
                "version": SCHEMA_VERSION,
                "workers": workers,
                "cores_per_worker": cores_per_worker,
                **{
                    key: _jsonable(value)
                    for key, value in header_extra.items()
                },
            }
        )

    # ------------------------------------------------------------------
    # Low-level record writing
    # ------------------------------------------------------------------
    def write(self, record: dict) -> None:
        if self._closed:
            raise EventLogSchemaError(
                f"event log {self.path} is closed"
            )
        validate_record(record)
        record = {"seq": self._seq, **record}
        self._seq += 1
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        if self.metrics is not None:
            self.metrics.inc("events.logged")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._handle.close()

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # One query, canonical record order
    # ------------------------------------------------------------------
    def write_query(
        self,
        *,
        name: str,
        kind: str = "sql",
        text: Optional[str] = None,
        status: str = "ok",
        error: Optional[str] = None,
        profiles: Optional[list[QueryProfile]] = None,
        spans: Optional[list] = None,
        events: Optional[list] = None,
        counter_deltas: Optional[dict[str, float]] = None,
        plan_text: Optional[str] = None,
        operator_modes: Optional[list[tuple[str, str]]] = None,
        result_rows: Optional[int] = None,
        sim_seconds: float = 0.0,
        stage_sim: Optional[list[dict]] = None,
        started: float = 0.0,
        ended: float = 0.0,
        query_id: Optional[str] = None,
        flight: Optional[dict] = None,
        memory: Optional[list[dict]] = None,
        spills: Optional[list[dict]] = None,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
        shed_reason: Optional[str] = None,
        cache_lookups: Optional[list[dict]] = None,
        operator_profiles: Optional[list[dict]] = None,
        shuffle_skew: Optional[list[dict]] = None,
    ) -> str:
        """Write one query's complete record set; returns its id.

        ``spans``/``events`` are the tracer's
        :class:`~repro.obs.tracer.Span` / ``TraceEvent`` objects for
        this query; their timeline is merged deterministically by
        (simulated timestamp, emission order).  ``profiles`` round-trip
        every TaskMetrics field so the history store reproduces the
        live aggregates exactly.
        """
        if query_id is None:
            query_id = f"q{self.queries_logged:04d}"
        self.queries_logged += 1
        begin: dict[str, Any] = {
            "type": "query_begin",
            "query_id": query_id,
            "name": name,
            "kind": kind,
            "text": text,
            "ts": started,
        }
        # v4 optional serving fields: written only when set, never in
        # _REQUIRED — both choices keep v3/v2 logs loadable.
        if tenant is not None:
            begin["tenant"] = tenant
        if priority is not None:
            begin["priority"] = priority
        self.write(begin)
        if plan_text:
            self.write(
                {"type": "plan", "query_id": query_id, "text": plan_text}
            )
        if operator_modes:
            self.write(
                {
                    "type": "operator_modes",
                    "query_id": query_id,
                    "modes": [
                        [operator, mode]
                        for operator, mode in operator_modes
                    ],
                }
            )
        for row in operator_profiles or []:
            # v6: one record per planner-stamped operator with its
            # estimated vs. actual rows and q-error (nulls when a side
            # is unknown); ``detail`` is optional.
            self.write(
                {
                    "type": "operator_profile",
                    "query_id": query_id,
                    **{
                        key: _jsonable(value)
                        for key, value in row.items()
                    },
                }
            )
        for record in _timeline_records(query_id, spans, events):
            self.write(record)
        for profile in profiles or []:
            self.write(
                {
                    "type": "job",
                    "query_id": query_id,
                    "job_id": profile.job_id,
                    "num_stages": profile.num_stages,
                    "recovered_tasks": profile.recovered_tasks,
                    "retried_tasks": profile.retried_tasks,
                    "speculative_tasks": profile.speculative_tasks,
                    "blacklisted_workers": profile.blacklisted_workers,
                    "evicted_blocks": profile.evicted_blocks,
                    "evicted_bytes": profile.evicted_bytes,
                    "memory_reserved_bytes": profile.memory_reserved_bytes,
                    "memory_peak_bytes": profile.memory_peak_bytes,
                    # v3 optional fields: absent in v2 logs, read with .get.
                    "memory_spill_events": profile.memory_spill_events,
                    "memory_spill_bytes": profile.memory_spill_bytes,
                }
            )
            for stage in profile.stages:
                self.write(
                    {
                        "type": "stage",
                        "query_id": query_id,
                        "job_id": profile.job_id,
                        "stage_id": stage.stage_id,
                        "name": stage.name,
                        "is_shuffle_map": stage.is_shuffle_map,
                        "map_side_combined": stage.map_side_combined,
                        "num_tasks": stage.num_tasks,
                    }
                )
                for task in stage.tasks:
                    self.write(
                        {
                            "type": "task",
                            "query_id": query_id,
                            "job_id": profile.job_id,
                            "stage_id": task.stage_id,
                            "partition": task.partition,
                            "worker_id": task.worker_id,
                            "records_in": task.records_in,
                            "bytes_in": task.bytes_in,
                            "records_out": task.records_out,
                            "bytes_out": task.bytes_out,
                            "shuffle_read_bytes": task.shuffle_read_bytes,
                            "shuffle_write_bytes": (
                                task.shuffle_write_bytes
                            ),
                            "shuffle_write_records": (
                                task.shuffle_write_records
                            ),
                            "source": task.source,
                            "attempts": task.attempts,
                            "speculative": task.speculative,
                            "batch_rows": task.batch_rows,
                            # v3 optional fields (never in _REQUIRED —
                            # that would reject v2 logs at read time).
                            "spill_bytes_written": (
                                task.spill_bytes_written
                            ),
                            "spill_bytes_read": task.spill_bytes_read,
                            # v6 optional field, written only when a
                            # physical operator counted rows in this
                            # task (keeps v5-shaped tasks unchanged).
                            **(
                                {
                                    "operator_rows": dict(
                                        sorted(
                                            task.operator_rows.items()
                                        )
                                    )
                                }
                                if task.operator_rows
                                else {}
                            ),
                        }
                    )
        if counter_deltas:
            self.write(
                {
                    "type": "counters",
                    "query_id": query_id,
                    "deltas": {
                        key: value
                        for key, value in sorted(counter_deltas.items())
                        if value
                    },
                }
            )
        for row in memory or []:
            # One record per (worker, pool) from the accountant's
            # watermarks(); peaks round-trip exactly into the history
            # store's pressure timeline.
            self.write(
                {
                    "type": "memory_watermark",
                    "query_id": query_id,
                    "worker": row["worker"],
                    "pool": row["pool"],
                    "used_bytes": row.get("used_bytes", 0),
                    "peak_bytes": row["peak_bytes"],
                    "owners": _jsonable(row.get("owners", {})),
                    "ts": ended,
                }
            )
        for row in spills or []:
            # One record per spilling owner (batch_aggregate /
            # hash_aggregate / sort) with this query's deltas from the
            # accountant's spill_rows_since().
            self.write(
                {
                    "type": "memory_spill",
                    "query_id": query_id,
                    "owner": row["owner"],
                    "events": row["events"],
                    "bytes": row["bytes"],
                    "runs": row["runs"],
                    "ts": ended,
                }
            )
        for row in cache_lookups or []:
            # v5: one record per cache-layer probe ({"layer", "outcome"}
            # plus optional fragment hit/miss counts) from the SQL
            # caching stack.
            self.write(
                {
                    "type": "cache_lookup",
                    "query_id": query_id,
                    "ts": ended,
                    **{
                        key: _jsonable(value)
                        for key, value in row.items()
                    },
                }
            )
        for row in shuffle_skew or []:
            # v6: one record per shuffle boundary with per-partition
            # row/byte histograms, skew ratios, and heavy reduce keys
            # from the shuffle manager's merged map partials.
            self.write(
                {
                    "type": "shuffle_skew",
                    "query_id": query_id,
                    "ts": ended,
                    **{
                        key: _jsonable(value)
                        for key, value in row.items()
                    },
                }
            )
        if flight is not None:
            self.write({**flight, "query_id": query_id})
        end: dict[str, Any] = {
            "type": "query_end",
            "query_id": query_id,
            "status": status,
            "error": error,
            "ts": ended,
            "sim_seconds": sim_seconds,
            "stage_sim": stage_sim or [],
            "result_rows": result_rows,
        }
        if shed_reason is not None:
            end["shed_reason"] = shed_reason
        self.write(end)
        if self.metrics is not None:
            self.metrics.set_gauge("eventlog.queries", self.queries_logged)
        return query_id


def _timeline_records(
    query_id: str, spans: Optional[list], events: Optional[list]
) -> list[dict]:
    """Span + instant records merged by (simulated time, emit order)."""
    entries: list[tuple[float, int, dict]] = []
    order = 0
    for span in spans or []:
        end = span.end if span.end is not None else span.start
        entries.append(
            (
                span.start,
                order,
                {
                    "type": "span",
                    "query_id": query_id,
                    "name": span.name,
                    "category": span.category,
                    "lane": _jsonable(span.lane),
                    "start": span.start,
                    "end": end,
                    "args": _jsonable(span.args),
                },
            )
        )
        order += 1
    for event in events or []:
        entries.append(
            (
                event.timestamp,
                order,
                {
                    "type": "instant",
                    "query_id": query_id,
                    "name": event.name,
                    "category": event.category,
                    "lane": _jsonable(event.lane),
                    "ts": event.timestamp,
                    "args": _jsonable(event.args),
                },
            )
        )
        order += 1
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    return [record for __, __, record in entries]


def read_event_log(path) -> list[dict]:
    """Load one event-log file (``.jsonl`` or ``.jsonl.gz``), validating
    each record; the history store builds on this."""
    path = str(path)
    opener = gzip.open if path.endswith(".gz") else open
    records: list[dict] = []
    with opener(path, "rt", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise EventLogSchemaError(
                    f"{path}:{line_no}: not valid JSON ({error})"
                ) from None
            records.append(validate_record(record))
    return records

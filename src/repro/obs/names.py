"""The canonical registry of every metric and instant name the engine emits.

One declaration per name, grouped by subsystem.  Call sites must use a
name declared here — ``tests/obs/check_metric_names.py`` scans
``src/repro`` for ``metrics.inc/observe/set_gauge`` and
``tracer.instant`` literals and fails on any drift in either direction
(an emitted name missing here, or a declared name nothing emits).  This
is what keeps ``task.retry`` from growing a ``tasks.retried`` twin in
another module: new telemetry starts by adding one line to this file.

The registry is also the event-log contract: the history store and the
perf-regression sentinel key their summaries by these names, so renames
are schema changes (see DESIGN.md §10 on event-log versioning).
"""

from __future__ import annotations

#: Monotonic counters (``metrics.inc``), dotted lowercase, grouped by
#: subsystem.
COUNTERS = frozenset(
    {
        # engine: jobs, stages, tasks
        "jobs.submitted",
        "stages.run",
        "stages.skipped",
        "stages.failed",
        "tasks.launched",
        "tasks.failed",
        "tasks.recovered",
        "tasks.retried",
        "tasks.speculative",
        "speculation.launched",
        # shuffle
        "shuffle.fetches",
        "shuffle.fetch_failures",
        "shuffle.corrupt_fetches",
        "shuffle.read.bytes",
        "shuffle.write.bytes",
        "shuffle.write.records",
        "shuffle.released",
        "shuffle.released.blocks",
        # block store / cache
        "blocks.put",
        "blocks.put.bytes",
        "blocks.evicted",
        "blocks.evicted.bytes",
        "cache.hits",
        "cache.misses",
        # cluster membership
        "workers.added",
        "workers.killed",
        "workers.restarted",
        "workers.blacklisted",
        "blacklist.overridden",
        # PDE
        "pde.pre_shuffles",
        "pde.join_decisions",
        "pde.reducer_decisions",
        # vectorized pipeline
        "batch.pipelines",
        "batch.rows",
        "batch.batches",
        "batch.kernel.filter",
        "batch.kernel.project",
        "batch.kernel.aggregate",
        # query lifecycle
        "queries.executed",
        "queries.submitted",
        "queries.admitted",
        "queries.queued",
        "queries.rejected",
        "queries.completed",
        "queries.cancelled",
        "queries.deadline_expired",
        "queries.failed",
        "queries.circuit_opened",
        "queries.circuit_rejected",
        "queries.shed",
        # multi-tenant serving (SqlServer)
        "server.submitted",
        "server.admitted",
        "server.enqueued",
        "server.completed",
        "server.shed",
        "server.brownouts",
        "tenant.quota_rejected",
        # SQL query caching stack (plan/result/fragment caches and
        # shared scans; repro.sql.cache, served.hits in repro.serving)
        "sqlcache.plan.hits",
        "sqlcache.plan.misses",
        "sqlcache.result.hits",
        "sqlcache.result.misses",
        "sqlcache.fragment.hits",
        "sqlcache.fragment.misses",
        "sqlcache.shared.attached",
        "sqlcache.invalidations",
        "sqlcache.evictions",
        "sqlcache.evicted.bytes",
        "sqlcache.served.hits",
        # persistent observability (event log / flight recorder)
        "events.logged",
        "flight.dumps",
        # unified memory accounting (monotonic traffic totals; live
        # occupancy lives in the memory.* gauges below)
        "memory.reserved.bytes",
        "memory.released.bytes",
        "memory.pressure.events",
        # memory arbitration: spill-to-disk traffic (per-owner twins use
        # the dynamic name memory.spill.owner.{owner}.bytes) and
        # over-release clamps (should stay zero; see DESIGN.md §12)
        "memory.spill.events",
        "memory.spill.bytes",
        "memory.spill.runs",
        "memory.release.clamped",
        # plan quality: per-operator est-vs-actual profiles and the
        # audit's misestimate count (q-error above threshold); see
        # DESIGN.md §15
        "plan.operator_profiles",
        "plan.misestimates",
        # shuffle skew profiler: shuffles with per-partition histograms
        "skew.shuffles",
        # query doctor: root-cause findings across a two-run diff
        "doctor.findings",
    }
)

#: Point-in-time gauges (``metrics.set_gauge``).
GAUGES = frozenset(
    {
        "eventlog.queries",
        # unified memory accounting: live pool occupancy and peaks,
        # summed across workers; headroom is the tightest worker's
        # remaining budget (only set when a capacity is configured).
        "memory.storage.used",
        "memory.execution.used",
        "memory.storage.peak",
        "memory.execution.peak",
        "memory.headroom",
        # derived cache-health ratios (from cache.*/blocks.* counters)
        "cache.hit_ratio",
        "blocks.eviction_ratio",
        # multi-tenant serving: registered tenants, total pending
        # queries across tenant queues, and the brownout flag (0/1).
        "server.tenants",
        "server.queue_depth",
        "server.brownout",
        # SQL query cache occupancy (bytes charged to the sql_cache
        # owner and live entry count across all three layers).
        "sqlcache.bytes",
        "sqlcache.entries",
        # plan quality: worst q-error the last audited query produced
        "plan.q_error_max",
    }
)

#: Streaming distributions (``metrics.observe``); ``.metrics`` renders
#: their p50/p95/p99.
HISTOGRAMS = frozenset(
    {
        "task.seconds",
        "query.sim_seconds",
        # multi-tenant serving: end-to-end latency (enqueue to terminal)
        # and time spent waiting in the server's pending queues, both in
        # simulated seconds (per-tier twins use the dynamic names
        # server.latency.{tier} / server.queue_wait.{tier}).
        "server.latency",
        "server.queue_wait",
    }
)

#: Zero-duration trace instants (``tracer.instant``).
INSTANTS = frozenset(
    {
        # shuffle
        "shuffle.write",
        "shuffle.fetch",
        "shuffle.fetch_failed",
        # recovery / robustness
        "lineage.recovery",
        "task.reexecution",
        "task.retry",
        "task.speculative",
        # cluster
        "worker.kill",
        "worker.restart",
        "worker.added",
        "worker.blacklisted",
        "worker.probation",
        # cache
        "cache.hit",
        "block.evict",
        # PDE and the vectorized pipeline
        "pde.decision",
        "batch.pipeline",
        # query lifecycle
        "query.admitted",
        "query.queued",
        "query.rejected",
        "query.cancelled",
        "query.deadline",
        "query.circuit_open",
        "query.shuffles_released",
        # multi-tenant serving
        "query.shed",
        "server.brownout.enter",
        "server.brownout.exit",
        "tenant.registered",
        # persistent observability
        "flight.dump",
        # unified memory accounting: a reservation exceeded the worker's
        # budget (carries the LRU victim list arbitration then evicts)
        "memory.pressure",
        # arbitration made an execution consumer shed state to disk
        "memory.spill",
    }
)

_KINDS = {
    "counter": COUNTERS,
    "gauge": GAUGES,
    "histogram": HISTOGRAMS,
    "instant": INSTANTS,
}


def is_declared(name: str, kind: str) -> bool:
    """True when ``name`` is registered as a metric of ``kind``."""
    try:
        return name in _KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown metric kind {kind!r}") from None


def all_names() -> dict[str, frozenset[str]]:
    """Every registered name, keyed by kind (a copy, safe to mutate)."""
    return dict(_KINDS)

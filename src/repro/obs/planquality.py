"""Plan-quality observability: estimated vs. actual operator cardinalities.

The planner stamps every operator it emits with an estimated output row
count and the statistics source behind that estimate (catalog stats,
pruning maps, or a default selectivity guess); physical operators count
the rows they actually produce into the running task's metrics.  This
module owns the shared vocabulary between the two sides:

* :class:`OperatorStamp` — one planned operator instance, created by
  ``ExecutionReport.mode`` and keyed so runtime counts can find it;
* :func:`record_operator_rows` — the task-side counting hook (exactly
  once per kept attempt, because it writes into per-attempt
  :class:`~repro.engine.metrics.TaskMetrics`);
* :func:`actual_rows_from_profiles` — driver-side aggregation of those
  counts across jobs (sum within a job, max across jobs, so sampling
  jobs and PDE pre-shuffle jobs never double count);
* :func:`build_operator_profiles` / :func:`audit` — the est/actual/
  q-error confrontation consumed by EXPLAIN ANALYZE, the event log
  (schema-v6 ``operator_profile`` records), and the query doctor.

The q-error of an estimate is ``max(est/actual, actual/est)`` with both
sides clamped to at least one row — the standard multiplicative error
measure from the cardinality-estimation literature; 1.0 is a perfect
estimate and the audit flags operators above
:data:`DEFAULT_Q_ERROR_THRESHOLD`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Operators whose q-error exceeds this are flagged by the audit.
DEFAULT_Q_ERROR_THRESHOLD = 4.0

#: Default selectivity guesses (per conjunct) when no statistics apply —
#: the classic System R style constants.  Deliberately crude: their
#: misses are exactly what the plan-quality audit exists to expose.
EQ_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 0.3
BETWEEN_SELECTIVITY = 0.25
DEFAULT_SELECTIVITY = 0.33

#: Statistics sources recorded on stamps (ordered roughly by trust).
SOURCE_CATALOG = "catalog"
SOURCE_PRUNING = "pruning"
SOURCE_GUESS = "guess"
SOURCE_NONE = "none"


@dataclass
class OperatorStamp:
    """One operator instance emitted by the planner.

    ``op_id`` is unique within a query's :class:`ExecutionReport`;
    ``key`` ties the stamp to the runtime counts recorded under the same
    string by :func:`record_operator_rows`.
    """

    operator: str
    mode: str
    op_id: int
    est_rows: Optional[int] = None
    est_source: str = SOURCE_NONE
    detail: str = ""

    @property
    def key(self) -> str:
        return f"{self.operator}#{self.op_id}"


def q_error(est: Optional[int], actual: Optional[int]) -> Optional[float]:
    """Multiplicative estimation error, or None when a side is missing.

    Both sides are clamped to >= 1 row so empty results do not divide by
    zero; a perfect estimate scores 1.0.
    """
    if est is None or actual is None:
        return None
    low = max(int(est), 1)
    high = max(int(actual), 1)
    if low < high:
        low, high = high, low
    return low / high


def record_operator_rows(key: str, count: int) -> None:
    """Credit ``count`` output rows to operator ``key`` in the running
    task's metrics (no-op on the driver).

    Counts live in per-attempt :class:`TaskMetrics`, and only the kept
    attempt's metrics reach the stage profile — so retries, speculative
    backups, and lineage recovery never double count.
    """
    from repro.engine.task import current_task_context

    task_ctx = current_task_context()
    if task_ctx is None:
        return
    rows = task_ctx.metrics.operator_rows
    rows[key] = rows.get(key, 0) + count


def actual_rows_from_profiles(profiles) -> dict[str, int]:
    """Aggregate per-task operator counts across a query's job profiles.

    Within one job the per-task counts sum; across jobs the per-operator
    totals take the *max*.  A query may run several jobs that recompute
    the same upstream operators (sort sampling passes, PDE pre-shuffle
    materialization, subquery collects) — summing across jobs would
    double count them, while the max is the largest complete observation
    of each operator's output.
    """
    totals: dict[str, int] = {}
    for profile in profiles:
        per_job: dict[str, int] = {}
        for stage in profile.stages:
            for task in stage.tasks:
                for key, count in task.operator_rows.items():
                    per_job[key] = per_job.get(key, 0) + count
        for key, count in per_job.items():
            # Presence check, not a bare max: an operator that produced
            # zero rows is still an observation ("actual 0"), distinct
            # from an operator no task ever ran.
            if key not in totals or count > totals[key]:
                totals[key] = count
    return totals


def build_operator_profiles(
    stamps, actuals: dict[str, int]
) -> list[dict]:
    """Join planner stamps with runtime actuals into profile dicts.

    The dict shape is exactly the schema-v6 ``operator_profile`` payload
    (minus ``query_id``, added by the event-log writer): ``est_rows``,
    ``actual_rows`` and ``q_error`` are null when unknown, ``detail`` is
    present only when non-empty so logs stay byte-identical for
    operators without one.
    """
    out: list[dict] = []
    for stamp in stamps:
        actual = actuals.get(stamp.key)
        entry = {
            "operator": stamp.operator,
            "op_id": stamp.op_id,
            "mode": stamp.mode,
            "est_rows": stamp.est_rows,
            "est_source": stamp.est_source,
            "actual_rows": actual,
            "q_error": q_error(stamp.est_rows, actual),
        }
        if stamp.detail:
            entry["detail"] = stamp.detail
        out.append(entry)
    return out


def audit(
    operator_profiles: list[dict],
    threshold: float = DEFAULT_Q_ERROR_THRESHOLD,
) -> list[dict]:
    """Operators whose estimate missed by more than ``threshold``,
    worst first."""
    flagged = [
        profile
        for profile in operator_profiles
        if profile.get("q_error") is not None
        and profile["q_error"] > threshold
    ]
    flagged.sort(key=lambda p: (-p["q_error"], p["operator"], p["op_id"]))
    return flagged


def estimate_selectivity(condition) -> float:
    """Guessed fraction of rows satisfying ``condition``.

    Multiplies a per-conjunct constant over the AND-split of the
    predicate; anything unrecognized contributes
    :data:`DEFAULT_SELECTIVITY`.  The result is the ``guess`` source —
    no catalog statistics are consulted here.
    """
    from repro.sql.expressions import (
        BoundBetween,
        BoundComparison,
        BoundIn,
    )
    from repro.sql.optimizer import split_conjuncts

    selectivity = 1.0
    for conjunct in split_conjuncts(condition):
        if isinstance(conjunct, BoundComparison):
            if conjunct.op == "=":
                selectivity *= EQ_SELECTIVITY
            elif conjunct.op == "<>":
                selectivity *= 1.0 - EQ_SELECTIVITY
            else:
                selectivity *= RANGE_SELECTIVITY
        elif isinstance(conjunct, BoundBetween):
            selectivity *= BETWEEN_SELECTIVITY
        elif isinstance(conjunct, BoundIn):
            selectivity *= min(
                EQ_SELECTIVITY * max(len(conjunct.options), 1), 0.5
            )
        else:
            selectivity *= DEFAULT_SELECTIVITY
    return selectivity


def estimate_filtered_rows(base_rows: int, condition) -> int:
    """Row estimate for a filter over ``base_rows`` input rows (>= 1)."""
    return max(1, int(base_rows * estimate_selectivity(condition)))


def format_profile_line(profile: dict, threshold: float) -> str:
    """One EXPLAIN ANALYZE / report line for an operator profile."""
    est = profile.get("est_rows")
    actual = profile.get("actual_rows")
    error = profile.get("q_error")
    est_text = "?" if est is None else str(est)
    actual_text = "?" if actual is None else str(actual)
    source = profile.get("est_source") or SOURCE_NONE
    line = (
        f"{profile['operator']} [{profile['mode']}]: "
        f"est {est_text} ({source}) / actual {actual_text} rows"
    )
    if error is not None:
        line += f", q-error {error:.2f}"
        if error > threshold:
            line += "  ** misestimate"
    return line
